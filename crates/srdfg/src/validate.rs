//! Structural well-formedness checks for srDFGs.

use crate::graph::{NodeKind, SrDfg};
use std::fmt;

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// Description of the defect.
    pub message: String,
    /// Component names from the root graph down to the graph containing the
    /// offending node/edge (empty when the defect is in the root itself).
    pub path: Vec<String>,
}

impl ValidateError {
    /// A defect in the graph currently being checked.
    pub fn new(message: impl Into<String>) -> ValidateError {
        ValidateError { message: message.into(), path: Vec::new() }
    }

    /// Prepends one enclosing component name to the breadcrumb path.
    pub fn inside(mut self, component: impl Into<String>) -> ValidateError {
        self.path.insert(0, component.into());
        self
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid srDFG")?;
        if !self.path.is_empty() {
            write!(f, " (in {})", self.path.join(" -> "))?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Checks graph invariants:
///
/// * producer/consumer back-links are consistent;
/// * boundary outputs have a producer or are boundary inputs (pass-through);
/// * kernel operand slots stay within each node's input arity;
/// * component sub-graph boundary arities match their node's;
/// * the graph is acyclic (checked via [`SrDfg::try_topo_order`]);
/// * sub-graphs validate recursively.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found, with [`ValidateError::path`]
/// naming the chain of component nodes leading to the offending sub-graph.
/// Use [`validate_all`] to collect every defect instead of stopping at
/// the first.
pub fn validate(graph: &SrDfg) -> Result<(), ValidateError> {
    match validate_all(graph).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Like [`validate`], but keeps going: returns *every* structural defect
/// in the graph (and its nested components), in scan order — back-link
/// and kernel-arity defects node by node, then producer-less boundary
/// outputs, then the acyclicity check. Each error carries the same
/// component breadcrumb [`ValidateError::path`] the first-error API
/// reports, so a pass that corrupts several places at once is diagnosed
/// in one round trip.
pub fn validate_all(graph: &SrDfg) -> Vec<ValidateError> {
    let mut out = Vec::new();
    collect(graph, &mut out);
    out
}

fn collect(graph: &SrDfg, out: &mut Vec<ValidateError>) {
    for (id, node) in graph.iter_nodes() {
        for (slot, &e) in node.inputs.iter().enumerate() {
            let edge = graph.edge(e);
            if !edge.consumers.contains(&(id, slot)) {
                out.push(ValidateError::new(format!(
                    "edge {e} missing consumer back-link to {id} slot {slot}"
                )));
            }
        }
        for (slot, &e) in node.outputs.iter().enumerate() {
            let edge = graph.edge(e);
            if edge.producer != Some((id, slot)) {
                out.push(ValidateError::new(format!(
                    "edge {e} missing producer back-link to {id} slot {slot}"
                )));
            }
        }
        let max_slot = match &node.kind {
            NodeKind::Map(m) => m.kernel.max_slot(),
            NodeKind::Reduce(r) => {
                r.body.max_slot().max(r.cond.as_ref().and_then(|c| c.max_slot()))
            }
            _ => None,
        };
        if let Some(ms) = max_slot {
            if ms >= node.inputs.len() {
                out.push(ValidateError::new(format!(
                    "node `{}` kernel references slot {ms} but has {} inputs",
                    node.name,
                    node.inputs.len()
                )));
            }
        }
        if let NodeKind::Component(sub) = &node.kind {
            if sub.boundary_inputs.len() != node.inputs.len()
                || sub.boundary_outputs.len() != node.outputs.len()
            {
                out.push(ValidateError::new(format!(
                    "component `{}` boundary arity mismatch ({}→{} vs {}→{})",
                    node.name,
                    sub.boundary_inputs.len(),
                    sub.boundary_outputs.len(),
                    node.inputs.len(),
                    node.outputs.len()
                )));
            }
            let before = out.len();
            collect(sub, out);
            for e in &mut out[before..] {
                e.path.insert(0, node.name.to_string());
            }
        }
    }
    for &e in &graph.boundary_outputs {
        let edge = graph.edge(e);
        if edge.producer.is_none() && !graph.boundary_inputs.contains(&e) {
            out.push(ValidateError::new(format!(
                "boundary output `{}` has no producer",
                edge.meta.name
            )));
        }
    }
    // Acyclicity, without panicking on malformed graphs.
    if let Err(stuck) = graph.try_topo_order() {
        let names: Vec<String> =
            stuck.iter().take(8).map(|&id| format!("`{}`", graph.node(id).name)).collect();
        out.push(ValidateError::new(format!(
            "graph contains a cycle through {} node(s): {}",
            stuck.len(),
            names.join(", ")
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, Bindings};

    fn assert_valid(src: &str, sizes: Vec<(&str, i64)>) {
        let prog = pmlang::parse(src).unwrap();
        pmlang::check(&prog).unwrap();
        let g = build(&prog, &Bindings::from_sizes(sizes)).unwrap();
        validate(&g).unwrap();
    }

    #[test]
    fn built_graphs_validate() {
        assert_valid(
            "mvmul(input float A[m][n], input float B[n], output float C[m]) {
                 index i[0:n-1], j[0:m-1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }
             main(input float W[3][2], input float x[2], state float s[3], output float y[3]) {
                 index j[0:2];
                 DA: mvmul(W, x, y);
                 s[j] = s[j] + y[j];
             }",
            vec![],
        );
    }

    #[test]
    fn refined_graphs_validate() {
        let prog = pmlang::parse(
            "main(input float A[2][3], input float B[3], output float C[2]) {
                 index i[0:2], j[0:1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }",
        )
        .unwrap();
        let mut g = build(&prog, &Bindings::default()).unwrap();
        let ids: Vec<_> = g.node_ids().collect();
        for id in ids {
            if let Ok(sub) = crate::expand::refine(&g, id, &Default::default()) {
                g.splice(id, &sub);
            }
        }
        validate(&g).unwrap();
    }

    #[test]
    fn detects_broken_backlink() {
        let prog = pmlang::parse("main(input float x, output float y) { y = x + 1.0; }").unwrap();
        let mut g = build(&prog, &Bindings::default()).unwrap();
        // Corrupt: clear a consumer list behind the node's back.
        let e = g.boundary_inputs[0];
        g.edge_mut(e).consumers.clear();
        assert!(validate(&g).is_err());
    }

    #[test]
    fn detects_cycle_without_panicking() {
        use crate::graph::{EdgeMeta, Modifier, ScalarKind};
        // Two scalar nodes consuming each other's outputs: a genuine cycle
        // with consistent back-links (self-loops are legal SSA carries and
        // are deliberately ignored by the topo sort).
        let mut g = SrDfg::new("cyclic");
        let e1 = g.add_edge(EdgeMeta::new("e1", pmlang::DType::Float, Modifier::Temp, vec![]));
        let e2 = g.add_edge(EdgeMeta::new("e2", pmlang::DType::Float, Modifier::Temp, vec![]));
        g.add_node(
            "a",
            NodeKind::scalar(ScalarKind::Un(pmlang::UnOp::Neg)),
            None,
            vec![e2],
            vec![e1],
        );
        g.add_node(
            "b",
            NodeKind::scalar(ScalarKind::Un(pmlang::UnOp::Neg)),
            None,
            vec![e1],
            vec![e2],
        );
        let err = validate(&g).unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
        assert!(g.try_topo_order().is_err());
    }

    #[test]
    fn validate_all_reports_every_defect() {
        let prog =
            pmlang::parse("main(input float a, input float b, output float y) { y = a + b; }")
                .unwrap();
        let mut g = build(&prog, &Bindings::default()).unwrap();
        // Corrupt both input edges: two independent back-link defects.
        let (e1, e2) = (g.boundary_inputs[0], g.boundary_inputs[1]);
        g.edge_mut(e1).consumers.clear();
        g.edge_mut(e2).consumers.clear();
        let errors = validate_all(&g);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().all(|e| e.message.contains("consumer back-link")), "{errors:?}");
        // The first-error API returns exactly the first collected defect.
        assert_eq!(validate(&g).unwrap_err(), errors[0]);
    }

    #[test]
    fn error_breadcrumb_names_component_path() {
        let prog = pmlang::parse(
            "f(input float x, output float y) { y = x * 2.0; }
             g(input float x, output float y) { f(x, y); }
             main(input float a, output float b) { g(a, b); }",
        )
        .unwrap();
        let mut graph = build(&prog, &Bindings::default()).unwrap();
        // Corrupt the innermost sub-graph (main -> g -> f).
        fn corrupt_innermost(g: &mut SrDfg) -> bool {
            let ids: Vec<_> = g.node_ids().collect();
            for id in ids {
                let is_comp = matches!(g.node(id).kind, NodeKind::Component(_));
                if is_comp {
                    if let NodeKind::Component(sub) = &mut g.node_mut(id).kind {
                        if !corrupt_innermost(sub) {
                            let e = sub.boundary_inputs[0];
                            sub.edge_mut(e).consumers.clear();
                        }
                        return true;
                    }
                }
            }
            false
        }
        assert!(corrupt_innermost(&mut graph));
        let err = validate(&graph).unwrap_err();
        assert_eq!(err.path, vec!["g".to_string(), "f".to_string()]);
        assert!(err.to_string().contains("in g -> f"), "{err}");
    }
}
