//! A small-list type for the per-node / per-edge id lists of the srDFG.
//!
//! Expanded graphs hold hundreds of thousands of nodes whose operand and
//! result lists are almost always 1–3 entries long (a scalar `add` has two
//! inputs and one output; most edges have a single consumer). Storing those
//! lists as `Vec` costs one heap allocation per list, and template
//! instantiation ([`SrDfg::splice`]) is dominated by exactly those
//! allocations. [`SmallIds`] keeps up to `N` entries inline in the struct
//! and only spills to a `Vec` beyond that, so the common case allocates
//! nothing.
//!
//! The type dereferences to `[T]`, so read sites (`.iter()`, `.len()`,
//! indexing, `.contains(..)`) work unchanged; mutation goes through
//! [`SmallIds::push`] / [`SmallIds::retain`] / `DerefMut`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// An inline-first list of copyable ids: up to `N` entries live in the
/// struct itself, longer lists spill wholesale into a `Vec`.
///
/// Invariant: if `spill` is non-empty it holds *all* entries and the inline
/// buffer is dead; otherwise the entries are `inline[..len]`. A spilled
/// list never migrates back inline (entries removed by [`retain`] just
/// shrink the spill vector), which keeps the invariant trivially stable.
///
/// [`retain`]: SmallIds::retain
#[derive(Clone)]
pub struct SmallIds<T: Copy + Default, const N: usize> {
    len: u8,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallIds<T, N> {
    /// The empty list (allocation-free).
    pub fn new() -> Self {
        SmallIds { len: 0, inline: [T::default(); N], spill: Vec::new() }
    }

    /// Appends an entry, spilling to the heap on the `N+1`-th push.
    pub fn push(&mut self, v: T) {
        if self.spill.is_empty() {
            if (self.len as usize) < N {
                self.inline[self.len as usize] = v;
                self.len += 1;
                return;
            }
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len as usize]);
            self.len = 0;
        }
        self.spill.push(v);
    }

    /// Keeps only the entries for which `f` returns `true`, preserving
    /// order (mirrors `Vec::retain`).
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut f: F) {
        if self.spill.is_empty() {
            let mut w = 0usize;
            for i in 0..self.len as usize {
                let v = self.inline[i];
                if f(&v) {
                    self.inline[w] = v;
                    w += 1;
                }
            }
            self.len = w as u8;
        } else {
            self.spill.retain(f);
        }
    }

    /// Removes all entries (keeps any spill capacity).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Builds a list by mapping `f` over a slice — the [`SrDfg::splice`]
    /// hot path. The inline/spill decision is taken once from the source
    /// length instead of being re-checked on every push.
    ///
    /// [`SrDfg::splice`]: ../graph/struct.SrDfg.html#method.splice
    pub fn map_from<U: Copy>(src: &[U], mut f: impl FnMut(U) -> T) -> Self {
        if src.len() <= N {
            let mut inline = [T::default(); N];
            for (d, &v) in inline.iter_mut().zip(src) {
                *d = f(v);
            }
            SmallIds { len: src.len() as u8, inline, spill: Vec::new() }
        } else {
            SmallIds {
                len: 0,
                inline: [T::default(); N],
                spill: src.iter().map(|&v| f(v)).collect(),
            }
        }
    }

    fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallIds<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallIds<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallIds<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallIds<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallIds<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallIds<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for SmallIds<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for SmallIds<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallIds<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() <= N {
            let mut s = Self::new();
            for x in v {
                s.push(x);
            }
            s
        } else {
            SmallIds { len: 0, inline: [T::default(); N], spill: v }
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallIds<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallIds<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallIds<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for SmallIds<T, N> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        if self.spill.is_empty() {
            Vec::from(&self.inline[..self.len as usize]).into_iter()
        } else {
            self.spill.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut s: SmallIds<u32, 2> = SmallIds::new();
        assert!(s.is_empty());
        s.push(1);
        s.push(2);
        assert_eq!(&s[..], &[1, 2]);
        s.push(3); // spills
        assert_eq!(&s[..], &[1, 2, 3]);
        s.push(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s, vec![1, 2, 3, 4]);
    }

    #[test]
    fn retain_inline_and_spilled() {
        let mut s: SmallIds<u32, 3> = (0..3).collect();
        s.retain(|&x| x != 1);
        assert_eq!(s, vec![0, 2]);
        let mut big: SmallIds<u32, 3> = (0..10).collect();
        big.retain(|&x| x % 2 == 0);
        assert_eq!(big, vec![0, 2, 4, 6, 8]);
        big.retain(|_| false);
        assert!(big.is_empty());
        // Push after a drained spill still works.
        big.push(7);
        assert_eq!(big, vec![7]);
    }

    #[test]
    fn from_vec_and_iterators() {
        let s: SmallIds<u32, 2> = vec![5, 6].into();
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![5, 6]);
        let big: SmallIds<u32, 2> = vec![1, 2, 3].into();
        assert_eq!(big.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut m: SmallIds<u32, 2> = SmallIds::new();
        m.extend([9, 8, 7]);
        assert_eq!(m, [9, 8, 7]);
        m[0] = 1; // DerefMut indexing
        assert_eq!(m, [1, 8, 7]);
    }

    #[test]
    fn mem_take_leaves_empty() {
        let mut s: SmallIds<u32, 2> = vec![1, 2].into();
        let t = std::mem::take(&mut s);
        assert_eq!(t, vec![1, 2]);
        assert!(s.is_empty());
    }
}
