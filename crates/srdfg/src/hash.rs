//! Structural hashing of srDFG nodes — the value-numbering key.
//!
//! [`node_structural_hash`] digests a node's `(kind, input edges)`,
//! exactly the equality CSE merges on (`na.kind == nb.kind && na.inputs
//! == nb.inputs`), so equal nodes always hash equal and the hash serves
//! as a hash-consing key with an `==` confirmation on bucket collision.
//!
//! `f64` payloads are hashed via `to_bits`. That is *finer* than float
//! `PartialEq` in exactly two places — `0.0`/`-0.0` hash differently, and
//! `NaN` hashes equal to itself while comparing unequal — and both are
//! safe for a consing table: a finer hash can only miss a merge
//! opportunity (the confirming `==` still decides), never create a wrong
//! one.

use crate::graph::{
    EdgeMeta, IndexRange, MapSpec, Node, NodeKind, ReduceOp, ReduceSpec, ScalarKind, WriteSpec,
};
use crate::kernel::KExpr;
use crate::value::Tensor;
use std::hash::{Hash, Hasher};

/// Multiply-xor hasher (the scheme rustc uses for interning tables).
/// Value numbering digests every kernel tree on every CSE sweep, so hash
/// throughput matters; DoS resistance does not (a collision only costs
/// the confirming `==`), which rules out the `DefaultHasher` SipHash.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher(u64);

/// [`std::hash::BuildHasher`] for [`FxHasher`] — for hash tables keyed by
/// already-mixed values (structural hashes, dense ids).
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_ne_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// Content fingerprint of an entire srDFG — the program-cache key.
///
/// Digests every node (kind content, domain, operand wiring), every
/// edge (full metadata, producer/consumer wiring) and the boundary
/// lists, recursing fully into `Component` sub-graphs (unlike the
/// shallow per-node digest, which only needs to distinguish siblings).
/// Two structurally identical graphs — in particular, the post-mid-end
/// graphs of two submissions of the same source under the same size
/// bindings — fingerprint identically, in both the shared and the
/// `PM_SRDFG_UNSHARED=1` store modes: the digest reads the *content*
/// hashes cached on the interned payloads, never arena ids, so it is
/// O(nodes + edges) yet store-layout independent.
///
/// This is what `pm-serve` keys its content-addressed compiled-program
/// cache on: equal fingerprint ⇒ skip lowering + Algorithm 2 entirely.
pub fn graph_fingerprint(g: &crate::graph::SrDfg) -> u64 {
    let mut h = FxHasher(0);
    hash_graph(g, &mut h);
    h.finish()
}

fn hash_graph<H: Hasher>(g: &crate::graph::SrDfg, h: &mut H) {
    g.name.hash(h);
    g.domain.hash(h);
    g.node_count().hash(h);
    g.edge_count().hash(h);
    for (id, node) in g.iter_nodes() {
        id.hash(h);
        node.name.hash(h);
        node.domain.hash(h);
        node.inputs.hash(h);
        node.outputs.hash(h);
        if let NodeKind::Component(sub) = &node.kind {
            // Full recursion: the cache key must see the whole program,
            // not the sibling-disambiguation digest `hash_kind` uses.
            0xC0u8.hash(h);
            hash_graph(sub, h);
        } else {
            hash_kind(&node.kind, h);
        }
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        e.hash(h);
        h.write_u64(edge.meta.structural_hash());
        edge.producer.hash(h);
        edge.consumers.hash(h);
    }
    g.boundary_inputs.hash(h);
    g.boundary_outputs.hash(h);
}

/// The structural hash of `(node.kind, node.inputs)`.
///
/// Two nodes for which CSE's merge equality holds are guaranteed to
/// return the same value; unequal nodes collide only with ordinary
/// hash probability.
pub fn node_structural_hash(node: &Node) -> u64 {
    let mut h = FxHasher(0);
    hash_kind(&node.kind, &mut h);
    node.inputs.hash(&mut h);
    h.finish()
}

/// Digest of a node kind alone (no input-edge ids). Shared with the
/// lowering template cache, whose key must be position-independent: two
/// structurally equal expansions in different graph regions have
/// different input edge ids but must fingerprint identically.
///
/// Interned payloads ([`crate::store::Consed`]) carry their content hash,
/// so each arm is a single cached-u64 write — node hashing and template
/// fingerprinting are O(1) in kernel size instead of walking the tree.
pub(crate) fn hash_kind<H: Hasher>(kind: &NodeKind, h: &mut H) {
    std::mem::discriminant(kind).hash(h);
    match kind {
        NodeKind::Component(sub) => {
            // Components are instantiation-unique and never value-numbered
            // (paper §II.A); a shallow digest keeps the hash total without
            // walking the whole sub-graph.
            sub.name.hash(h);
            sub.node_count().hash(h);
            sub.edge_count().hash(h);
        }
        NodeKind::Map(m) => h.write_u64(m.structural_hash()),
        NodeKind::Reduce(r) => h.write_u64(r.structural_hash()),
        NodeKind::Scalar(s) => h.write_u64(s.structural_hash()),
        NodeKind::ConstTensor(t) => h.write_u64(t.structural_hash()),
        NodeKind::Load | NodeKind::Store | NodeKind::Unpack | NodeKind::Pack => {}
    }
}

/// Content hash of a [`MapSpec`] (the interner key for `NodeKind::Map`).
pub(crate) fn map_spec_hash(m: &MapSpec) -> u64 {
    let mut h = FxHasher(0);
    hash_space(&m.out_space, &mut h);
    hash_kexpr(&m.kernel, &mut h);
    hash_write(&m.write, &mut h);
    h.finish()
}

/// Content hash of a [`ReduceSpec`] (the interner key for `NodeKind::Reduce`).
pub(crate) fn reduce_spec_hash(r: &ReduceSpec) -> u64 {
    let mut h = FxHasher(0);
    match &r.op {
        ReduceOp::Builtin(b) => {
            0u8.hash(&mut h);
            b.hash(&mut h);
        }
        ReduceOp::Custom { name, combiner } => {
            1u8.hash(&mut h);
            name.hash(&mut h);
            hash_kexpr(combiner, &mut h);
        }
    }
    hash_space(&r.out_space, &mut h);
    hash_space(&r.red_space, &mut h);
    r.cond.is_some().hash(&mut h);
    if let Some(c) = &r.cond {
        hash_kexpr(c, &mut h);
    }
    hash_kexpr(&r.body, &mut h);
    hash_write(&r.write, &mut h);
    h.finish()
}

/// Content hash of a [`ScalarKind`] (the interner key for `NodeKind::Scalar`).
pub(crate) fn scalar_kind_hash(s: &ScalarKind) -> u64 {
    let mut h = FxHasher(0);
    std::mem::discriminant(s).hash(&mut h);
    match s {
        ScalarKind::Bin(op) => op.hash(&mut h),
        ScalarKind::Un(op) => op.hash(&mut h),
        ScalarKind::Func(f) => f.hash(&mut h),
        ScalarKind::Select => {}
        ScalarKind::Const(c) => c.to_bits().hash(&mut h),
    }
    h.finish()
}

/// Content hash of a [`Tensor`] (the interner key for `NodeKind::ConstTensor`).
pub(crate) fn tensor_hash(t: &Tensor) -> u64 {
    let mut h = FxHasher(0);
    hash_tensor(t, &mut h);
    h.finish()
}

/// Content hash of an [`EdgeMeta`] — the *full* metadata including the
/// provenance span, so interning can never conflate two metas that any
/// diagnostic or digest could tell apart.
pub(crate) fn edge_meta_hash(m: &EdgeMeta) -> u64 {
    let mut h = FxHasher(0);
    m.name.hash(&mut h);
    m.dtype.hash(&mut h);
    m.modifier.hash(&mut h);
    m.shape.hash(&mut h);
    m.span.hash(&mut h);
    h.finish()
}

fn hash_space<H: Hasher>(space: &[IndexRange], h: &mut H) {
    space.len().hash(h);
    for r in space {
        r.name.hash(h);
        r.lo.hash(h);
        r.hi.hash(h);
    }
}

fn hash_write<H: Hasher>(w: &WriteSpec, h: &mut H) {
    w.target_shape.hash(h);
    w.lhs.len().hash(h);
    for e in &w.lhs {
        hash_kexpr(e, h);
    }
    w.carried.hash(h);
}

fn hash_tensor<H: Hasher>(t: &Tensor, h: &mut H) {
    t.dtype().hash(h);
    t.shape().hash(h);
    if let Some(xs) = t.as_real_slice() {
        for x in xs {
            x.to_bits().hash(h);
        }
    } else if let Some(xs) = t.as_complex_slice() {
        for (re, im) in xs {
            re.to_bits().hash(h);
            im.to_bits().hash(h);
        }
    }
}

fn hash_kexpr<H: Hasher>(e: &KExpr, h: &mut H) {
    std::mem::discriminant(e).hash(h);
    match e {
        KExpr::Const(c) => c.to_bits().hash(h),
        KExpr::Idx(i) => i.hash(h),
        KExpr::Operand { slot, indices } => {
            slot.hash(h);
            indices.len().hash(h);
            for ix in indices {
                hash_kexpr(ix, h);
            }
        }
        KExpr::Arg(i) => i.hash(h),
        KExpr::Unary(op, a) => {
            op.hash(h);
            hash_kexpr(a, h);
        }
        KExpr::Binary(op, a, b) => {
            op.hash(h);
            hash_kexpr(a, h);
            hash_kexpr(b, h);
        }
        KExpr::Select(c, a, b) => {
            hash_kexpr(c, h);
            hash_kexpr(a, h);
            hash_kexpr(b, h);
        }
        KExpr::Call(f, args) => {
            f.hash(h);
            args.len().hash(h);
            for a in args {
                hash_kexpr(a, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeMeta, MapSpec, Modifier, SrDfg};
    use pmlang::{BinOp, DType};

    fn map_times(c: f64, n: usize) -> NodeKind {
        NodeKind::map(MapSpec {
            out_space: vec![IndexRange { name: "i".into(), lo: 0, hi: n as i64 - 1 }],
            kernel: KExpr::Binary(
                BinOp::Mul,
                Box::new(KExpr::Operand { slot: 0, indices: vec![KExpr::Idx(0)] }),
                Box::new(KExpr::Const(c)),
            ),
            write: WriteSpec::identity(&[n]),
        })
    }

    #[test]
    fn equal_nodes_hash_equal() {
        let mut g = SrDfg::new("t");
        let x = g.add_edge(EdgeMeta::new("x", DType::Float, Modifier::Input, vec![4]));
        let a = g.add_edge(EdgeMeta::new("a", DType::Float, Modifier::Temp, vec![4]));
        let b = g.add_edge(EdgeMeta::new("b", DType::Float, Modifier::Temp, vec![4]));
        let n1 = g.add_node("mul", map_times(2.0, 4), None, vec![x], vec![a]);
        let n2 = g.add_node("mul", map_times(2.0, 4), None, vec![x], vec![b]);
        assert_eq!(g.node(n1).kind, g.node(n2).kind);
        assert_eq!(node_structural_hash(g.node(n1)), node_structural_hash(g.node(n2)));
    }

    #[test]
    fn different_payload_or_inputs_hash_differently() {
        let mut g = SrDfg::new("t");
        let x = g.add_edge(EdgeMeta::new("x", DType::Float, Modifier::Input, vec![4]));
        let y = g.add_edge(EdgeMeta::new("y", DType::Float, Modifier::Input, vec![4]));
        let a = g.add_edge(EdgeMeta::new("a", DType::Float, Modifier::Temp, vec![4]));
        let b = g.add_edge(EdgeMeta::new("b", DType::Float, Modifier::Temp, vec![4]));
        let c = g.add_edge(EdgeMeta::new("c", DType::Float, Modifier::Temp, vec![4]));
        let n1 = g.add_node("mul", map_times(2.0, 4), None, vec![x], vec![a]);
        let n2 = g.add_node("mul", map_times(3.0, 4), None, vec![x], vec![b]);
        let n3 = g.add_node("mul", map_times(2.0, 4), None, vec![y], vec![c]);
        assert_ne!(node_structural_hash(g.node(n1)), node_structural_hash(g.node(n2)));
        assert_ne!(node_structural_hash(g.node(n1)), node_structural_hash(g.node(n3)));
    }

    #[test]
    fn graph_fingerprint_is_content_addressed() {
        let build = |c: f64| {
            let mut g = SrDfg::new("fp");
            let x = g.add_edge(EdgeMeta::new("x", DType::Float, Modifier::Input, vec![4]));
            let a = g.add_edge(EdgeMeta::new("a", DType::Float, Modifier::Output, vec![4]));
            g.add_node("mul", map_times(c, 4), None, vec![x], vec![a]);
            g.boundary_inputs.push(x);
            g.boundary_outputs.push(a);
            g
        };
        // Two independent builds of the same content agree (the serve
        // program-cache contract), and a payload change is visible.
        assert_eq!(graph_fingerprint(&build(2.0)), graph_fingerprint(&build(2.0)));
        assert_ne!(graph_fingerprint(&build(2.0)), graph_fingerprint(&build(3.0)));
        // Wiring matters even when the node set is unchanged.
        let mut g = build(2.0);
        g.boundary_outputs.clear();
        assert_ne!(graph_fingerprint(&g), graph_fingerprint(&build(2.0)));
    }

    #[test]
    fn const_tensor_hash_tracks_data() {
        let t1 = Tensor::from_vec(DType::Float, vec![2], vec![1.0, 2.0]).unwrap();
        let t2 = Tensor::from_vec(DType::Float, vec![2], vec![1.0, 3.0]).unwrap();
        let mut g = SrDfg::new("t");
        let a = g.add_edge(EdgeMeta::new("a", DType::Float, Modifier::Temp, vec![2]));
        let b = g.add_edge(EdgeMeta::new("b", DType::Float, Modifier::Temp, vec![2]));
        let n1 = g.add_node("const", NodeKind::const_tensor(t1), None, vec![], vec![a]);
        let n2 = g.add_node("const", NodeKind::const_tensor(t2), None, vec![], vec![b]);
        assert_ne!(node_structural_hash(g.node(n1)), node_structural_hash(g.node(n2)));
    }
}
