//! Reference interpreter for srDFGs.
//!
//! Executes a graph functionally (paper §III.B semantics: a node fires when
//! its operand edges are ready — realized here as a topological sweep) and
//! persists `state` values across invocations, which is how iterative
//! workloads run: the host invokes `main` once per sample / time-step /
//! graph-iteration, exactly as the accelerators stream data through a
//! statically compiled dataflow graph.

use crate::error::ExecError;
use crate::graph::{
    IndexRange, MapSpec, Modifier, NodeKind, ReduceOp, ReduceSpec, SrDfg, WriteSpec,
};
use crate::kernel::KExpr;
use crate::value::{Scalar, Tensor};
use pmlang::BuiltinReduction;
use std::collections::HashMap;

/// A stateful executor for one program graph.
#[derive(Debug, Clone)]
pub struct Machine {
    graph: SrDfg,
    state: HashMap<String, Tensor>,
}

impl Machine {
    /// Creates a machine for `graph`. State variables start zero-filled.
    pub fn new(graph: SrDfg) -> Self {
        Machine { graph, state: HashMap::new() }
    }

    /// The program graph.
    pub fn graph(&self) -> &SrDfg {
        &self.graph
    }

    /// Reads a persisted state variable.
    pub fn state(&self, name: &str) -> Option<&Tensor> {
        self.state.get(name)
    }

    /// Overwrites a persisted state variable (e.g. to seed a model).
    pub fn set_state(&mut self, name: &str, value: Tensor) {
        self.state.insert(name.to_string(), value);
    }

    /// Runs one invocation of the program.
    ///
    /// `feeds` supplies every boundary `input` and runtime `param` by name.
    /// Missing `state` values are zero-initialized. Returns the `output`
    /// values by name (state updates are retained internally).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] for missing feeds, shape mismatches, or
    /// kernel evaluation failures (e.g. out-of-bounds accesses).
    pub fn invoke(
        &mut self,
        feeds: &HashMap<String, Tensor>,
    ) -> Result<HashMap<String, Tensor>, ExecError> {
        let mut bound: Vec<Option<Tensor>> = Vec::new();
        for &e in &self.graph.boundary_inputs {
            let meta = self.graph.edge(e).meta.clone();
            let value = match meta.modifier {
                Modifier::State => Some(
                    self.state
                        .get(&meta.name)
                        .cloned()
                        .unwrap_or_else(|| Tensor::zeros(meta.dtype, meta.shape.clone())),
                ),
                _ => feeds.get(&meta.name).cloned(),
            };
            let value = value.ok_or_else(|| {
                ExecError::new(format!("missing feed for {} `{}`", meta.modifier, meta.name))
            })?;
            if value.shape() != meta.shape {
                return Err(ExecError::new(format!(
                    "feed `{}` has shape {:?}, expected {:?}",
                    meta.name,
                    value.shape(),
                    meta.shape
                )));
            }
            bound.push(Some(value));
        }
        let results = exec_graph(&self.graph, bound)?;
        let mut outputs = HashMap::new();
        let mut state_updates = Vec::new();
        for (i, &e) in self.graph.boundary_outputs.iter().enumerate() {
            let meta = &self.graph.edge(e).meta;
            let value = results[i].clone();
            match meta.modifier {
                Modifier::State => state_updates.push((meta.name.clone(), value)),
                _ => {
                    outputs.insert(meta.name.clone(), value);
                }
            }
        }
        for (name, value) in state_updates {
            self.state.insert(name, value);
        }
        Ok(outputs)
    }
}

/// Executes `graph` with boundary inputs bound positionally; returns the
/// boundary outputs positionally.
pub fn exec_graph(
    graph: &SrDfg,
    boundary_values: Vec<Option<Tensor>>,
) -> Result<Vec<Tensor>, ExecError> {
    let mut values: Vec<Option<Tensor>> = vec![None; graph.edge_count()];
    for (i, &e) in graph.boundary_inputs.iter().enumerate() {
        values[e.0 as usize] = boundary_values.get(i).cloned().flatten().or_else(|| {
            Some(Tensor::zeros(graph.edge(e).meta.dtype, graph.edge(e).meta.shape.clone()))
        });
    }
    for id in graph.topo_order() {
        exec_node(graph, id, &mut values)?;
    }
    graph
        .boundary_outputs
        .iter()
        .map(|&e| {
            values[e.0 as usize].clone().ok_or_else(|| {
                ExecError::new(format!(
                    "boundary output `{}` was never produced",
                    graph.edge(e).meta.name
                ))
            })
        })
        .collect()
}

fn exec_node(
    graph: &SrDfg,
    id: crate::graph::NodeId,
    values: &mut [Option<Tensor>],
) -> Result<(), ExecError> {
    let node = graph.node(id);
    // Gather operand clones (cheap relative to kernel work; keeps borrows simple).
    let operands: Vec<Tensor> = node
        .inputs
        .iter()
        .map(|&e| {
            values[e.0 as usize].clone().ok_or_else(|| {
                ExecError::new(format!(
                    "operand `{}` of `{}` not ready",
                    graph.edge(e).meta.name,
                    node.name
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let operand_refs: Vec<&Tensor> = operands.iter().collect();

    match &node.kind {
        NodeKind::Component(sub) => {
            let outs = exec_graph(sub, operands.iter().cloned().map(Some).collect())?;
            for (&e, v) in node.outputs.iter().zip(outs) {
                values[e.0 as usize] = Some(v);
            }
        }
        NodeKind::Map(spec) => {
            let out_meta = &graph.edge(node.outputs[0]).meta;
            let result = exec_map(spec, &operand_refs, out_meta.dtype)?;
            values[node.outputs[0].0 as usize] = Some(result);
        }
        NodeKind::Reduce(spec) => {
            let out_meta = &graph.edge(node.outputs[0]).meta;
            let result = exec_reduce(spec, &operand_refs, out_meta.dtype)?;
            values[node.outputs[0].0 as usize] = Some(result);
        }
        NodeKind::Scalar(kind) => {
            let result = exec_scalar(kind, &operand_refs)?;
            values[node.outputs[0].0 as usize] = Some(result);
        }
        NodeKind::ConstTensor(t) => {
            values[node.outputs[0].0 as usize] = Some((**t).clone());
        }
        NodeKind::Load | NodeKind::Store => {
            // Pure data movement: forward the value.
            values[node.outputs[0].0 as usize] = Some(operands[0].clone());
        }
        NodeKind::Unpack => {
            let t = &operands[0];
            if t.len() != node.outputs.len() {
                return Err(ExecError::new(format!(
                    "unpack of {} elements into {} edges",
                    t.len(),
                    node.outputs.len()
                )));
            }
            for (i, &e) in node.outputs.iter().enumerate() {
                let mut s = if t.dtype() == pmlang::DType::Complex {
                    Tensor::zeros(pmlang::DType::Complex, vec![])
                } else {
                    Tensor::zeros(t.dtype(), vec![])
                };
                s.set_flat(0, t.get_flat(i))?;
                values[e.0 as usize] = Some(s);
            }
        }
        NodeKind::Pack => {
            let meta = &graph.edge(node.outputs[0]).meta;
            let mut t = Tensor::zeros(meta.dtype, meta.shape.clone());
            if t.len() != operands.len() {
                return Err(ExecError::new(format!(
                    "pack of {} edges into {} elements",
                    operands.len(),
                    t.len()
                )));
            }
            for (i, s) in operands.iter().enumerate() {
                t.set_flat(i, s.get_flat(0))?;
            }
            values[node.outputs[0].0 as usize] = Some(t);
        }
    }
    Ok(())
}

/// Allocates the output tensor for a write spec (carry or zeros).
fn init_output(
    write: &WriteSpec,
    operands: &[&Tensor],
    dtype: pmlang::DType,
) -> Result<Tensor, ExecError> {
    if write.carried {
        let prev = operands
            .first()
            .ok_or_else(|| ExecError::new("carried write without carry operand"))?;
        Ok((*prev).clone())
    } else {
        Ok(Tensor::zeros(dtype, write.target_shape.clone()))
    }
}

/// Executes an elementwise map.
pub fn exec_map(
    spec: &MapSpec,
    operands: &[&Tensor],
    out_dtype: pmlang::DType,
) -> Result<Tensor, ExecError> {
    let mut out = init_output(&spec.write, operands, out_dtype)?;
    let mut point = vec![0i64; spec.out_space.len()];
    let mut lhs_point = vec![0i64; spec.write.lhs.len()];
    for_each_point(&spec.out_space, &mut point, &mut |idx| {
        let v = spec.kernel.eval(idx, operands, &[])?;
        for (slot, l) in spec.write.lhs.iter().enumerate() {
            lhs_point[slot] = l.eval_index(idx)?;
        }
        out.set(&lhs_point, v)?;
        Ok(())
    })?;
    Ok(out)
}

/// Executes a group reduction.
pub fn exec_reduce(
    spec: &ReduceSpec,
    operands: &[&Tensor],
    out_dtype: pmlang::DType,
) -> Result<Tensor, ExecError> {
    let out_points: usize = spec.out_space.iter().map(IndexRange::size).product();
    // Accumulators per output point.
    let mut acc: Vec<Option<Scalar>> = vec![None; out_points.max(1)];
    let mut best: Vec<i64> = vec![0; out_points.max(1)]; // arg-reduction winners

    let full_space: Vec<IndexRange> =
        spec.out_space.iter().chain(&spec.red_space).cloned().collect();
    let out_dims: Vec<usize> = spec.out_space.iter().map(IndexRange::size).collect();
    let mut point = vec![0i64; full_space.len()];

    for_each_point(&full_space, &mut point, &mut |idx| {
        if let Some(cond) = &spec.cond {
            if !cond.eval(idx, operands, &[])?.as_bool()? {
                return Ok(());
            }
        }
        let elem = spec.body.eval(idx, operands, &[])?;
        // Flat output position.
        let mut flat = 0usize;
        for (d, r) in spec.out_space.iter().enumerate() {
            flat = flat * out_dims[d] + (idx[d] - r.lo) as usize;
        }
        // Flat reduced position (for arg reductions).
        let mut red_flat = 0i64;
        for (d, r) in spec.red_space.iter().enumerate() {
            red_flat = red_flat * r.size() as i64 + (idx[spec.out_space.len() + d] - r.lo);
        }
        let slot = &mut acc[flat];
        match (&spec.op, slot.as_ref()) {
            (ReduceOp::Builtin(b), None) => {
                if b.is_arg() {
                    best[flat] = red_flat;
                }
                *slot = Some(elem);
            }
            (ReduceOp::Builtin(b), Some(prev)) => {
                if b.is_arg() {
                    let p = prev.as_real()?;
                    let v = elem.as_real()?;
                    let better = if *b == BuiltinReduction::Argmax { v > p } else { v < p };
                    if better {
                        best[flat] = red_flat;
                        *slot = Some(elem);
                    }
                } else {
                    let combined = combine_builtin(*b, *prev, elem)?;
                    *slot = Some(combined);
                }
            }
            (ReduceOp::Custom { combiner, .. }, Some(prev)) => {
                let v = combiner.eval(&[], &[], &[*prev, elem])?;
                *slot = Some(v);
            }
            (ReduceOp::Custom { .. }, None) => {
                *slot = Some(elem);
            }
        }
        Ok(())
    })?;

    // Materialize the output tensor.
    let carry_shift = usize::from(spec.write.carried);
    let mut out = init_output(&spec.write, operands, out_dtype)?;
    let _ = carry_shift;
    let mut opoint = vec![0i64; spec.out_space.len()];
    let mut lhs_point = vec![0i64; spec.write.lhs.len()];
    let mut flat = 0usize;
    for_each_point(&spec.out_space.clone(), &mut opoint, &mut |idx| {
        let value = match (&spec.op, acc[flat]) {
            (ReduceOp::Builtin(b), None) => {
                if b.is_arg() {
                    Scalar::Real(0.0)
                } else {
                    Scalar::Real(b.identity())
                }
            }
            (ReduceOp::Builtin(b), Some(v)) => {
                if b.is_arg() {
                    Scalar::Real(best[flat] as f64)
                } else {
                    v
                }
            }
            (ReduceOp::Custom { .. }, None) => Scalar::Real(0.0),
            (ReduceOp::Custom { .. }, Some(v)) => v,
        };
        for (slot, l) in spec.write.lhs.iter().enumerate() {
            lhs_point[slot] = l.eval_index(idx)?;
        }
        out.set(&lhs_point, value)?;
        flat += 1;
        Ok(())
    })?;
    Ok(out)
}

fn combine_builtin(b: BuiltinReduction, prev: Scalar, elem: Scalar) -> Result<Scalar, ExecError> {
    // Sum/prod work on complex values (FFT); the rest require reals.
    match (b, prev, elem) {
        (BuiltinReduction::Sum, a, e) => Ok(crate::kernel::eval_binary(pmlang::BinOp::Add, a, e)?),
        (BuiltinReduction::Prod, a, e) => Ok(crate::kernel::eval_binary(pmlang::BinOp::Mul, a, e)?),
        (b, a, e) => Ok(Scalar::Real(b.combine(a.as_real()?, e.as_real()?))),
    }
}

fn exec_scalar(kind: &crate::graph::ScalarKind, operands: &[&Tensor]) -> Result<Tensor, ExecError> {
    use crate::graph::ScalarKind;
    let get = |i: usize| -> Result<Scalar, ExecError> {
        operands
            .get(i)
            .map(|t| t.get_flat(0))
            .ok_or_else(|| ExecError::new("missing scalar operand"))
    };
    let v = match kind {
        ScalarKind::Const(c) => Scalar::Real(*c),
        ScalarKind::Bin(op) => crate::kernel::eval_binary(*op, get(0)?, get(1)?)?,
        ScalarKind::Un(op) => {
            let k = KExpr::Unary(*op, Box::new(KExpr::Arg(0)));
            k.eval(&[], &[], &[get(0)?])?
        }
        ScalarKind::Func(f) => {
            let args: Vec<KExpr> = (0..f.arity()).map(KExpr::Arg).collect();
            let k = KExpr::Call(*f, args);
            let vals: Vec<Scalar> = (0..f.arity()).map(&get).collect::<Result<_, _>>()?;
            k.eval(&[], &[], &vals)?
        }
        ScalarKind::Select => {
            if get(0)?.as_bool()? {
                get(1)?
            } else {
                get(2)?
            }
        }
    };
    let mut t = Tensor::zeros(pmlang::DType::Float, vec![]);
    if let Scalar::Complex(..) = v {
        t = Tensor::zeros(pmlang::DType::Complex, vec![]);
    }
    t.set_flat(0, v)?;
    Ok(t)
}

/// Calls `f` for every point of `space` in row-major order, reusing `point`
/// as the cursor.
pub fn for_each_point(
    space: &[IndexRange],
    point: &mut [i64],
    f: &mut impl FnMut(&[i64]) -> Result<(), ExecError>,
) -> Result<(), ExecError> {
    fn rec(
        space: &[IndexRange],
        dim: usize,
        point: &mut [i64],
        f: &mut impl FnMut(&[i64]) -> Result<(), ExecError>,
    ) -> Result<(), ExecError> {
        if dim == space.len() {
            return f(point);
        }
        let (lo, hi) = (space[dim].lo, space[dim].hi);
        let mut i = lo;
        while i <= hi {
            point[dim] = i;
            rec(space, dim + 1, point, f)?;
            i += 1;
        }
        Ok(())
    }
    rec(space, 0, point, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, Bindings};
    use pmlang::DType;

    fn run_once(
        src: &str,
        feeds: Vec<(&str, Tensor)>,
        sizes: Vec<(&str, i64)>,
    ) -> HashMap<String, Tensor> {
        let prog = pmlang::parse(src).unwrap();
        pmlang::check(&prog).unwrap();
        let graph = build(&prog, &Bindings::from_sizes(sizes)).unwrap();
        let mut m = Machine::new(graph);
        let feeds: HashMap<String, Tensor> =
            feeds.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        m.invoke(&feeds).unwrap()
    }

    fn vec_t(v: Vec<f64>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(DType::Float, vec![n], v).unwrap()
    }

    fn mat_t(r: usize, c: usize, v: Vec<f64>) -> Tensor {
        Tensor::from_vec(DType::Float, vec![r, c], v).unwrap()
    }

    #[test]
    fn elementwise_scale() {
        let out = run_once(
            "main(input float x[4], output float y[4]) {
                 index i[0:3];
                 y[i] = 2.0 * x[i] + 1.0;
             }",
            vec![("x", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn matvec_via_reduce() {
        let out = run_once(
            "main(input float A[2][3], input float B[3], output float C[2]) {
                 index i[0:2], j[0:1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }",
            vec![
                ("A", mat_t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])),
                ("B", vec_t(vec![1.0, 1.0, 1.0])),
            ],
            vec![],
        );
        assert_eq!(out["C"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn conditional_reduction_skips_diagonal() {
        let out = run_once(
            "main(input float A[3][3], output float res) {
                 index i[0:2], j[0:2];
                 res = sum[i][j: j != i](A[i][j]);
             }",
            vec![("A", mat_t(3, 3, vec![9.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 1.0, 9.0]))],
            vec![],
        );
        assert_eq!(out["res"].scalar_value().unwrap(), 6.0);
    }

    #[test]
    fn custom_reduction_min() {
        let out = run_once(
            "reduction mn(a, b) = a < b ? a : b;
             main(input float A[5], output float res) {
                 index i[0:4];
                 res = mn[i](A[i]);
             }",
            vec![("A", vec_t(vec![3.0, -1.0, 4.0, 1.0, 5.0]))],
            vec![],
        );
        assert_eq!(out["res"].scalar_value().unwrap(), -1.0);
    }

    #[test]
    fn argmax_returns_position() {
        let out = run_once(
            "main(input float A[5], output float which) {
                 index i[0:4];
                 which = argmax[i](A[i]);
             }",
            vec![("A", vec_t(vec![3.0, -1.0, 9.0, 1.0, 5.0]))],
            vec![],
        );
        assert_eq!(out["which"].scalar_value().unwrap(), 2.0);
    }

    #[test]
    fn strided_partial_write_carries_previous() {
        // First write fills, second overwrites even positions.
        let out = run_once(
            "main(input float x[6], output float y[6]) {
                 index i[0:5], j[0:2];
                 y[i] = x[i];
                 y[2*j] = 0.0 - 1.0;
             }",
            vec![("x", vec_t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[-1.0, 2.0, -1.0, 4.0, -1.0, 6.0]);
    }

    #[test]
    fn ssa_read_then_update() {
        // pred[k] = ...; pred[k] = pred[k] + ...  (paper lines 7-8)
        let out = run_once(
            "main(input float a[3], input float b[3], output float y[3]) {
                 index k[0:2];
                 y[k] = a[k];
                 y[k] = y[k] + b[k];
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0])), ("b", vec_t(vec![10.0, 20.0, 30.0]))],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn component_instantiation_inlines() {
        let out = run_once(
            "mvmul(input float A[m][n], input float B[n], output float C[m]) {
                 index i[0:n-1], j[0:m-1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }
             main(input float W[2][2], input float x[2], output float y[2]) {
                 DA: mvmul(W, x, y);
             }",
            vec![("W", mat_t(2, 2, vec![1.0, 2.0, 3.0, 4.0])), ("x", vec_t(vec![1.0, 10.0]))],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[21.0, 43.0]);
    }

    #[test]
    fn state_persists_across_invocations() {
        let prog = pmlang::parse(
            "main(input float x, state float acc, output float y) {
                 acc = acc + x;
                 y = acc;
             }",
        )
        .unwrap();
        let graph = build(&prog, &Bindings::default()).unwrap();
        let mut m = Machine::new(graph);
        for (step, expect) in [(1.0, 1.0), (2.0, 3.0), (3.0, 6.0)] {
            let feeds = HashMap::from([("x".to_string(), Tensor::scalar(DType::Float, step))]);
            let out = m.invoke(&feeds).unwrap();
            assert_eq!(out["y"].scalar_value().unwrap(), expect);
        }
        assert_eq!(m.state("acc").unwrap().scalar_value().unwrap(), 6.0);
    }

    #[test]
    fn int_param_binds_at_build_time() {
        let out = run_once(
            "main(input float x[8], param int h, output float y[2]) {
                 index j[0:1];
                 y[j] = x[h*j];
             }",
            vec![("x", vec_t(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]))],
            vec![("h", 3)],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[0.0, 3.0]);
    }

    #[test]
    fn nonlinear_builtin_in_kernel() {
        let out = run_once(
            "main(input float x[3], output float y[3]) {
                 index i[0:2];
                 y[i] = sigmoid(x[i]);
             }",
            vec![("x", vec_t(vec![-50.0, 0.0, 50.0]))],
            vec![],
        );
        let y = out["y"].as_real_slice().unwrap();
        assert!(y[0] < 1e-10 && (y[1] - 0.5).abs() < 1e-12 && y[2] > 1.0 - 1e-10);
    }

    #[test]
    fn missing_feed_reports_name() {
        let prog = pmlang::parse("main(input float x, output float y) { y = x; }").unwrap();
        let graph = build(&prog, &Bindings::default()).unwrap();
        let mut m = Machine::new(graph);
        let err = m.invoke(&HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("`x`"), "{err}");
    }

    #[test]
    fn feed_shape_mismatch_rejected() {
        let prog = pmlang::parse(
            "main(input float x[3], output float y[3]) { index i[0:2]; y[i] = x[i]; }",
        )
        .unwrap();
        let graph = build(&prog, &Bindings::default()).unwrap();
        let mut m = Machine::new(graph);
        let feeds = HashMap::from([("x".to_string(), vec_t(vec![1.0, 2.0]))]);
        assert!(m.invoke(&feeds).is_err());
    }

    #[test]
    fn component_reading_output_incoming_value() {
        // The paper's update_ctrl_model reads its output arg (bound to a
        // written caller variable) before overwriting it.
        let out = run_once(
            "shiftset(input float g[4], output float c[4], param int h) {
                 index i[0:2], j[0:3];
                 c[j] = c[j] + g[j];
                 c[h] = 0.0;
             }
             main(input float g[4], state float c[4], output float y[4]) {
                 index j[0:3];
                 RBT: shiftset(g, c, 3);
                 y[j] = c[j];
             }",
            vec![("g", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        // state c starts at zeros; c = c + g = g; then c[3] = 0.
        assert_eq!(out["y"].as_real_slice().unwrap(), &[1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn reduce_inside_larger_expression() {
        let out = run_once(
            "main(input float A[2][3], input float b[2], output float y[2]) {
                 index i[0:2], j[0:1];
                 y[j] = sum[i](A[j][i]) + b[j];
             }",
            vec![
                ("A", mat_t(2, 3, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0])),
                ("b", vec_t(vec![0.5, 0.25])),
            ],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[3.5, 6.25]);
    }

    #[test]
    fn two_reductions_in_one_statement() {
        let out = run_once(
            "main(input float a[4], input float b[4], output float y) {
                 index i[0:3], j[0:3];
                 y = sum[i](a[i]) * sum[j](b[j]);
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0, 4.0])), ("b", vec_t(vec![1.0, 1.0, 1.0, 1.0]))],
            vec![],
        );
        assert_eq!(out["y"].scalar_value().unwrap(), 40.0);
    }

    #[test]
    fn empty_reduction_space_yields_identity() {
        let out = run_once(
            "main(input float a[4], output float y) {
                 index i[0:3];
                 y = sum[i: i > 100](a[i]);
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        assert_eq!(out["y"].scalar_value().unwrap(), 0.0);
    }

    #[test]
    fn complex_fft_style_butterfly() {
        // One butterfly stage on two complex points.
        let out = run_once(
            "main(input complex x[2], output complex y[2]) {
                 y[0] = x[0] + x[1];
                 y[1] = x[0] - x[1];
             }",
            vec![("x", Tensor::from_complex_vec(vec![2], vec![(1.0, 2.0), (3.0, -1.0)]).unwrap())],
            vec![],
        );
        let y = out["y"].as_complex_slice().unwrap();
        assert_eq!(y[0], (4.0, 1.0));
        assert_eq!(y[1], (-2.0, 3.0));
    }

    #[test]
    fn bitrev_indexing() {
        let out = run_once(
            "main(input float x[8], output float y[8]) {
                 index i[0:7];
                 y[i] = x[bitrev(i, 3)];
             }",
            vec![("x", vec_t(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]))],
            vec![],
        );
        assert_eq!(out["y"].as_real_slice().unwrap(), &[0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    fn any_and_all_builtins() {
        let out = run_once(
            "main(input float a[4], output float anyp, output float allp) {
                 index i[0:3];
                 anyp = any[i](a[i] > 2.5);
                 allp = all[i](a[i] > 0.5);
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        assert_eq!(out["anyp"].scalar_value().unwrap(), 1.0);
        assert_eq!(out["allp"].scalar_value().unwrap(), 1.0);
        let out = run_once(
            "main(input float a[4], output float anyp, output float allp) {
                 index i[0:3];
                 anyp = any[i](a[i] > 10.0);
                 allp = all[i](a[i] > 1.5);
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        assert_eq!(out["anyp"].scalar_value().unwrap(), 0.0);
        assert_eq!(out["allp"].scalar_value().unwrap(), 0.0);
    }

    #[test]
    fn prod_and_max_builtins() {
        let out = run_once(
            "main(input float a[4], output float p, output float m) {
                 index i[0:3];
                 p = prod[i](a[i]);
                 m = max[i](a[i]);
             }",
            vec![("a", vec_t(vec![1.0, 2.0, 3.0, 4.0]))],
            vec![],
        );
        assert_eq!(out["p"].scalar_value().unwrap(), 24.0);
        assert_eq!(out["m"].scalar_value().unwrap(), 4.0);
    }
}
