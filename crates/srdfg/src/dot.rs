//! Graphviz (DOT) export for srDFGs, for debugging and documentation.

use crate::graph::{NodeKind, SrDfg};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax. Component sub-graphs become
/// clusters, mirroring the paper's Fig. 5 nesting.
pub fn to_dot(graph: &SrDfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name);
    let _ = writeln!(out, "  rankdir=LR; node [shape=box, fontsize=10];");
    render_into(graph, "", &mut out, 1);
    let _ = writeln!(out, "}}");
    out
}

fn render_into(graph: &SrDfg, prefix: &str, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    for (id, node) in graph.iter_nodes() {
        let label = match &node.kind {
            NodeKind::Component(_) => format!("{} (component)", node.name),
            NodeKind::Map(_) => format!("{} (map)", node.name),
            NodeKind::Reduce(_) => format!("{} (reduce)", node.name),
            NodeKind::Scalar(_) => node.name.to_string(),
            NodeKind::ConstTensor(_) => "const".into(),
            NodeKind::Load => "load".into(),
            NodeKind::Store => "store".into(),
            NodeKind::Unpack => "unpack".into(),
            NodeKind::Pack => "pack".into(),
        };
        let domain = node.domain.map(|d| format!(" [{}]", d.keyword())).unwrap_or_default();
        let _ = writeln!(out, "{pad}\"{prefix}{id}\" [label=\"{label}{domain}\"];");
        if let NodeKind::Component(sub) = &node.kind {
            if depth <= 3 {
                let _ = writeln!(out, "{pad}subgraph \"cluster_{prefix}{id}\" {{");
                let _ = writeln!(out, "{pad}  label=\"{}\";", node.name);
                render_into(sub, &format!("{prefix}{id}."), out, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
    for eid in graph.edge_ids() {
        let edge = graph.edge(eid);
        if let Some((src, _)) = edge.producer {
            for &(dst, _) in &edge.consumers {
                let _ = writeln!(
                    out,
                    "{pad}\"{prefix}{src}\" -> \"{prefix}{dst}\" [label=\"{} {:?}\", fontsize=8];",
                    edge.meta.name, edge.meta.shape
                );
            }
        }
    }
}

/// Renders a human-readable textual IR listing: one line per node with
/// its operation, domain, operand/result edges, and iteration spaces.
/// Component sub-graphs indent beneath their node.
pub fn to_text(graph: &SrDfg) -> String {
    let mut out = String::new();
    render_text(graph, 0, &mut out);
    out
}

fn render_text(graph: &SrDfg, depth: usize, out: &mut String) {
    use crate::graph::{IndexRange, NodeKind};
    use std::fmt::Write as _;
    let pad = "  ".repeat(depth);
    let fmt_space = |space: &[IndexRange]| -> String {
        space.iter().map(|r| format!("{}[{}:{}]", r.name, r.lo, r.hi)).collect::<Vec<_>>().join("")
    };
    let fmt_edges = |ids: &[crate::graph::EdgeId]| -> String {
        ids.iter()
            .map(|&e| {
                let m = &graph.edge(e).meta;
                if m.name.is_empty() {
                    format!("{e}")
                } else {
                    format!("{}:{:?}", m.name, m.shape)
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    for (id, node) in graph.iter_nodes() {
        let domain = node.domain.map(|d| format!(" @{}", d.keyword())).unwrap_or_default();
        let detail = match &node.kind {
            NodeKind::Map(m) => format!(" over {}  kernel {}", fmt_space(&m.out_space), m.kernel),
            NodeKind::Reduce(r) => format!(
                " over {} reduce {}  body {}",
                fmt_space(&r.out_space),
                fmt_space(&r.red_space),
                r.body
            ),
            NodeKind::Component(_) => " (component)".into(),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{pad}{id} {name}{domain}: ({inputs}) -> ({outputs}){detail}",
            name = node.name,
            inputs = fmt_edges(&node.inputs),
            outputs = fmt_edges(&node.outputs),
        );
        if let NodeKind::Component(sub) = &node.kind {
            render_text(sub, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, Bindings};

    #[test]
    fn text_ir_lists_nodes_with_kernels() {
        let prog = pmlang::parse(
            "main(input float A[2][3], input float B[3], output float C[2]) {
                 index i[0:2], j[0:1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }",
        )
        .unwrap();
        let g = crate::build::build(&prog, &crate::build::Bindings::default()).unwrap();
        let text = to_text(&g);
        assert!(text.contains("matvec"), "{text}");
        assert!(text.contains("j[0:1]"), "{text}");
        assert!(text.contains("reduce i[0:2]"), "{text}");
        assert!(text.contains("%0[i0][i1]"), "{text}");
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let prog = pmlang::parse(
            "f(input float x[2], output float y[2]) { index i[0:1]; y[i] = x[i] + 1.0; }
             main(input float a[2], output float b[2]) { DSP: f(a, b); }",
        )
        .unwrap();
        let g = build(&prog, &Bindings::default()).unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("component"), "{dot}");
        assert!(dot.contains("DSP"), "{dot}");
        assert!(dot.contains("cluster"), "{dot}");
    }
}
