//! Request budgets for cooperative cancellation.
//!
//! A [`Budget`] bounds how much work one request may consume across the
//! whole pipeline — Algorithm 1 lowering rounds, Algorithm 2 fragment
//! compilation, and the SoC dispatch/retry loops all call
//! [`Budget::charge`] at loop granularity and unwind with a typed
//! [`BudgetExceeded`] the moment the budget runs out. Nothing is ever
//! killed: cancellation is purely cooperative, so a request past its
//! deadline releases its worker at the next checkpoint instead of holding
//! it to completion.
//!
//! Two independent limits compose:
//!
//! * **deadline** — a wall-clock bound measured from budget creation.
//!   This is the real-world guard rail (a wedged request cannot occupy a
//!   serve worker forever), but it is inherently timing-dependent.
//! * **fuel** — a count of deterministic work units (lowering splices,
//!   compiled fragments, dispatch attempts, invocations). Because every
//!   charge site is a pure function of the program and chaos seed, fuel
//!   exhaustion is *bit-for-bit reproducible*, which is what the chaos
//!   soak harness uses to inject deterministic "deadline jitter".
//!
//! The default [`Budget::unlimited`] carries no state and its checks
//! compile down to a branch on `None`, so un-budgeted callers (the vast
//! majority) pay nothing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed budget-exhaustion report: which pipeline stage hit the wall and
/// which limit was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The charge site that observed exhaustion (`lower`, `compile`,
    /// `dispatch`, `invoke`, …).
    pub stage: &'static str,
    /// The fuel limit, when fuel ran out.
    pub fuel: Option<u64>,
    /// The wall-clock deadline, when the deadline passed.
    pub deadline: Option<Duration>,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately limit-only (no elapsed/spent figures): the message
        // travels on the serve wire, where responses must be byte-stable
        // across replays of the same seed.
        match (self.fuel, self.deadline) {
            (Some(fuel), _) => {
                write!(f, "request budget exhausted during {}: fuel limit {fuel}", self.stage)
            }
            (None, Some(d)) => {
                write!(f, "request deadline of {} ms exceeded during {}", d.as_millis(), self.stage)
            }
            (None, None) => write!(f, "request budget exhausted during {}", self.stage),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct Inner {
    start: Instant,
    deadline: Option<Duration>,
    fuel: Option<u64>,
    spent: AtomicU64,
}

/// A shareable request budget (cheap [`Arc`] handle; clones alias one
/// spend counter, so the compile and execute stages of a request draw
/// from the same pool).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

/// Budgets compare by their *limits*, not their live spend — two configs
/// asking for the same bounds are the same configuration. This is what
/// lets containing types (e.g. a chaos config) keep deriving `Eq`.
impl PartialEq for Budget {
    fn eq(&self, other: &Budget) -> bool {
        self.limits() == other.limits()
    }
}

impl Eq for Budget {}

impl Budget {
    /// The no-op budget: every charge succeeds, nothing is counted.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget with an optional wall-clock deadline (measured from now)
    /// and an optional fuel limit. `(None, None)` is [`Budget::unlimited`].
    pub fn new(deadline: Option<Duration>, fuel: Option<u64>) -> Budget {
        if deadline.is_none() && fuel.is_none() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                deadline,
                fuel,
                spent: AtomicU64::new(0),
            })),
        }
    }

    /// True when no limit is set (charges are free).
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The configured `(deadline, fuel)` limits.
    pub fn limits(&self) -> (Option<Duration>, Option<u64>) {
        match &self.inner {
            None => (None, None),
            Some(i) => (i.deadline, i.fuel),
        }
    }

    /// Fuel units charged so far (0 for unlimited budgets).
    pub fn spent_units(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spent.load(Ordering::Relaxed))
    }

    /// Charges `units` of work at `stage`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the cumulative fuel spend passes the fuel
    /// limit, or the wall clock has passed the deadline. Fuel exhaustion
    /// is deterministic (charge totals are pure functions of the
    /// program); deadline exhaustion depends on the host's wall clock.
    pub fn charge(&self, stage: &'static str, units: u64) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let spent = inner.spent.fetch_add(units, Ordering::Relaxed).saturating_add(units);
        if let Some(fuel) = inner.fuel {
            if spent > fuel {
                return Err(BudgetExceeded { stage, fuel: Some(fuel), deadline: inner.deadline });
            }
        }
        if let Some(deadline) = inner.deadline {
            if inner.start.elapsed() > deadline {
                return Err(BudgetExceeded { stage, fuel: None, deadline: Some(deadline) });
            }
        }
        Ok(())
    }

    /// Whether the budget is already exhausted, without charging
    /// anything. Used by admission paths to turn away expired requests
    /// before any pipeline stage runs.
    pub fn check(&self, stage: &'static str) -> Result<(), BudgetExceeded> {
        self.charge(stage, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_charges_are_free() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            b.charge("lower", u64::MAX / 2).unwrap();
        }
        assert_eq!(b.spent_units(), 0);
    }

    #[test]
    fn fuel_exhaustion_is_deterministic() {
        for _ in 0..3 {
            let b = Budget::new(None, Some(10));
            assert!(b.charge("lower", 4).is_ok());
            assert!(b.charge("lower", 6).is_ok(), "exactly at the limit is fine");
            let err = b.charge("compile", 1).unwrap_err();
            assert_eq!(err.stage, "compile");
            assert_eq!(err.fuel, Some(10));
            assert!(err.to_string().contains("fuel limit 10"), "{err}");
        }
    }

    #[test]
    fn clones_share_one_spend_counter() {
        let a = Budget::new(None, Some(5));
        let b = a.clone();
        assert!(a.charge("lower", 3).is_ok());
        assert!(b.charge("dispatch", 3).is_err(), "clone must see the shared spend");
    }

    #[test]
    fn expired_deadline_fails_check_without_charging() {
        let b = Budget::new(Some(Duration::ZERO), None);
        std::thread::sleep(Duration::from_millis(2));
        let err = b.check("admission").unwrap_err();
        assert_eq!(err.stage, "admission");
        assert!(err.deadline.is_some());
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn equality_compares_limits_not_spend() {
        let a = Budget::new(None, Some(7));
        let b = Budget::new(None, Some(7));
        a.charge("lower", 3).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, Budget::new(None, Some(8)));
        assert_eq!(Budget::new(None, None), Budget::unlimited());
    }
}
