//! The hash-consed payload store backing the srDFG (DESIGN.md §13).
//!
//! Template instantiation used to *materialize* every duplicated node and
//! edge payload: splicing a 100-node expansion cloned 100 `MapSpec`s /
//! `ScalarKind`s and 100 `EdgeMeta`s, so a kmeans-784 lowering heap-copied
//! ~78k kernels that were drawn from a couple dozen distinct values. This
//! module stores each distinct payload **once** in a process-global arena,
//! keyed by the structural hashes [`crate::hash`] already defines, and
//! hands out [`Consed<T>`] handles (shared, immutable, `Deref<Target=T>`).
//! Cloning a handle is a refcount bump, so splicing becomes reference
//! rewiring; equality gets a pointer fast path; and the structural hash of
//! a payload is read back in O(1) from the handle.
//!
//! Interned payloads are **immutable**. Passes that need to diverge one
//! instance (constant folding into a single copy, slot pruning) go through
//! copy-on-write: read the value, clone it, rewrite, re-intern, and store
//! the *new* handle — never mutate through a handle. The graph-side entry
//! points ([`crate::graph::SrDfg::edit_edge_meta`], the `NodeKind`
//! constructors) make that the only expressible discipline.
//!
//! Setting `PM_SRDFG_UNSHARED=1` disables deduplication for the whole
//! process: every intern call allocates a fresh record (fresh arena id,
//! same structural hash). This is the reference "unshared" configuration
//! the differential suite runs against — byte-for-byte identical compiler
//! output proves sharing is unobservable.

use crate::graph::{EdgeMeta, MapSpec, ReduceSpec, ScalarKind};
use crate::hash::FxBuildHasher;
use crate::value::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One arena record: the payload plus its identity within the store.
pub struct ConsedRec<T> {
    id: u32,
    hash: u64,
    value: T,
}

/// A shared handle to an interned payload.
///
/// `Deref<Target = T>` keeps read sites source-compatible; `Debug` is
/// transparent (it prints exactly what the payload would), so digests and
/// diagnostics are unchanged by interning. Equality takes a pointer fast
/// path (shared records are equal by identity) before falling back to
/// hash-then-content comparison.
pub struct Consed<T>(Arc<ConsedRec<T>>);

impl<T> Consed<T> {
    /// The payload's arena id (unique per distinct value per type while
    /// sharing is enabled; unique per intern call in unshared mode).
    pub fn arena_id(&self) -> u32 {
        self.0.id
    }

    /// The payload's structural hash, cached at intern time.
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }

    /// Address identity of the shared record — stable for the life of the
    /// handle, equal exactly for handles sharing one record. Useful as a
    /// tiny memo key (e.g. the per-splice span-stamping cache).
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Borrows the payload (what `Deref` returns; explicit form for
    /// turbofish-free disambiguation).
    pub fn get(&self) -> &T {
        &self.0.value
    }
}

impl<T> Clone for Consed<T> {
    fn clone(&self) -> Self {
        Consed(Arc::clone(&self.0))
    }
}

impl<T> Deref for Consed<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Consed<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Consed<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash && self.0.value == other.0.value)
    }
}

/// A payload type the store can intern.
pub trait Internable: Clone + PartialEq + Sized + 'static {
    /// Content digest; equal values must hash equal (see [`crate::hash`]).
    fn structural_hash(&self) -> u64;
    /// Approximate heap footprint of one record (for the sharing report).
    fn heap_bytes(&self) -> usize;
    /// The process-global interner for this type.
    fn interner() -> &'static Mutex<Interner<Self>>;
}

impl<T: Internable> From<T> for Consed<T> {
    fn from(value: T) -> Self {
        intern(value)
    }
}

/// Per-type intern table: structural hash → records with that hash (same-
/// hash different-content collisions chain in the bucket's `Vec`).
pub struct Interner<T> {
    buckets: HashMap<u64, Vec<Consed<T>>, FxBuildHasher>,
    next_id: u32,
    records: u64,
    bytes: u64,
    hits: u64,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner { buckets: HashMap::default(), next_id: 0, records: 0, bytes: 0, hits: 0 }
    }
}

/// Store generation: bumped whenever any table admits a new record.
/// Analyses memoized against interned payloads (e.g. the pass manager's
/// structural-hash cache) can compare generations instead of rehashing.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The current store generation (monotone; one tick per new record).
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Relaxed)
}

/// True when `PM_SRDFG_UNSHARED=1` disabled deduplication (read once).
pub fn sharing_disabled() -> bool {
    static UNSHARED: OnceLock<bool> = OnceLock::new();
    *UNSHARED.get_or_init(|| std::env::var("PM_SRDFG_UNSHARED").is_ok_and(|v| v == "1"))
}

/// Interns `value`, returning the shared handle for its content (or a
/// fresh unique record in unshared mode).
pub fn intern<T: Internable>(value: T) -> Consed<T> {
    let hash = value.structural_hash();
    let mut table = T::interner().lock().expect("srdfg store poisoned");
    if sharing_disabled() {
        return table.insert(value, hash);
    }
    if let Some(bucket) = table.buckets.get(&hash) {
        if let Some(found) = bucket.iter().find(|c| c.0.value == value) {
            let found = found.clone();
            table.hits += 1;
            return found;
        }
    }
    table.insert(value, hash)
}

impl<T: Internable> Interner<T> {
    fn insert(&mut self, value: T, hash: u64) -> Consed<T> {
        let id = self.next_id;
        self.next_id += 1;
        self.records += 1;
        self.bytes += value.heap_bytes() as u64;
        GENERATION.fetch_add(1, Ordering::Relaxed);
        let handle = Consed(Arc::new(ConsedRec { id, hash, value }));
        if !sharing_disabled() {
            self.buckets.entry(hash).or_default().push(handle.clone());
        }
        handle
    }

    fn stats(&self) -> TableStats {
        TableStats { records: self.records, bytes: self.bytes, hits: self.hits }
    }
}

/// One intern table's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Distinct records admitted.
    pub records: u64,
    /// Approximate heap bytes those records hold.
    pub bytes: u64,
    /// Intern calls answered by an existing record.
    pub hits: u64,
}

/// Snapshot of every intern table (process-global, monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `MapSpec` table.
    pub map_specs: TableStats,
    /// `ReduceSpec` table.
    pub reduce_specs: TableStats,
    /// `ScalarKind` table.
    pub scalar_kinds: TableStats,
    /// `Tensor` (`ConstTensor`) table.
    pub tensors: TableStats,
    /// `EdgeMeta` table.
    pub edge_metas: TableStats,
    /// Store generation at snapshot time.
    pub generation: u64,
}

impl StoreStats {
    /// Total distinct records across all tables.
    pub fn records(&self) -> u64 {
        self.map_specs.records
            + self.reduce_specs.records
            + self.scalar_kinds.records
            + self.tensors.records
            + self.edge_metas.records
    }

    /// Total approximate arena heap bytes across all tables.
    pub fn bytes(&self) -> u64 {
        self.map_specs.bytes
            + self.reduce_specs.bytes
            + self.scalar_kinds.bytes
            + self.tensors.bytes
            + self.edge_metas.bytes
    }

    /// Total intern calls answered from existing records.
    pub fn hits(&self) -> u64 {
        self.map_specs.hits
            + self.reduce_specs.hits
            + self.scalar_kinds.hits
            + self.tensors.hits
            + self.edge_metas.hits
    }
}

fn table_stats<T: Internable>() -> TableStats {
    T::interner().lock().expect("srdfg store poisoned").stats()
}

/// Snapshots every intern table's counters.
pub fn store_stats() -> StoreStats {
    StoreStats {
        map_specs: table_stats::<MapSpec>(),
        reduce_specs: table_stats::<ReduceSpec>(),
        scalar_kinds: table_stats::<ScalarKind>(),
        tensors: table_stats::<Tensor>(),
        edge_metas: table_stats::<EdgeMeta>(),
        generation: generation(),
    }
}

/// Logical-vs-physical footprint of one graph under the consed store.
///
/// *Logical* counts what a flat (unshared) representation would have
/// materialized: one payload per node, one metadata per edge. *Physical*
/// counts the distinct shared records actually referenced. The
/// materialization ratio `physical / logical` is the headline sharing
/// metric (a lowered kmeans-784 sits well under 25%); in
/// `PM_SRDFG_UNSHARED=1` mode every record is unique and the two columns
/// coincide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Live nodes (component sub-graphs included, recursively).
    pub logical_nodes: u64,
    /// Distinct records behind those nodes: one per unique interned
    /// payload, plus one per payload-free node (`Load`/`Store`/…, and
    /// `Component` shells, which are never shared).
    pub physical_nodes: u64,
    /// Edges (component sub-graphs included).
    pub logical_edges: u64,
    /// Distinct `EdgeMeta` records behind those edges.
    pub physical_edges: u64,
    /// Heap bytes a flat representation would hold for payloads + metas.
    pub logical_bytes: u64,
    /// Heap bytes the distinct shared records hold.
    pub physical_bytes: u64,
}

/// Measures how much of `g` is structurally shared (see [`SharingStats`]).
pub fn sharing_stats(g: &crate::graph::SrDfg) -> SharingStats {
    use std::collections::HashSet;
    let mut s = SharingStats::default();
    let mut seen: HashSet<usize, FxBuildHasher> = HashSet::default();
    fn record<T: Internable>(
        c: &Consed<T>,
        seen: &mut HashSet<usize, FxBuildHasher>,
        s: &mut SharingStats,
    ) -> u64 {
        let bytes = c.heap_bytes() as u64;
        s.logical_bytes += bytes;
        if seen.insert(c.ptr_id()) {
            s.physical_bytes += bytes;
            1
        } else {
            0
        }
    }
    fn walk(
        g: &crate::graph::SrDfg,
        seen: &mut HashSet<usize, FxBuildHasher>,
        s: &mut SharingStats,
    ) {
        use crate::graph::NodeKind;
        for (_, node) in g.iter_nodes() {
            s.logical_nodes += 1;
            s.physical_nodes += match &node.kind {
                NodeKind::Map(m) => record(m, seen, s),
                NodeKind::Reduce(r) => record(r, seen, s),
                NodeKind::Scalar(k) => record(k, seen, s),
                NodeKind::ConstTensor(t) => record(t, seen, s),
                NodeKind::Component(sub) => {
                    walk(sub, seen, s);
                    1
                }
                NodeKind::Load | NodeKind::Store | NodeKind::Unpack | NodeKind::Pack => 1,
            };
        }
        for e in g.edge_ids() {
            s.logical_edges += 1;
            s.physical_edges += record(&g.edge(e).meta, seen, s);
        }
    }
    walk(g, &mut seen, &mut s);
    s
}

macro_rules! global_interner {
    ($ty:ty) => {
        fn interner() -> &'static Mutex<Interner<$ty>> {
            static TABLE: OnceLock<Mutex<Interner<$ty>>> = OnceLock::new();
            TABLE.get_or_init(Default::default)
        }
    };
}

impl Internable for MapSpec {
    fn structural_hash(&self) -> u64 {
        crate::hash::map_spec_hash(self)
    }
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<MapSpec>()
            + space_bytes(&self.out_space)
            + kexpr_bytes(&self.kernel)
            + write_bytes(&self.write)
    }
    global_interner!(MapSpec);
}

impl Internable for ReduceSpec {
    fn structural_hash(&self) -> u64 {
        crate::hash::reduce_spec_hash(self)
    }
    fn heap_bytes(&self) -> usize {
        let op = match &self.op {
            crate::graph::ReduceOp::Builtin(_) => 0,
            crate::graph::ReduceOp::Custom { name, combiner } => name.len() + kexpr_bytes(combiner),
        };
        std::mem::size_of::<ReduceSpec>()
            + op
            + space_bytes(&self.out_space)
            + space_bytes(&self.red_space)
            + self.cond.as_ref().map_or(0, kexpr_bytes)
            + kexpr_bytes(&self.body)
            + write_bytes(&self.write)
    }
    global_interner!(ReduceSpec);
}

impl Internable for ScalarKind {
    fn structural_hash(&self) -> u64 {
        crate::hash::scalar_kind_hash(self)
    }
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<ScalarKind>()
    }
    global_interner!(ScalarKind);
}

impl Internable for Tensor {
    fn structural_hash(&self) -> u64 {
        crate::hash::tensor_hash(self)
    }
    fn heap_bytes(&self) -> usize {
        let per = if self.as_complex_slice().is_some() { 16 } else { 8 };
        std::mem::size_of::<Tensor>() + self.len() * per + self.shape().len() * 8
    }
    global_interner!(Tensor);
}

impl Internable for EdgeMeta {
    fn structural_hash(&self) -> u64 {
        crate::hash::edge_meta_hash(self)
    }
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<EdgeMeta>() + self.name.len() + self.shape.len() * 8
    }
    global_interner!(EdgeMeta);
}

fn space_bytes(space: &[crate::graph::IndexRange]) -> usize {
    space.iter().map(|r| std::mem::size_of::<crate::graph::IndexRange>() + r.name.len()).sum()
}

fn write_bytes(w: &crate::graph::WriteSpec) -> usize {
    w.target_shape.len() * 8 + w.lhs.iter().map(kexpr_bytes).sum::<usize>()
}

/// Approximate deep heap size of a kernel tree (node count × node size).
fn kexpr_bytes(k: &crate::kernel::KExpr) -> usize {
    use crate::kernel::KExpr;
    let node = std::mem::size_of::<KExpr>();
    node + match k {
        KExpr::Const(_) | KExpr::Idx(_) | KExpr::Arg(_) => 0,
        KExpr::Operand { indices, .. } => indices.iter().map(kexpr_bytes).sum(),
        KExpr::Unary(_, a) => kexpr_bytes(a),
        KExpr::Binary(_, a, b) => kexpr_bytes(a) + kexpr_bytes(b),
        KExpr::Select(c, a, b) => kexpr_bytes(c) + kexpr_bytes(a) + kexpr_bytes(b),
        KExpr::Call(_, args) => args.iter().map(kexpr_bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Modifier;
    use pmlang::DType;

    fn meta(name: &str) -> EdgeMeta {
        EdgeMeta::new(name, DType::Float, Modifier::Temp, vec![4])
    }

    #[test]
    fn equal_content_shares_one_record() {
        let a = intern(meta("x"));
        let b = intern(meta("x"));
        if sharing_disabled() {
            assert_ne!(a.arena_id(), b.arena_id());
        } else {
            assert_eq!(a.arena_id(), b.arena_id());
            assert_eq!(a.ptr_id(), b.ptr_id());
        }
        assert_eq!(a, b);
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn different_content_gets_distinct_records() {
        let a = intern(meta("x"));
        let b = intern(meta("y"));
        assert_ne!(a.arena_id(), b.arena_id());
        assert_ne!(a, b);
    }

    #[test]
    fn debug_is_transparent() {
        let m = meta("x");
        let expect = format!("{m:?}");
        assert_eq!(format!("{:?}", intern(m)), expect);
    }

    #[test]
    fn generation_ticks_on_new_records_only() {
        let g0 = generation();
        let a = intern(meta("gen-probe"));
        let g1 = generation();
        assert!(g1 > g0, "new record must tick the generation");
        let b = intern(meta("gen-probe"));
        if !sharing_disabled() {
            assert_eq!(a.arena_id(), b.arena_id());
        }
    }
}
