//! Golden-file tests for `pmc lint` over the shipped examples: the full
//! caret-rendered output of each example is pinned under `tests/golden/`.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p polymath --test pmc_lint`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Repository root (the examples live at `<root>/examples/pm`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Runs `pmc` from the repo root so example paths render relatively.
fn pmc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmc")).args(args).current_dir(repo_root()).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Compares `pmc lint <example>` output against its golden file.
fn check_golden(example: &str) -> Output {
    let out = pmc(&["lint", &format!("examples/pm/{example}")]);
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{example}.lint.txt"));
    let actual = stdout(&out);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert_eq!(
        actual,
        expected,
        "lint output for {example} diverged from {} \
         (rerun with UPDATE_GOLDEN=1 to bless)",
        golden_path.display()
    );
    out
}

#[test]
fn lint_demo_matches_golden_and_reports_four_codes() {
    let out = check_golden("lint_demo.pm");
    // Warnings alone do not fail the build without --deny-warnings.
    assert!(out.status.success());
    let text = stdout(&out);
    for code in ["PM-W001", "PM-N002", "PM-W004", "PM-W006"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
    // Every finding carries a real source location (file:line:col arrow).
    let findings = text.matches("warning[").count() + text.matches("note[").count();
    let arrows = text.matches("--> examples/pm/lint_demo.pm:").count();
    assert_eq!(arrows, findings, "{text}");
}

#[test]
fn lint_demo_fails_under_deny_warnings() {
    let out = pmc(&["lint", "examples/pm/lint_demo.pm", "--deny-warnings"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--deny-warnings"), "{err}");
}

#[test]
fn clean_examples_have_no_errors_or_warnings() {
    for example in ["accumulator.pm", "moving_average.pm", "pagerank.pm"] {
        let out = check_golden(example);
        assert!(out.status.success(), "{example}");
        let text = stdout(&out);
        assert!(text.contains("0 error(s), 0 warning(s)"), "{example}:\n{text}");
        // Clean examples also survive --deny-warnings (notes are fine).
        let strict = pmc(&["lint", &format!("examples/pm/{example}"), "--deny-warnings"]);
        assert!(strict.status.success(), "{example} under --deny-warnings");
    }
}

#[test]
fn json_format_emits_machine_readable_diagnostics() {
    let out = pmc(&["lint", "examples/pm/lint_demo.pm", "--format", "json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let line = text.trim();
    assert!(line.starts_with('[') && line.ends_with(']'), "{line}");
    for field in ["\"code\":\"PM-W006\"", "\"severity\":\"warning\"", "\"line\":", "\"notes\":"] {
        assert!(line.contains(field), "missing {field} in:\n{line}");
    }
    // srDFG-level diagnostics still carry PMLang spans: no null spans here.
    assert!(!line.contains("\"span\":null"), "{line}");
}

#[test]
fn lint_rejects_unknown_format() {
    let out = pmc(&["lint", "examples/pm/lint_demo.pm", "--format", "yaml"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --format"));
}
