//! Integration tests for the `pmc` binary: every subcommand driven
//! through the real executable, pinning exit codes, output formats, and
//! flag handling.

use std::io::Write;
use std::process::{Command, Output};

const TWO_DOMAIN: &str = "filt(input float x[16], param float h[16], output float y) {
    index i[0:15];
    y = sum[i](h[i]*x[i]);
}
clas(input float f, param float w[2], output float c) {
    c = sigmoid(w[0]*f + w[1]);
}
main(input float sig[16], param float taps[16], param float w[2], output float cls) {
    float feat;
    DSP: filt(sig, taps, feat);
    DA: clas(feat, w, cls);
}";

const TWO_DA: &str = "a(input float x[8], param float w[8], output float y[8]) {
    index i[0:7];
    y[i] = w[i]*x[i];
}
b(input float y[8], output float z) {
    index i[0:7];
    z = sum[i](y[i]*y[i]);
}
main(input float x[8], param float w[8], output float z) {
    float y[8];
    DA: a(x, w, y);
    DA: b(y, z);
}";

/// Writes `content` to a fresh temp file and returns its path.
fn temp_file(tag: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pmc_cli_{tag}_{}.pm", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn pmc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmc")).args(args).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn check_accepts_valid_program() {
    let f = temp_file("ok", TWO_DOMAIN);
    let out = pmc(&["check", f.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("OK"));
}

#[test]
fn check_rejects_with_located_diagnostic_and_exit_1() {
    let f = temp_file("bad", "main(input float x, output float y) { y = q; }");
    let out = pmc(&["check", f.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.starts_with("pmc: "), "{err}");
    assert!(err.contains("undeclared variable `q`"), "{err}");
    assert!(err.contains("1:43"), "{err}");
}

#[test]
fn compile_partitions_cross_domain() {
    let f = temp_file("compile", TWO_DOMAIN);
    let out = pmc(&["compile", f.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DECO"), "{text}");
    assert!(text.contains("TABLA"), "{text}");
    assert!(text.contains("% communication"), "{text}");
}

#[test]
fn compile_host_only_uses_the_cpu() {
    let f = temp_file("host", TWO_DOMAIN);
    let out = pmc(&["compile", f.to_str().unwrap(), "--host-only"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Xeon"), "{text}");
    assert!(!text.contains("DECO"), "{text}");
}

#[test]
fn compile_pin_splits_a_domain_across_targets() {
    let f = temp_file("pin", TWO_DA);
    let out = pmc(&["compile", f.to_str().unwrap(), "--pin", "a=HyperStreams", "--fragments"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("HyperStreams"), "{text}");
    assert!(text.contains("TABLA"), "{text}");
    // The fragment dump shows the cross-accelerator handoff.
    assert!(text.contains("partition HyperStreams"), "{text}");
    assert!(text.contains("store"), "{text}");
    assert!(text.contains("load"), "{text}");
}

#[test]
fn compile_pin_rejects_unknown_target() {
    let f = temp_file("pinbad", TWO_DA);
    let out = pmc(&["compile", f.to_str().unwrap(), "--pin", "a=NOPE"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown target `NOPE`"));
}

#[test]
fn compile_pin_requires_component_and_target() {
    let f = temp_file("pinarg", TWO_DA);
    for bad in [vec!["--pin"], vec!["--pin", "=TABLA"], vec!["--pin", "a="]] {
        let mut args = vec!["compile", f.to_str().unwrap()];
        args.extend(bad);
        let out = pmc(&args);
        assert!(!out.status.success(), "{:?} should fail", args);
    }
}

#[test]
fn lower_prints_the_refinement_trajectory() {
    let f = temp_file("lower", TWO_DA);
    let out = pmc(&["lower", f.to_str().unwrap(), "--target", "TABLA"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("before lowering:"), "{text}");
    assert!(text.contains("after lowering for TABLA:"), "{text}");
    assert!(text.contains("mul"), "{text}");
}

#[test]
fn ir_target_prints_the_lowered_listing() {
    let f = temp_file("ir", TWO_DA);
    let coarse = pmc(&["ir", f.to_str().unwrap()]);
    let fine = pmc(&["ir", f.to_str().unwrap(), "--target", "TABLA"]);
    assert!(coarse.status.success() && fine.status.success());
    assert!(stdout(&coarse).contains("component"), "{}", stdout(&coarse));
    assert!(stdout(&fine).contains("unpack"), "{}", stdout(&fine));
    assert!(stdout(&fine).len() > stdout(&coarse).len());
}

#[test]
fn run_executes_with_feeds_and_state() {
    let pm = temp_file(
        "runpm",
        "main(input float x[4], state float s, output float y) {
             index i[0:3];
             s = s + sum[i](x[i]);
             y = s;
         }",
    );
    let feeds = std::env::temp_dir().join(format!("pmc_cli_feeds_{}.txt", std::process::id()));
    std::fs::write(&feeds, "x 4 = 1 2 3 4\nstate s = 10\n").unwrap();
    let out = pmc(&["run", pm.to_str().unwrap(), feeds.to_str().unwrap(), "--iters", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    // 10 + 3*10 = 40 after three accumulating invocations.
    assert!(stdout(&out).contains("40"), "{}", stdout(&out));
}

#[test]
fn run_reports_missing_feeds() {
    let pm = temp_file("nofeed", "main(input float x, output float y) { y = x; }");
    let feeds = std::env::temp_dir().join(format!("pmc_cli_empty_{}.txt", std::process::id()));
    std::fs::write(&feeds, "").unwrap();
    let out = pmc(&["run", pm.to_str().unwrap(), feeds.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing feed"), "{}", stderr(&out));
}

#[test]
fn stats_reports_graph_shape() {
    let f = temp_file("stats", TWO_DOMAIN);
    let out = pmc(&["stats", f.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("nodes:"), "{text}");
    assert!(text.contains("domains:"), "{text}");
}

#[test]
fn fmt_roundtrips_through_check() {
    let f = temp_file("fmt", TWO_DOMAIN);
    let out = pmc(&["fmt", f.to_str().unwrap()]);
    assert!(out.status.success());
    let formatted = temp_file("fmt2", &stdout(&out));
    let out2 = pmc(&["check", formatted.to_str().unwrap()]);
    assert!(out2.status.success(), "{}", stderr(&out2));
}

#[test]
fn unknown_command_prints_usage() {
    let f = temp_file("usage", TWO_DOMAIN);
    let out = pmc(&["frobnicate", f.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = pmc(&["check", "/nonexistent/path.pm"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

/// Golden schema test for `pmc compile --timings --format json`: the JSON
/// object is a machine-readable interface (dashboards, CI perf tracking),
/// so its field names and shape are pinned here. Values are wall-clock
/// times and may vary; the *structure* may not.
#[test]
fn compile_timings_json_schema_is_stable() {
    let f = temp_file("timings", TWO_DOMAIN);
    let out = pmc(&["compile", f.to_str().unwrap(), "--timings", "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "not a JSON object: {json}");
    assert_eq!(json.lines().count(), 1, "must be a single-line object: {json}");

    // Top-level fields, in emission order.
    let fields =
        ["frontend", "build", "midend", "passes", "lower", "post_lower", "compile", "total"];
    let mut last = 0;
    for field in fields {
        let key = format!("\"{field}\":");
        let pos = json.find(&key).unwrap_or_else(|| panic!("missing field `{field}`: {json}"));
        assert!(pos > last || field == "frontend", "field `{field}` out of order: {json}");
        last = pos;
    }

    // Every stage duration is a bare (non-quoted, non-scientific) number.
    for field in ["frontend", "build", "midend", "lower", "post_lower", "compile", "total"] {
        let key = format!("\"{field}\":");
        let rest = &json[json.find(&key).unwrap() + key.len()..];
        let value: String = rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        assert!(value.parse::<f64>().is_ok(), "field `{field}` is not a plain number: {rest:.20}");
    }

    // The per-pass array: one object per mid-end pass, each carrying
    // exactly the documented keys.
    let passes_start = json.find("\"passes\":[").expect("passes array") + "\"passes\":[".len();
    let passes = &json[passes_start..json[passes_start..].find(']').unwrap() + passes_start];
    let objects: Vec<&str> = passes.split("},").collect();
    assert!(!objects.is_empty() && !passes.is_empty(), "passes array is empty: {json}");
    for obj in &objects {
        for key in ["\"pass\":", "\"seconds\":", "\"rewrites\":", "\"changed\":"] {
            assert!(obj.contains(key), "pass entry missing {key}: {obj}");
        }
    }
    // The standard pipeline's workhorses are present and named stably.
    for pass in ["constant-fold", "algebraic-simplify", "cse", "dead-node-elimination"] {
        assert!(passes.contains(&format!("\"pass\":\"{pass}\"")), "missing pass `{pass}`: {json}");
    }
}

/// Golden schema test for `pmc run --chaos-seed --format json`: like the
/// `--timings` JSON, the chaos report is a machine-readable interface, so
/// its field names and emission order are pinned here.
#[test]
fn run_chaos_json_schema_is_stable() {
    let pm = temp_file(
        "chaosjson",
        "main(input float x[4], state float s, output float y) {
             index i[0:3];
             s = s + sum[i](x[i]);
             y = s;
         }",
    );
    let feeds = std::env::temp_dir().join(format!("pmc_cli_chaosf_{}.txt", std::process::id()));
    std::fs::write(&feeds, "x 4 = 1 2 3 4\nstate s = 10\n").unwrap();
    let out = pmc(&[
        "run",
        pm.to_str().unwrap(),
        feeds.to_str().unwrap(),
        "--iters",
        "3",
        "--chaos-seed",
        "0x2a",
        "--chaos-profile",
        "transient",
        "--format",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let json = text.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "not a JSON object: {json}");
    assert_eq!(json.lines().count(), 1, "must be a single-line object: {json}");

    let fields = [
        "profile",
        "seed",
        "max_retries",
        "invocations",
        "replayed_invocations",
        "checkpoints",
        "faults_injected",
        "retries",
        "retried_dma_bytes",
        "virtual_ns",
        "fallbacks",
        "partitions",
        "outputs",
    ];
    let mut last = 0;
    for field in fields {
        let key = format!("\"{field}\":");
        let pos = json.find(&key).unwrap_or_else(|| panic!("missing field `{field}`: {json}"));
        assert!(pos > last || field == "profile", "field `{field}` out of order: {json}");
        last = pos;
    }
    assert!(json.contains("\"profile\":\"transient\""), "{json}");
    assert!(json.contains("\"seed\":42"), "{json}");
    assert!(json.contains("\"invocations\":3"), "{json}");
    // Each partition entry carries the documented keys.
    let parts_start = json.find("\"partitions\":[").unwrap() + "\"partitions\":[".len();
    let parts = &json[parts_start..json[parts_start..].find(']').unwrap() + parts_start];
    for key in ["\"target\":", "\"domain\":", "\"attempts\":", "\"retries\":", "\"faults\":"] {
        assert!(parts.contains(key), "partition entry missing {key}: {parts}");
    }
    // Outputs are named tensors; the accumulator's final value is 40.
    assert!(json.contains("\"y\":[40]"), "{json}");
}

/// `--chaos-profile off` must leave `pmc run`'s text output byte-identical
/// to a run without any chaos flag — the no-chaos path is exactly the
/// legacy interpreter loop.
#[test]
fn run_chaos_off_is_byte_identical_to_plain_run() {
    let pm = temp_file(
        "chaosoff",
        "main(input float x[4], state float s, output float y) {
             index i[0:3];
             s = s + sum[i](x[i]);
             y = s;
         }",
    );
    let feeds = std::env::temp_dir().join(format!("pmc_cli_chaosoff_{}.txt", std::process::id()));
    std::fs::write(&feeds, "x 4 = 1 2 3 4\nstate s = 10\n").unwrap();
    let plain = pmc(&["run", pm.to_str().unwrap(), feeds.to_str().unwrap(), "--iters", "3"]);
    let off = pmc(&[
        "run",
        pm.to_str().unwrap(),
        feeds.to_str().unwrap(),
        "--iters",
        "3",
        "--chaos-profile",
        "off",
    ]);
    assert!(plain.status.success() && off.status.success());
    assert_eq!(plain.stdout, off.stdout, "off profile must not perturb output");
}

/// A hostile chaos run through the real binary: the text report appends
/// the chaos summary after the outputs, and the run still completes.
#[test]
fn run_hostile_chaos_prints_summary_and_completes() {
    let pm = temp_file("chaoshostile", TWO_DOMAIN);
    let feeds = std::env::temp_dir().join(format!("pmc_cli_chaosh_{}.txt", std::process::id()));
    let sig: Vec<String> = (0..16).map(|i| format!("{}", 0.1 * i as f64)).collect();
    std::fs::write(
        &feeds,
        format!("sig 16 = {}\ntaps 16 = {}\nw 2 = 1 0\n", sig.join(" "), vec!["1"; 16].join(" ")),
    )
    .unwrap();
    let out = pmc(&[
        "run",
        pm.to_str().unwrap(),
        feeds.to_str().unwrap(),
        "--chaos-seed",
        "3",
        "--chaos-profile",
        "hostile",
        "--max-retries",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("cls ="), "{text}");
    assert!(text.contains("chaos: profile hostile, seed 0x3"), "{text}");
    assert!(text.contains("invocations: 1"), "{text}");
}

#[test]
fn run_rejects_unknown_chaos_profile() {
    let pm = temp_file("chaosbad", TWO_DOMAIN);
    let feeds = std::env::temp_dir().join(format!("pmc_cli_chaosbad_{}.txt", std::process::id()));
    std::fs::write(&feeds, "").unwrap();
    let out = pmc(&[
        "run",
        pm.to_str().unwrap(),
        feeds.to_str().unwrap(),
        "--chaos-profile",
        "chaotic-evil",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown chaos profile"), "{}", stderr(&out));
}

#[test]
fn fuzz_smoke_runs_clean() {
    // A tiny seeded campaign through the real binary: generation,
    // differential execution, and the summary line all work end-to-end.
    let out = pmc(&["fuzz", "--seed", "7", "--cases", "50"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("case(s) passed"), "{text}");
    assert!(text.contains("seed 0x7"), "{text}");
}

#[test]
fn fuzz_detects_the_sentinel_miscompile() {
    // With the hidden sentinel armed, the campaign must fail, print a
    // runnable reproducer, and exit non-zero.
    let out = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .args(["fuzz", "--cases", "1000", "--minimize"])
        .env("PMC_FUZZ_MISCOMPILE", "1")
        .output()
        .unwrap();
    assert!(!out.status.success(), "sentinel miscompile went undetected");
    let err = stderr(&out);
    assert!(err.contains("FAILURE at case"), "{err}");
    assert!(err.contains("route:"), "{err}");
    assert!(err.contains("main("), "no reproducer printed:\n{err}");
}

#[test]
fn fuzz_rejects_bad_flags() {
    let out = pmc(&["fuzz", "--cases", "lots"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad --cases value"), "{}", stderr(&out));
}

/// Golden schema test for the `pmc serve` wire protocol: the service
/// speaks line-delimited JSON to remote clients, so the response field
/// names and emission order are a machine-readable interface and are
/// pinned here, exactly like the `--timings`/chaos JSON schemas above.
#[test]
fn serve_json_schema_is_stable() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .args(["serve", "--host-only", "--workers", "1", "--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let run_req = concat!(
        r#"{"op":"run","id":"r1","tenant":"alice","#,
        r#""program":"main(input float x[4], param float w[4], output float y) {"#,
        r#" index i[0:3]; y = sum[i](w[i]*x[i]); }","#,
        r#""feeds":{"x":{"dims":[4],"values":[1,2,3,4]},"w":{"dims":[4],"values":[2,2,2,2]}}}"#
    );
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "{run_req}").unwrap();
        writeln!(stdin, "{}", run_req.replace("\"id\":\"r1\"", "\"id\":\"r2\"")).unwrap();
        writeln!(stdin, r#"{{"op":"stats","id":"s1"}}"#).unwrap();
        writeln!(stdin, r#"{{"op":"shutdown","id":"bye"}}"#).unwrap();
    }

    let reader = BufReader::new(child.stdout.take().unwrap());
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited non-zero");
    assert_eq!(lines.len(), 4, "one response line per request: {lines:?}");
    let find = |id: &str| {
        lines
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for id {id}: {lines:?}"))
    };
    let (cold, warm, stats, bye) = (find("r1"), find("r2"), find("s1"), find("bye"));

    // Run response: single-line JSON object, fields in pinned order.
    for json in [cold, warm] {
        assert!(json.starts_with('{') && json.ends_with('}'), "not a JSON object: {json}");
        let fields = [
            "id",
            "op",
            "ok",
            "tenant",
            "shard",
            "program_cache",
            "outputs",
            "invocations",
            "replayed_invocations",
            "faults_injected",
            "retries",
            "fallbacks",
            "virtual_ns",
            "frontend_us",
            "lower_us",
            "compile_us",
            "execute_us",
        ];
        let mut last = 0;
        for field in fields {
            let key = format!("\"{field}\":");
            let pos = json.find(&key).unwrap_or_else(|| panic!("missing field `{field}`: {json}"));
            assert!(pos > last || field == "id", "field `{field}` out of order: {json}");
            last = pos;
        }
        assert!(json.contains("\"ok\":true"), "{json}");
        assert!(json.contains("\"tenant\":\"alice\""), "{json}");
        // dot(w, x) with w = 2: y = 2*(1+2+3+4) = 20.
        assert!(json.contains("\"y\":{\"dims\":[],\"values\":[20]}"), "{json}");
    }
    assert!(cold.contains("\"program_cache\":\"miss\""), "{cold}");
    assert!(warm.contains("\"program_cache\":\"hit\""), "{warm}");
    // A cache hit skips lowering and compilation entirely.
    assert!(warm.contains("\"lower_us\":0,\"compile_us\":0"), "{warm}");

    // Outputs must be byte-identical between the cold and warm runs.
    let outputs = |json: &str| {
        let start = json.find("\"outputs\":").unwrap();
        json[start..json.find(",\"invocations\"").unwrap()].to_string()
    };
    assert_eq!(outputs(cold), outputs(warm), "warm outputs differ from cold");

    // Stats response: the three counter groups, each with pinned keys.
    let mut last = 0;
    for field in ["id", "op", "ok", "program_cache", "template_cache", "pool"] {
        let key = format!("\"{field}\":");
        let pos = stats.find(&key).unwrap_or_else(|| panic!("missing field `{field}`: {stats}"));
        assert!(pos > last || field == "id", "field `{field}` out of order: {stats}");
        last = pos;
    }
    for key in ["\"hits\":1", "\"misses\":1", "\"inserts\":1", "\"hit_rate\":0.5"] {
        assert!(stats.contains(key), "program cache counters wrong: {stats}");
    }
    assert!(stats.contains("\"shards\":2"), "{stats}");
    assert!(stats.contains("\"requests\":2"), "{stats}");

    assert!(bye.contains("\"op\":\"shutdown\"") && bye.contains("\"ok\":true"), "{bye}");
}

/// Malformed serve requests get typed, non-fatal error responses: the
/// service answers the bad line and keeps serving the good ones.
#[test]
fn serve_rejects_malformed_requests_without_dying() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_pmc"))
        .args(["serve", "--host-only", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "this is not json").unwrap();
        writeln!(stdin, r#"{{"op":"warp","id":"w1"}}"#).unwrap();
        writeln!(stdin, r#"{{"op":"run","id":"r1","program":"main(input float x, output float y) {{ y = q; }}"}}"#)
            .unwrap();
        writeln!(stdin, r#"{{"op":"shutdown","id":"bye"}}"#).unwrap();
    }
    let reader = BufReader::new(child.stdout.take().unwrap());
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert!(child.wait().unwrap().success());
    assert_eq!(lines.len(), 4, "{lines:?}");
    let of_kind =
        |kind: &str| lines.iter().filter(|l| l.contains(&format!("\"kind\":\"{kind}\""))).count();
    assert_eq!(of_kind("bad_request"), 2, "{lines:?}");
    assert_eq!(of_kind("compile"), 1, "{lines:?}");
    for l in lines.iter().filter(|l| !l.contains("shutdown")) {
        assert!(l.contains("\"ok\":false"), "{l}");
        assert!(l.contains("\"error\":{"), "{l}");
    }
}

#[test]
fn serve_rejects_bad_flags() {
    let out = pmc(&["serve", "--workers", "many"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--workers"), "{}", stderr(&out));
}

#[test]
fn size_parameters_bind_from_the_command_line() {
    let f = temp_file(
        "size",
        "main(input float x[n], output float y, param int n) {
             index i[0:n-1];
             y = sum[i](x[i]);
         }",
    );
    let out = pmc(&["stats", f.to_str().unwrap(), "--size", "n=32"]);
    assert!(out.status.success(), "{}", stderr(&out));
}
