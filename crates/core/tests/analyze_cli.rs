//! Golden-file tests for `pmc analyze` over the shipped examples: the
//! full caret-rendered output is pinned under `tests/golden/`, plus exit
//! codes for `--deny-warnings` and the JSON format. Regenerate goldens
//! with `UPDATE_GOLDEN=1 cargo test -p polymath --test analyze_cli`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Repository root (the examples live at `<root>/examples/pm`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Runs `pmc` from the repo root so example paths render relatively.
fn pmc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmc")).args(args).current_dir(repo_root()).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Compares `pmc analyze <example>` output against its golden file.
fn check_golden(example: &str) -> Output {
    let out = pmc(&["analyze", &format!("examples/pm/{example}")]);
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{example}.analyze.txt"));
    let actual = stdout(&out);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert_eq!(
        actual,
        expected,
        "analyze output for {example} diverged from {} \
         (rerun with UPDATE_GOLDEN=1 to bless)",
        golden_path.display()
    );
    out
}

#[test]
fn hazard_demo_matches_golden_and_reports_war() {
    let out = check_golden("hazard_demo.pm");
    // A warning alone does not fail the build without --deny-warnings.
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("PM-W111"), "missing PM-W111 in:\n{text}");
    assert!(text.contains("WAR hazard"), "missing hazard message in:\n{text}");
}

#[test]
fn clean_example_matches_golden_and_passes() {
    let out = check_golden("accumulator.pm");
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("0 error(s), 0 warning(s)"), "unexpected findings:\n{text}");
}

#[test]
fn deny_warnings_fails_on_the_hazard_demo() {
    let out = pmc(&["analyze", "examples/pm/hazard_demo.pm", "--deny-warnings"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--deny-warnings"), "stderr:\n{err}");
}

#[test]
fn json_format_emits_machine_readable_findings() {
    let out = pmc(&["analyze", "examples/pm/hazard_demo.pm", "--format", "json"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.trim_start().starts_with('['), "not a JSON array:\n{text}");
    assert!(text.contains("\"code\":\"PM-W111\""), "missing code in:\n{text}");
    assert!(text.contains("\"severity\":\"warning\""), "missing severity in:\n{text}");
}

#[test]
fn analyze_fails_with_findings_on_definite_out_of_bounds() {
    let out = pmc(&["analyze", "tests/corpus/analyze/pm-e102-out-of-bounds.pm"]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("PM-E102"), "missing PM-E102 in:\n{text}");
}
