//! The PolyMath compiler driver: PMLang source → checked AST → srDFG →
//! optimization passes → lowering (Algorithm 1) → accelerator IR
//! (Algorithm 2).

use pm_accel::{
    Backend, Cpu, Deco, DnnWeaver, Graphicionado, HyperStreams, Robox, Soc, Tabla, Vta,
};
use pm_lower::{
    compile_program_budgeted, lower_budgeted, CompiledProgram, ProgramCache, ProgramCacheStats,
    ProgramKey, TargetMap,
};
use pm_passes::{Pass, PassManager, PassTiming};
use pmlang::Domain;
use srdfg::{Bindings, Budget, BudgetExceeded, SrDfg, TemplateCache, TemplateCacheStats};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Any error the full compilation pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum PolyMathError {
    /// Lexing, parsing, or semantic analysis failed.
    Frontend(pmlang::FrontendError),
    /// srDFG generation failed.
    Build(srdfg::BuildError),
    /// Lowering or accelerator-IR compilation failed.
    Lower(pm_lower::LowerError),
    /// The SoC runtime could not execute the compiled program (missing
    /// backend, exhausted retries, failed host fallback, …).
    Soc(pm_accel::SocError),
    /// The request's budget (deadline or fuel) ran out before the
    /// pipeline stage in question could start or finish.
    Budget(BudgetExceeded),
    /// The program's content address is quarantined: a structurally
    /// identical program previously took down a worker, so the request
    /// is rejected before lowering can run.
    Quarantined {
        /// The [`srdfg::graph_fingerprint`] of the post-midend graph.
        fingerprint: u64,
    },
}

impl fmt::Display for PolyMathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyMathError::Frontend(e) => e.fmt(f),
            PolyMathError::Build(e) => e.fmt(f),
            PolyMathError::Lower(e) => e.fmt(f),
            PolyMathError::Soc(e) => e.fmt(f),
            PolyMathError::Budget(e) => e.fmt(f),
            PolyMathError::Quarantined { fingerprint } => {
                write!(f, "program fingerprint {fingerprint:016x} is quarantined after a prior worker panic")
            }
        }
    }
}

impl std::error::Error for PolyMathError {}

impl From<pmlang::FrontendError> for PolyMathError {
    fn from(e: pmlang::FrontendError) -> Self {
        PolyMathError::Frontend(e)
    }
}

impl From<srdfg::BuildError> for PolyMathError {
    fn from(e: srdfg::BuildError) -> Self {
        PolyMathError::Build(e)
    }
}

impl From<pm_lower::LowerError> for PolyMathError {
    fn from(e: pm_lower::LowerError) -> Self {
        // A budget-tagged lowering error is a cancellation, not a compile
        // failure — surface it as such so the wire layer can type it.
        match e.budget {
            Some(b) => PolyMathError::Budget(b),
            None => PolyMathError::Lower(e),
        }
    }
}

impl From<pm_accel::SocError> for PolyMathError {
    fn from(e: pm_accel::SocError) -> Self {
        match e {
            pm_accel::SocError::BudgetExhausted(b) => PolyMathError::Budget(b),
            other => PolyMathError::Soc(other),
        }
    }
}

impl From<BudgetExceeded> for PolyMathError {
    fn from(e: BudgetExceeded) -> Self {
        PolyMathError::Budget(e)
    }
}

/// The compiler: owns the target map (which accelerator serves each
/// domain) and the optimization pipeline.
pub struct Compiler {
    targets: TargetMap,
    optimize: bool,
    fuse: bool,
    /// Lowering template cache shared across every `compile*` call on this
    /// driver: the second compilation of a structurally similar program
    /// (or a re-lowering after a device fault) instantiates templates
    /// instead of re-expanding them. Cloning the handle aliases one store,
    /// which is the seam `pmc serve` shares between requests.
    template_cache: TemplateCache,
    /// Content-addressed whole-program cache consulted by
    /// [`Compiler::compile_cached`]: a repeat compile of a structurally
    /// identical program against the same target map skips lowering and
    /// Algorithm 2 entirely and returns the stored artifact.
    program_cache: ProgramCache,
}

impl fmt::Debug for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Compiler")
            .field("accelerated", &self.targets.accelerated_domains())
            .field("optimize", &self.optimize)
            .finish()
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::host_only()
    }
}

impl Compiler {
    /// A compiler mapping every domain to the host CPU (the baseline).
    pub fn host_only() -> Self {
        Compiler {
            targets: TargetMap::host_only(Cpu::default().accel_spec()),
            optimize: true,
            fuse: false,
            template_cache: TemplateCache::new(),
            program_cache: ProgramCache::new(),
        }
    }

    /// A compiler with the paper's five accelerators attached
    /// (Table V: RoboX, Graphicionado, TABLA, DECO, TVM-VTA).
    pub fn cross_domain() -> Self {
        let mut c = Compiler::host_only();
        c.targets.set(Robox::default().accel_spec());
        c.targets.set(Graphicionado::default().accel_spec());
        c.targets.set(Tabla::default().accel_spec());
        c.targets.set(Deco::default().accel_spec());
        c.targets.set(Vta::default().accel_spec());
        c
    }

    /// A compiler accelerating only the listed domains (the paper's
    /// Fig. 10-12 acceleration-combination sweep).
    pub fn accelerating(domains: &[Domain]) -> Self {
        let mut c = Compiler::cross_domain();
        for d in Domain::all() {
            if !domains.contains(&d) {
                c.targets.unset(d);
            }
        }
        c
    }

    /// Disables the optimization pipeline (for ablations).
    pub fn without_optimizations(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Enables the cross-granularity algebraic-combination pass
    /// (paper §IV.B's example pass; off by default so its effect can be
    /// measured as an ablation).
    pub fn with_fusion(mut self) -> Self {
        self.fuse = true;
        self
    }

    /// The target map (Algorithm 1's `Om`).
    pub fn targets(&self) -> &TargetMap {
        &self.targets
    }

    /// The driver's persistent lowering template cache. The returned handle
    /// aliases the compiler's store (it is `Arc`-backed), so it can be
    /// passed to [`pm_lower::relower_without_cached`] or a fault-tolerant
    /// runtime and every hit/insert is reflected in [`Compiler::cache_stats`].
    pub fn template_cache(&self) -> TemplateCache {
        self.template_cache.clone()
    }

    /// Lifetime hit/miss/insert/eviction counters of the template cache.
    pub fn cache_stats(&self) -> TemplateCacheStats {
        self.template_cache.stats()
    }

    /// The driver's content-addressed compiled-program cache. The returned
    /// handle aliases the compiler's store (it is `Arc`-backed), so every
    /// [`Compiler::compile_cached`] hit/insert is reflected in
    /// [`Compiler::program_cache_stats`].
    pub fn program_cache(&self) -> ProgramCache {
        self.program_cache.clone()
    }

    /// Lifetime hit/miss/insert/eviction counters of the program cache.
    pub fn program_cache_stats(&self) -> ProgramCacheStats {
        self.program_cache.stats()
    }

    /// Pins every instantiation of `component` to a specific accelerator,
    /// overriding its domain's default target (paper §V.A.3: OptionPricing
    /// runs LR on TABLA and Black-Scholes on HyperStreams).
    pub fn with_target_override(
        mut self,
        component: &str,
        spec: pm_lower::AcceleratorSpec,
    ) -> Self {
        self.targets.set_override(component, spec);
        self
    }

    /// Runs the frontend and srDFG generation only.
    ///
    /// # Errors
    ///
    /// Returns frontend or build errors.
    pub fn build_graph(&self, source: &str, bindings: &Bindings) -> Result<SrDfg, PolyMathError> {
        let (program, _) = pmlang::frontend(source)?;
        let mut graph = srdfg::build(&program, bindings)?;
        if self.optimize {
            PassManager::standard().run(&mut graph);
        }
        if self.fuse {
            pm_passes::AlgebraicCombination.run(&mut graph);
        }
        Ok(graph)
    }

    /// Full compilation: frontend → srDFG → passes → lower → per-target IR.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn compile(
        &self,
        source: &str,
        bindings: &Bindings,
    ) -> Result<CompiledProgram, PolyMathError> {
        let mut graph = self.build_graph(source, bindings)?;
        let unlimited = Budget::unlimited();
        lower_budgeted(&mut graph, &self.targets, Some(&self.template_cache), &unlimited)?;
        pm_passes::ElideMarshalling.run(&mut graph);
        pm_passes::PruneUnusedInputs.run(&mut graph);
        Ok(compile_program_budgeted(Arc::new(graph), &self.targets, true, &unlimited)?)
    }

    /// [`Compiler::compile`] with per-stage and per-pass wall-clock timing
    /// (the instrumentation behind `pmc compile --timings` and `pm-bench`).
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error.
    pub fn compile_timed(
        &self,
        source: &str,
        bindings: &Bindings,
    ) -> Result<(CompiledProgram, CompileTimings), PolyMathError> {
        let t0 = Instant::now();
        let (program, _) = pmlang::frontend(source)?;
        let frontend = t0.elapsed();

        let t = Instant::now();
        let mut graph = srdfg::build(&program, bindings)?;
        let build = t.elapsed();

        let t = Instant::now();
        let mut passes = Vec::new();
        if self.optimize {
            passes = PassManager::standard().run_timed(&mut graph);
        }
        if self.fuse {
            pm_passes::AlgebraicCombination.run(&mut graph);
        }
        let midend = t.elapsed();

        // Abstract interpretation runs on the post-mid-end graph (before
        // lowering explodes it into scalar fabric), matching what `pmc
        // analyze` inspects; schedule hazards are timed after Algorithm 2.
        let t = Instant::now();
        let _ = pm_analyze::analyze_graph(&graph);
        let analyze = t.elapsed();

        let unlimited = Budget::unlimited();
        let cache_before = self.template_cache.stats();
        let t = Instant::now();
        lower_budgeted(&mut graph, &self.targets, Some(&self.template_cache), &unlimited)?;
        let lower_d = t.elapsed();
        let cache = self.template_cache.stats().since(&cache_before);

        let t = Instant::now();
        pm_passes::ElideMarshalling.run(&mut graph);
        pm_passes::PruneUnusedInputs.run(&mut graph);
        let post_lower = t.elapsed();

        let t = Instant::now();
        let compiled = compile_program_budgeted(Arc::new(graph), &self.targets, true, &unlimited)?;
        let compile = t.elapsed();

        let t = Instant::now();
        let _ = pm_analyze::analyze_schedule(&compiled, &self.targets);
        let hazards = t.elapsed();

        let timings = CompileTimings {
            frontend,
            build,
            midend,
            passes,
            lower: lower_d,
            post_lower,
            compile,
            analyze,
            hazards,
            cache,
            total: t0.elapsed(),
        };
        Ok((compiled, timings))
    }

    /// [`Compiler::compile`] through the content-addressed program cache.
    ///
    /// The frontend, srDFG build, and mid-end always run — they produce
    /// the post-midend graph whose [`srdfg::graph_fingerprint`] (paired
    /// with the target map's fingerprint) addresses the cache. On a hit,
    /// lowering and Algorithm 2 are skipped entirely and the stored
    /// artifact is returned; `timings.lower` and `timings.compile` stay
    /// zero, which is how callers (and the serve differential tests)
    /// verify the stages were skipped. On a miss, the full pipeline runs
    /// and the result is inserted before returning.
    ///
    /// # Errors
    ///
    /// Returns the first pipeline error (never caches failures).
    pub fn compile_cached(
        &self,
        source: &str,
        bindings: &Bindings,
    ) -> Result<CachedCompile, PolyMathError> {
        self.compile_cached_checked(source, bindings, &Budget::unlimited(), None)
    }

    /// [`Compiler::compile_cached`] under a request [`Budget`] and an
    /// optional admission gate over the content address.
    ///
    /// The budget is checked *before* the frontend runs — a request whose
    /// deadline has already passed never executes any pipeline stage —
    /// and charged inside Algorithm 1's round loop and at Algorithm 2's
    /// entry, so an in-flight request past its budget unwinds at the next
    /// loop boundary. The `gate`, when provided, is consulted with the
    /// post-midend [`ProgramKey`]; returning `false` rejects the request
    /// as [`PolyMathError::Quarantined`] before lowering can run (this is
    /// the serve layer's poison-quarantine hook).
    ///
    /// # Errors
    ///
    /// Everything [`Compiler::compile_cached`] returns, plus
    /// [`PolyMathError::Budget`] and [`PolyMathError::Quarantined`].
    pub fn compile_cached_checked(
        &self,
        source: &str,
        bindings: &Bindings,
        budget: &Budget,
        gate: Option<&dyn Fn(&ProgramKey) -> bool>,
    ) -> Result<CachedCompile, PolyMathError> {
        budget.check("compile")?;
        let t0 = Instant::now();
        let t = Instant::now();
        let (program, _) = pmlang::frontend(source)?;
        let frontend = t.elapsed();

        let t = Instant::now();
        let mut graph = srdfg::build(&program, bindings)?;
        let build = t.elapsed();

        let t = Instant::now();
        if self.optimize {
            PassManager::standard().run(&mut graph);
        }
        if self.fuse {
            pm_passes::AlgebraicCombination.run(&mut graph);
        }
        let midend = t.elapsed();

        let key = ProgramKey::new(&graph, &self.targets);
        if let Some(gate) = gate {
            if !gate(&key) {
                return Err(PolyMathError::Quarantined { fingerprint: key.graph });
            }
        }
        if let Some(program) = self.program_cache.lookup(&key) {
            let timings = CompileTimings {
                frontend,
                build,
                midend,
                total: t0.elapsed(),
                ..CompileTimings::default()
            };
            return Ok(CachedCompile { program, cache_hit: true, key, timings });
        }

        let cache_before = self.template_cache.stats();
        let t = Instant::now();
        lower_budgeted(&mut graph, &self.targets, Some(&self.template_cache), budget)?;
        let lower_d = t.elapsed();
        let cache = self.template_cache.stats().since(&cache_before);

        let t = Instant::now();
        pm_passes::ElideMarshalling.run(&mut graph);
        pm_passes::PruneUnusedInputs.run(&mut graph);
        let post_lower = t.elapsed();

        let t = Instant::now();
        let compiled =
            Arc::new(compile_program_budgeted(Arc::new(graph), &self.targets, true, budget)?);
        let compile = t.elapsed();

        self.program_cache.insert(key, Arc::clone(&compiled));
        let timings = CompileTimings {
            frontend,
            build,
            midend,
            lower: lower_d,
            post_lower,
            compile,
            cache,
            total: t0.elapsed(),
            ..CompileTimings::default()
        };
        Ok(CachedCompile { program: compiled, cache_hit: false, key, timings })
    }
}

/// Result of one [`Compiler::compile_cached`] invocation.
#[derive(Debug, Clone)]
pub struct CachedCompile {
    /// The compiled artifact — shared with the cache, never cloned per
    /// request (partitions can carry tens of thousands of fragments).
    pub program: Arc<CompiledProgram>,
    /// Whether the program cache served the artifact (lower+compile
    /// skipped).
    pub cache_hit: bool,
    /// The content address the artifact was stored/found under.
    pub key: ProgramKey,
    /// Stage timings: on a hit, `lower`/`post_lower`/`compile` are zero
    /// and `cache` is empty; `analyze`/`hazards`/`passes` are never
    /// populated by this entry point.
    pub timings: CompileTimings,
}

/// Wall-clock account of one [`Compiler::compile_timed`] invocation.
#[derive(Debug, Clone, Default)]
pub struct CompileTimings {
    /// Lexing, parsing, and semantic analysis.
    pub frontend: Duration,
    /// srDFG generation.
    pub build: Duration,
    /// The whole mid-end (standard pipeline plus optional fusion).
    pub midend: Duration,
    /// Per-pass timings inside the mid-end (one entry per executed pass
    /// run; empty when optimizations are disabled).
    pub passes: Vec<PassTiming>,
    /// Algorithm 1 lowering.
    pub lower: Duration,
    /// Post-lowering cleanup (marshalling elision, operand pruning).
    pub post_lower: Duration,
    /// Algorithm 2 accelerator-IR compilation.
    pub compile: Duration,
    /// Abstract interpretation over the post-mid-end graph (shape/dtype,
    /// intervals, initialization).
    pub analyze: Duration,
    /// Static schedule hazard analysis of the Algorithm-2 fragment plan
    /// (scales with the lowered fragment count, so it is tracked apart
    /// from the graph-level verifier).
    pub hazards: Duration,
    /// Template-cache activity during this invocation's lowering stage
    /// (delta, not lifetime totals — a warm driver shows hits here).
    pub cache: TemplateCacheStats,
    /// End-to-end wall time.
    pub total: Duration,
}

/// The standard SoC with all five accelerators attached (execution-time
/// counterpart of [`Compiler::cross_domain`]).
pub fn standard_soc() -> Soc {
    let mut soc = Soc::new();
    soc.attach(Robox::default());
    soc.attach(Graphicionado::default());
    soc.attach(Tabla::default());
    soc.attach(Deco::default());
    soc.attach(Vta::default());
    soc.attach(HyperStreams::default());
    // Not a domain default, but reachable through per-component target
    // overrides (`--pin comp=DnnWeaver`); partitions are priced by target
    // name, so attaching it never shadows the VTA.
    soc.attach(DnnWeaver::default());
    soc
}

#[cfg(test)]
mod tests {
    use super::*;
    use srdfg::Tensor;
    use std::collections::HashMap;

    const TWO_DOMAIN: &str = "filt(input float x[64], param float h[64], output float y) {
         index i[0:63];
         y = sum[i](h[i]*x[i]);
     }
     clas(input float f, param float w[2], output float c) {
         c = sigmoid(w[0]*f + w[1]);
     }
     main(input float sig[64], param float taps[64], param float w[2],
          output float cls) {
         float feat;
         DSP: filt(sig, taps, feat);
         DA: clas(feat, w, cls);
     }";

    #[test]
    fn host_only_compilation_single_partition_family() {
        let compiled = Compiler::host_only().compile(TWO_DOMAIN, &Bindings::default()).unwrap();
        for p in &compiled.partitions {
            assert_eq!(p.target, "CPU");
        }
    }

    #[test]
    fn cross_domain_compilation_partitions_and_executes() {
        let compiled = Compiler::cross_domain().compile(TWO_DOMAIN, &Bindings::default()).unwrap();
        let targets: Vec<_> = compiled.partitions.iter().map(|p| p.target.clone()).collect();
        assert!(targets.contains(&"DECO".to_string()), "{targets:?}");
        assert!(targets.contains(&"TABLA".to_string()), "{targets:?}");

        // The lowered graph still computes the right thing.
        let vec_t = |v: Vec<f64>| Tensor::from_vec(pmlang::DType::Float, vec![v.len()], v).unwrap();
        let feeds = HashMap::from([
            ("sig".to_string(), vec_t(vec![0.1; 64])),
            ("taps".to_string(), vec_t(vec![1.0; 64])),
            ("w".to_string(), vec_t(vec![1.0, 0.0])),
        ]);
        let mut m = srdfg::Machine::new((*compiled.graph).clone());
        let out = m.invoke(&feeds).unwrap();
        let expect = 1.0 / (1.0 + (-6.4f64).exp());
        assert!((out["cls"].scalar_value().unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn accelerating_subset_falls_back_elsewhere() {
        let c = Compiler::accelerating(&[Domain::Dsp]);
        let compiled = c.compile(TWO_DOMAIN, &Bindings::default()).unwrap();
        let dsp = compiled.partition(Some(Domain::Dsp)).unwrap();
        let da = compiled.partition(Some(Domain::DataAnalytics)).unwrap();
        assert_eq!(dsp.target, "DECO");
        assert_eq!(da.target, "CPU");
    }

    #[test]
    fn compile_cached_hits_on_repeat_and_skips_lowering() {
        let c = Compiler::cross_domain();
        let cold = c.compile_cached(TWO_DOMAIN, &Bindings::default()).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timings.lower > Duration::ZERO);
        let warm = c.compile_cached(TWO_DOMAIN, &Bindings::default()).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.key, warm.key);
        assert!(Arc::ptr_eq(&cold.program, &warm.program), "hit returns the stored Arc");
        assert_eq!(warm.timings.lower, Duration::ZERO, "lowering skipped on hit");
        assert_eq!(warm.timings.compile, Duration::ZERO, "Algorithm 2 skipped on hit");
        let stats = c.program_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));

        // A host-only driver compiles a different artifact: its key must
        // not collide with the cross-domain one.
        let host = Compiler::host_only();
        let host_cold = host.compile_cached(TWO_DOMAIN, &Bindings::default()).unwrap();
        assert!(!host_cold.cache_hit);
        assert_ne!(host_cold.key, cold.key);
    }

    #[test]
    fn frontend_errors_are_reported() {
        let err = Compiler::host_only().compile("main(", &Bindings::default()).unwrap_err();
        assert!(matches!(err, PolyMathError::Frontend(_)));
    }

    #[test]
    fn soc_runs_cross_domain_compilation() {
        let compiled = Compiler::cross_domain().compile(TWO_DOMAIN, &Bindings::default()).unwrap();
        let soc = standard_soc();
        let report = soc.run(&compiled, &HashMap::new()).unwrap();
        assert!(report.total.seconds > 0.0);
        assert_eq!(report.partitions.len(), compiled.partitions.len());
    }
}
