//! # PolyMath — a computational stack for cross-domain acceleration
//!
//! A production-quality Rust reproduction of *"A Computational Stack for
//! Cross-Domain Acceleration"* (Kinzer et al., HPCA 2021). PolyMath lets a
//! single program span Robotics, Graph Analytics, DSP, Data Analytics, and
//! Deep Learning, and compiles each part to the domain-specific
//! accelerator best suited to it:
//!
//! * **PMLang** (crate `pmlang`) — the cross-domain language;
//! * **srDFG** (crate `srdfg`) — the simultaneous-recursive dataflow IR;
//! * **passes** (crate `pm-passes`) — the modular transformation pipeline;
//! * **lowering** (crate `pm-lower`) — the paper's Algorithms 1 & 2;
//! * **accelerators** (crate `pm-accel`) — simulated RoboX, Graphicionado,
//!   TABLA, DECO, and TVM-VTA backends plus CPU/GPU baselines and the
//!   multi-acceleration SoC;
//! * **workloads** (crate `pm-workloads`) — the paper's benchmark suite.
//!
//! This facade crate ties the stack together behind [`Compiler`] and the
//! evaluation helpers in [`mod@evaluate`].
//!
//! ## Quickstart
//!
//! ```
//! use polymath::{Compiler, standard_soc};
//! use srdfg::{Bindings, Machine, Tensor};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//!     classify(input float x[4], param float w[4], output float y) {
//!         index i[0:3];
//!         y = sigmoid(sum[i](w[i]*x[i]));
//!     }
//!     main(input float sample[4], param float weights[4], output float label) {
//!         DA: classify(sample, weights, label);
//!     }
//! ";
//! let compiled = Compiler::cross_domain().compile(source, &Bindings::default())?;
//! // Functional execution of the lowered program:
//! let feeds = HashMap::from([
//!     ("sample".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![4], vec![1.0; 4])?),
//!     ("weights".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![4], vec![0.5; 4])?),
//! ]);
//! let out = Machine::new((*compiled.graph).clone()).invoke(&feeds)?;
//! assert!(out["label"].scalar_value()? > 0.5);
//! // Performance/energy account on the simulated SoC:
//! let report = standard_soc().run(&compiled, &HashMap::new())?;
//! assert!(report.total.seconds > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compiler;
pub mod evaluate;
pub mod json;
pub mod serve;
pub mod soak;

pub use compiler::{standard_soc, CachedCompile, CompileTimings, Compiler, PolyMathError};
pub use evaluate::{evaluate, geomean, PlatformResults};
pub use json::{Json, JsonError};
pub use serve::{
    serve_stdio, serve_tcp, Quarantine, Request, RunRequest, ServeConfig, ServeEngine, ServeError,
    ServeServer,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
