//! `pmc serve` — the long-lived compile-and-run service.
//!
//! The ROADMAP's north star is serving the PolyMath pipeline to many
//! users; this module is that serving layer. It admits line-delimited
//! JSON requests (PMLang program + invocation feeds), compiles each
//! through the driver's **content-addressed program cache** (see
//! [`crate::Compiler::compile_cached`] and `pm_lower::progcache`), and
//! executes it on a **sharded pool of simulated SoCs**
//! ([`pm_accel::SocPool`]) with per-tenant shard affinity. Three layers:
//!
//! * [`ServeEngine`] — stateless-per-request processing: parse → compile
//!   (cached) → route to the tenant's shard → `run_trajectory` → render
//!   the response. Shared across worker threads behind an `Arc`; every
//!   piece of shared state (template cache, program cache, pool ledgers)
//!   is internally synchronized.
//! * [`ServeServer`] — admission control: a bounded queue plus a
//!   hand-rolled worker thread pool (matching the vendored `rayon`
//!   stand-in idiom — no async runtime dependency). A full queue rejects
//!   with a typed `overloaded` error instead of blocking or panicking.
//!   Workers drain requests in small batches to amortize lock traffic,
//!   which also lets repeat programs within one batch hit the cache
//!   entry their predecessor just inserted.
//! * [`serve_stdio`] / [`serve_tcp`] — the transports: newline-delimited
//!   JSON over stdin/stdout (robust for scripts and tests — no port
//!   races) or over TCP connections.
//!
//! ## Wire protocol
//!
//! One JSON object per line in, one per line out. Requests:
//!
//! ```json
//! {"op":"run","id":"r1","tenant":"alice","program":"main(...){...}",
//!  "feeds":{"x":{"dims":[4],"values":[1,2,3,4]}},
//!  "state":{"z":{"dims":[],"values":[0]}},
//!  "invocations":3,"sizes":{"n":64},
//!  "chaos":{"profile":"transient","seed":7,"max_retries":3,"down":["DECO"]}}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"bye"}
//! ```
//!
//! A `run` response echoes the request id, names the shard and whether
//! the program cache served the compile, and carries the outputs of the
//! final invocation plus the deterministic execution counters:
//!
//! ```json
//! {"id":"r1","op":"run","ok":true,"tenant":"alice","shard":1,
//!  "program_cache":"hit","outputs":{"y":{"dims":[],"values":[30]}},
//!  "invocations":3,"replayed_invocations":0,"faults_injected":0,
//!  "retries":0,"fallbacks":0,"virtual_ns":6000,
//!  "frontend_us":812,"lower_us":0,"compile_us":0,"execute_us":95}
//! ```
//!
//! Failures are typed, never panics:
//! `{"id":"r1","op":"run","ok":false,"error":{"kind":"overloaded","detail":"..."}}`
//! with kinds `bad_request` | `overloaded` | `compile` | `execution`.
//!
//! Responses are emitted in completion order; match them to requests by
//! `id`. All tensors are `float`; outputs render with names sorted, so a
//! cache hit's response bytes are identical to the cold compile's.

use crate::compiler::{standard_soc, Compiler};
use crate::json::Json;
use pm_accel::{ChaosConfig, ChaosProfile, SocPool, TrajectoryInputs};
use srdfg::{Bindings, Tensor};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Configuration of one serve instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of SoC shards (tenants are pinned to shards by name hash).
    pub shards: usize,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected with a
    /// typed `overloaded` error.
    pub queue_depth: usize,
    /// Requests a worker drains per queue lock acquisition.
    pub batch: usize,
    /// Compile against the host-only target map instead of the
    /// cross-domain one.
    pub host_only: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { shards: 2, workers: 2, queue_depth: 64, batch: 8, host_only: false }
    }
}

/// Typed request-level failure. The service returns these on the wire;
/// it never panics or drops a request silently.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line was not a valid protocol object.
    BadRequest(String),
    /// The admission queue is full.
    Overloaded {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The compile pipeline rejected the program.
    Compile(String),
    /// The SoC runtime could not execute the compiled program.
    Execution(String),
}

impl ServeError {
    /// The wire `error.kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Compile(_) => "compile",
            ServeError::Execution(_) => "execution",
        }
    }

    fn detail(&self) -> String {
        match self {
            ServeError::BadRequest(d) | ServeError::Compile(d) | ServeError::Execution(d) => {
                d.clone()
            }
            ServeError::Overloaded { depth } => format!("queue full (depth {depth})"),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for ServeError {}

/// A parsed `run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Request id, echoed in the response (`""` when omitted).
    pub id: String,
    /// Tenant name — decides the SoC shard (`"default"` when omitted).
    pub tenant: String,
    /// PMLang source.
    pub program: String,
    /// Boundary `input`/`param` feeds.
    pub feeds: HashMap<String, Tensor>,
    /// Initial values for `state` variables.
    pub state: Vec<(String, Tensor)>,
    /// Invocations to run (defaults to 1).
    pub invocations: u64,
    /// Size bindings for symbolic dimensions.
    pub sizes: Bindings,
    /// Fault-injection configuration (defaults to chaos off).
    pub chaos: ChaosConfig,
}

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile (through the program cache) and execute.
    Run(Box<RunRequest>),
    /// Report cache and pool statistics.
    Stats {
        /// Request id.
        id: String,
    },
    /// Acknowledge and stop serving.
    Shutdown {
        /// Request id.
        id: String,
    },
}

impl Request {
    /// The request id (echoed in responses).
    pub fn id(&self) -> &str {
        match self {
            Request::Run(r) => &r.id,
            Request::Stats { id } | Request::Shutdown { id } => id,
        }
    }

    /// The wire `op` tag.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run(_) => "run",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] with a description of the first
    /// malformed field.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let bad = |d: &str| ServeError::BadRequest(d.to_string());
        let v = Json::parse(line).map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let id = v.get("id").and_then(Json::as_str).unwrap_or("").to_string();
        let op = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing `op`"))?;
        match op {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "run" => {
                let program = v
                    .get("program")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("run: missing `program`"))?
                    .to_string();
                let tenant =
                    v.get("tenant").and_then(Json::as_str).unwrap_or("default").to_string();
                let invocations = match v.get("invocations") {
                    None => 1,
                    Some(n) => n.as_u64().ok_or_else(|| bad("run: bad `invocations`"))?,
                };
                let mut feeds = HashMap::new();
                if let Some(obj) = v.get("feeds") {
                    for (name, t) in
                        obj.members().ok_or_else(|| bad("run: `feeds` must be an object"))?
                    {
                        feeds.insert(name.clone(), parse_tensor(name, t)?);
                    }
                }
                let mut state = Vec::new();
                if let Some(obj) = v.get("state") {
                    for (name, t) in
                        obj.members().ok_or_else(|| bad("run: `state` must be an object"))?
                    {
                        state.push((name.clone(), parse_tensor(name, t)?));
                    }
                }
                let mut sizes = Bindings::default();
                if let Some(obj) = v.get("sizes") {
                    for (name, n) in
                        obj.members().ok_or_else(|| bad("run: `sizes` must be an object"))?
                    {
                        let val = n
                            .as_f64()
                            .filter(|x| x.fract() == 0.0)
                            .ok_or_else(|| bad("run: bad size value"))?;
                        sizes.sizes.insert(name.clone(), val as i64);
                    }
                }
                let chaos = parse_chaos(v.get("chaos"))?;
                Ok(Request::Run(Box::new(RunRequest {
                    id,
                    tenant,
                    program,
                    feeds,
                    state,
                    invocations,
                    sizes,
                    chaos,
                })))
            }
            other => Err(bad(&format!("unknown op `{other}`"))),
        }
    }
}

fn parse_tensor(name: &str, v: &Json) -> Result<Tensor, ServeError> {
    let bad = |d: String| ServeError::BadRequest(d);
    let dims: Vec<usize> = v
        .get("dims")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("tensor `{name}`: missing `dims`")))?
        .iter()
        .map(|d| d.as_u64().map(|u| u as usize))
        .collect::<Option<_>>()
        .ok_or_else(|| bad(format!("tensor `{name}`: bad dims")))?;
    let values: Vec<f64> = v
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("tensor `{name}`: missing `values`")))?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<_>>()
        .ok_or_else(|| bad(format!("tensor `{name}`: bad values")))?;
    Tensor::from_vec(pmlang::DType::Float, dims, values)
        .map_err(|e| bad(format!("tensor `{name}`: {e}")))
}

fn parse_chaos(v: Option<&Json>) -> Result<ChaosConfig, ServeError> {
    let bad = |d: &str| ServeError::BadRequest(d.to_string());
    let Some(v) = v else {
        return Ok(ChaosConfig::off());
    };
    let seed = match v.get("seed") {
        None => 0,
        Some(n) => n.as_u64().ok_or_else(|| bad("chaos: bad `seed`"))?,
    };
    let profile = match v.get("profile").and_then(Json::as_str) {
        None => ChaosProfile::Off,
        Some(p) => p.parse().map_err(|e: String| ServeError::BadRequest(e))?,
    };
    let mut cfg = ChaosConfig::new(seed, profile);
    if let Some(n) = v.get("max_retries") {
        let retries = n.as_u64().ok_or_else(|| bad("chaos: bad `max_retries`"))?;
        cfg = cfg.with_max_retries(retries as u32);
    }
    if let Some(down) = v.get("down") {
        for d in down.as_array().ok_or_else(|| bad("chaos: `down` must be an array"))? {
            cfg = cfg.with_down(d.as_str().ok_or_else(|| bad("chaos: bad `down` entry"))?);
        }
    }
    Ok(cfg)
}

fn tensor_json(t: &Tensor) -> Json {
    let dims = Json::Arr(t.shape().iter().map(|&d| Json::Num(d as f64)).collect());
    let values = match t.as_real_slice() {
        Some(s) => Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()),
        None => Json::Null,
    };
    Json::Obj(vec![("dims".into(), dims), ("values".into(), values)])
}

fn error_response(id: &str, op: &str, e: &ServeError) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Str(id.into())),
        ("op".into(), Json::Str(op.into())),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(e.kind().into())),
                ("detail".into(), Json::Str(e.detail())),
            ]),
        ),
    ])
    .render()
}

/// Renders the typed rejection for a line that could not be admitted
/// (best-effort id/op echo — the line may itself be malformed).
pub fn reject_line(line: &str, e: &ServeError) -> String {
    let (id, op) = match Request::parse(line) {
        Ok(req) => (req.id().to_string(), req.op().to_string()),
        Err(_) => (String::new(), String::new()),
    };
    error_response(&id, &op, e)
}

/// The per-request processing core: compile through the program cache,
/// route to the tenant's shard, execute, render. Shared by every worker
/// thread and transport.
pub struct ServeEngine {
    compiler: Compiler,
    pool: SocPool,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine").field("shards", &self.pool.len()).finish()
    }
}

impl ServeEngine {
    /// Builds the engine: one compiler (host-only or cross-domain) whose
    /// template and program caches are shared by all shards, and a
    /// [`SocPool`] whose every shard carries the standard accelerator
    /// complement plus the compiler's template cache (so device-down
    /// re-lowering under chaos reuses the templates the original compile
    /// populated).
    pub fn new(cfg: &ServeConfig) -> ServeEngine {
        let compiler = if cfg.host_only { Compiler::host_only() } else { Compiler::cross_domain() };
        let template_cache = compiler.template_cache();
        let pool = SocPool::new(cfg.shards, |_| {
            let mut soc = standard_soc();
            soc.with_template_cache(template_cache.clone());
            soc
        });
        ServeEngine { compiler, pool }
    }

    /// The engine's compiler (cache handles, target map).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The engine's SoC pool (shard routing, ledgers).
    pub fn pool(&self) -> &SocPool {
        &self.pool
    }

    /// Processes one request line and renders the response line.
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Err(e) => error_response("", "", &e),
            Ok(req) => self.handle(&req),
        }
    }

    /// Processes one parsed request and renders the response line.
    pub fn handle(&self, req: &Request) -> String {
        match req {
            Request::Run(r) => match self.run(r) {
                Ok(resp) => resp,
                Err(e) => error_response(&r.id, "run", &e),
            },
            Request::Stats { id } => self.stats_response(id),
            Request::Shutdown { id } => Json::Obj(vec![
                ("id".into(), Json::Str(id.clone())),
                ("op".into(), Json::Str("shutdown".into())),
                ("ok".into(), Json::Bool(true)),
            ])
            .render(),
        }
    }

    /// Executes one `run` request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Compile`] when the pipeline rejects the program,
    /// [`ServeError::Execution`] when the SoC runtime fails.
    fn run(&self, req: &RunRequest) -> Result<String, ServeError> {
        let cc = self
            .compiler
            .compile_cached(&req.program, &req.sizes)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        let shard = self.pool.shard_for(&req.tenant);
        let inputs = TrajectoryInputs {
            feeds: &req.feeds,
            state_seeds: &req.state,
            invocations: req.invocations,
        };
        let t = Instant::now();
        let outcome = self
            .pool
            .shard(shard)
            .run_trajectory(
                &cc.program,
                &HashMap::new(),
                &req.chaos,
                Some(self.compiler.targets()),
                &inputs,
            )
            .map_err(|e| ServeError::Execution(e.to_string()))?;
        let execute_us = t.elapsed().as_micros() as f64;
        self.pool.record(shard, &outcome);

        let mut names: Vec<&String> = outcome.outputs.keys().collect();
        names.sort();
        let outputs = Json::Obj(
            names.iter().map(|n| ((*n).clone(), tensor_json(&outcome.outputs[*n]))).collect(),
        );
        let us = |d: std::time::Duration| Json::Num(d.as_micros() as f64);
        let frontend = cc.timings.frontend + cc.timings.build + cc.timings.midend;
        Ok(Json::Obj(vec![
            ("id".into(), Json::Str(req.id.clone())),
            ("op".into(), Json::Str("run".into())),
            ("ok".into(), Json::Bool(true)),
            ("tenant".into(), Json::Str(req.tenant.clone())),
            ("shard".into(), Json::Num(shard as f64)),
            ("program_cache".into(), Json::Str(if cc.cache_hit { "hit" } else { "miss" }.into())),
            ("outputs".into(), outputs),
            ("invocations".into(), Json::Num(outcome.invocations as f64)),
            ("replayed_invocations".into(), Json::Num(outcome.replayed_invocations as f64)),
            ("faults_injected".into(), Json::Num(outcome.faults_injected as f64)),
            ("retries".into(), Json::Num(outcome.retries as f64)),
            ("fallbacks".into(), Json::Num(outcome.fallbacks.len() as f64)),
            ("virtual_ns".into(), Json::Num(outcome.virtual_ns as f64)),
            ("frontend_us".into(), us(frontend)),
            ("lower_us".into(), us(cc.timings.lower + cc.timings.post_lower)),
            ("compile_us".into(), us(cc.timings.compile)),
            ("execute_us".into(), Json::Num(execute_us)),
        ])
        .render())
    }

    /// Renders the `stats` response: program-cache, template-cache, and
    /// pool-level counters.
    pub fn stats_response(&self, id: &str) -> String {
        let pc = self.compiler.program_cache_stats();
        let tc = self.compiler.cache_stats();
        let pool = self.pool.report();
        Json::Obj(vec![
            ("id".into(), Json::Str(id.into())),
            ("op".into(), Json::Str("stats".into())),
            ("ok".into(), Json::Bool(true)),
            (
                "program_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(pc.hits as f64)),
                    ("misses".into(), Json::Num(pc.misses as f64)),
                    ("inserts".into(), Json::Num(pc.inserts as f64)),
                    ("evictions".into(), Json::Num(pc.evictions as f64)),
                    ("entries".into(), Json::Num(pc.entries as f64)),
                    ("hit_rate".into(), Json::Num(pc.hit_rate())),
                ]),
            ),
            (
                "template_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(tc.hits as f64)),
                    ("misses".into(), Json::Num(tc.misses as f64)),
                    ("inserts".into(), Json::Num(tc.inserts as f64)),
                    ("evictions".into(), Json::Num(tc.evictions as f64)),
                    ("hit_rate".into(), Json::Num(tc.hit_rate())),
                ]),
            ),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("shards".into(), Json::Num(self.pool.len() as f64)),
                    ("requests".into(), Json::Num(pool.total.requests as f64)),
                    ("invocations".into(), Json::Num(pool.total.invocations as f64)),
                    (
                        "replayed_invocations".into(),
                        Json::Num(pool.total.replayed_invocations as f64),
                    ),
                    ("faults_injected".into(), Json::Num(pool.total.faults_injected as f64)),
                    ("retries".into(), Json::Num(pool.total.retries as f64)),
                    ("fallbacks".into(), Json::Num(pool.total.fallbacks as f64)),
                    ("virtual_ns".into(), Json::Num(pool.total.virtual_ns as f64)),
                ]),
            ),
        ])
        .render()
    }
}

/// One admitted request: the raw line plus where its response goes.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

/// Queue state shared between submitters and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    depth: usize,
    /// Once set, no further submissions are admitted; workers drain the
    /// queue and exit.
    stopping: AtomicBool,
}

/// Admission control + worker pool around a [`ServeEngine`].
pub struct ServeServer {
    engine: Arc<ServeEngine>,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
    batch: usize,
}

impl fmt::Debug for ServeServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeServer")
            .field("workers", &self.workers.len())
            .field("depth", &self.shared.depth)
            .finish()
    }
}

impl ServeServer {
    /// Starts the worker pool immediately.
    pub fn start(engine: Arc<ServeEngine>, cfg: &ServeConfig) -> ServeServer {
        let mut server = ServeServer::paused(engine, cfg);
        server.resume();
        server
    }

    /// Builds the server without starting workers — submissions queue up
    /// (and overflow deterministically), which is how the overload test
    /// fills the queue without racing the drain. Call
    /// [`ServeServer::resume`] to start processing.
    pub fn paused(engine: Arc<ServeEngine>, cfg: &ServeConfig) -> ServeServer {
        ServeServer {
            engine,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                not_empty: Condvar::new(),
                depth: cfg.queue_depth.max(1),
                stopping: AtomicBool::new(false),
            }),
            workers: Vec::new(),
            worker_count: cfg.workers.max(1),
            batch: cfg.batch.max(1),
        }
    }

    /// Spawns the worker threads (idempotent after the first call).
    pub fn resume(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        for _ in 0..self.worker_count {
            let engine = Arc::clone(&self.engine);
            let shared = Arc::clone(&self.shared);
            let batch = self.batch;
            self.workers.push(std::thread::spawn(move || loop {
                let jobs: Vec<Job> = {
                    let mut q = shared.queue.lock().unwrap();
                    loop {
                        if !q.is_empty() {
                            let take = batch.min(q.len());
                            break q.drain(..take).collect();
                        }
                        if shared.stopping.load(Ordering::Acquire) {
                            return;
                        }
                        q = shared.not_empty.wait(q).unwrap();
                    }
                };
                for job in jobs {
                    // A dropped receiver (client went away) is not an error.
                    let _ = job.reply.send(engine.handle_line(&job.line));
                }
            }));
        }
    }

    /// Admits one request line; its response will be sent to `reply`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity or the
    /// server is shutting down.
    pub fn submit(&self, line: String, reply: mpsc::Sender<String>) -> Result<(), ServeError> {
        let depth = self.shared.depth;
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::Overloaded { depth });
        }
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.len() >= depth {
                return Err(ServeError::Overloaded { depth });
            }
            q.push_back(Job { line, reply });
        }
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Currently queued (admitted, not yet drained) requests.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Stops admitting, drains the queue, and joins every worker.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serves newline-delimited JSON over stdin/stdout until EOF or a
/// `shutdown` request. Responses are written in completion order by a
/// dedicated writer thread; queued requests are drained before exit.
///
/// # Errors
///
/// Only transport failures (stdin read errors); request-level failures
/// go on the wire as typed error responses.
pub fn serve_stdio(cfg: &ServeConfig) -> Result<(), String> {
    use std::io::BufRead;
    let engine = Arc::new(ServeEngine::new(cfg));
    let server = ServeServer::start(Arc::clone(&engine), cfg);
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let is_shutdown = matches!(Request::parse(&line), Ok(Request::Shutdown { .. }));
        if let Err(e) = server.submit(line.clone(), tx.clone()) {
            let _ = tx.send(reject_line(&line, &e));
        }
        if is_shutdown {
            break;
        }
    }
    server.shutdown();
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// Serves newline-delimited JSON over TCP. Each connection gets its own
/// reader thread and response channel; all connections share one engine,
/// admission queue, and worker pool. A `shutdown` request from any
/// client stops the listener after its acknowledgement is sent.
///
/// # Errors
///
/// Binding failures; per-connection I/O errors only end that connection.
pub fn serve_tcp(cfg: &ServeConfig, addr: &str) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("pmc serve: listening on {local}");
    let engine = Arc::new(ServeEngine::new(cfg));
    let server = Arc::new(ServeServer::start(Arc::clone(&engine), cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();

    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let conn_stop = Arc::clone(&stop);
        conns.push(std::thread::spawn(move || {
            let stop = conn_stop;
            let (tx, rx) = mpsc::channel::<String>();
            let Ok(write_half) = stream.try_clone() else { return };
            let writer = std::thread::spawn(move || {
                let mut out = write_half;
                for line in rx {
                    if writeln!(out, "{line}").is_err() {
                        break;
                    }
                    let _ = out.flush();
                }
            });
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let is_shutdown = matches!(Request::parse(&line), Ok(Request::Shutdown { .. }));
                if let Err(e) = server.submit(line.clone(), tx.clone()) {
                    let _ = tx.send(reject_line(&line, &e));
                }
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                    break;
                }
            }
            drop(tx);
            let _ = writer.join();
        }));
        if stop.load(Ordering::Acquire) {
            // Unblock the accept loop so the listener can close.
            let _ = std::net::TcpStream::connect(local);
        }
    }
    for c in conns {
        let _ = c.join();
    }
    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = "main(input float x[4], output float y) {
         index i[0:3];
         y = sum[i](x[i]*x[i]);
     }";

    fn run_line(id: &str, program: &str) -> String {
        Json::Obj(vec![
            ("op".into(), Json::Str("run".into())),
            ("id".into(), Json::Str(id.into())),
            ("tenant".into(), Json::Str("t0".into())),
            ("program".into(), Json::Str(program.into())),
            (
                "feeds".into(),
                Json::Obj(vec![(
                    "x".into(),
                    Json::Obj(vec![
                        ("dims".into(), Json::Arr(vec![Json::Num(4.0)])),
                        (
                            "values".into(),
                            Json::Arr(vec![
                                Json::Num(1.0),
                                Json::Num(2.0),
                                Json::Num(3.0),
                                Json::Num(4.0),
                            ]),
                        ),
                    ]),
                )]),
            ),
        ])
        .render()
    }

    #[test]
    fn run_request_round_trips() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        let resp = engine.handle_line(&run_line("r1", DOT));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("program_cache").and_then(Json::as_str), Some("miss"));
        let y = v.get("outputs").and_then(|o| o.get("y")).unwrap();
        assert_eq!(y.get("values").and_then(Json::as_array), Some(&[Json::Num(30.0)][..]));
    }

    #[test]
    fn warm_response_hits_and_outputs_match_cold_byte_for_byte() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        let cold = engine.handle_line(&run_line("c", DOT));
        let warm = engine.handle_line(&run_line("w", DOT));
        let cv = Json::parse(&cold).unwrap();
        let wv = Json::parse(&warm).unwrap();
        assert_eq!(cv.get("program_cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(wv.get("program_cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            cv.get("outputs").unwrap().render(),
            wv.get("outputs").unwrap().render(),
            "cache hit must be byte-identical to the cold compile"
        );
        assert_eq!(wv.get("lower_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(wv.get("compile_us").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn malformed_lines_get_typed_errors() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        for (line, kind) in [
            ("not json", "bad_request"),
            ("{\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"run\",\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"warp\",\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"run\",\"id\":\"x\",\"program\":\"main(\"}", "compile"),
        ] {
            let v = Json::parse(&engine.handle_line(line)).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            let k = v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
            assert_eq!(k, Some(kind), "{line}");
        }
    }

    #[test]
    fn overload_rejects_with_typed_error() {
        let cfg = ServeConfig { queue_depth: 2, host_only: true, ..Default::default() };
        let engine = Arc::new(ServeEngine::new(&cfg));
        // Paused server: the queue fills deterministically.
        let mut server = ServeServer::paused(Arc::clone(&engine), &cfg);
        let (tx, rx) = mpsc::channel();
        assert!(server.submit(run_line("a", DOT), tx.clone()).is_ok());
        assert!(server.submit(run_line("b", DOT), tx.clone()).is_ok());
        let err = server.submit(run_line("c", DOT), tx.clone()).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { depth: 2 });
        assert_eq!(err.kind(), "overloaded");
        // The rejection renders as a response, echoing the request id.
        let rejection = reject_line(&run_line("c", DOT), &err);
        let v = Json::parse(&rejection).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("c"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("overloaded")
        );
        // Resume: both admitted requests complete.
        server.resume();
        drop(tx);
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(rx.recv().expect("admitted requests must complete"));
        }
        server.shutdown();
        for resp in got {
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    #[test]
    fn stats_reports_cache_and_pool_counters() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        engine.handle_line(&run_line("a", DOT));
        engine.handle_line(&run_line("b", DOT));
        let v = Json::parse(&engine.handle_line("{\"op\":\"stats\",\"id\":\"s\"}")).unwrap();
        let pc = v.get("program_cache").unwrap();
        assert_eq!(pc.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(pc.get("misses").and_then(Json::as_u64), Some(1));
        let pool = v.get("pool").unwrap();
        assert_eq!(pool.get("requests").and_then(Json::as_u64), Some(2));
    }
}
