//! `pmc serve` — the long-lived compile-and-run service.
//!
//! The ROADMAP's north star is serving the PolyMath pipeline to many
//! users; this module is that serving layer. It admits line-delimited
//! JSON requests (PMLang program + invocation feeds), compiles each
//! through the driver's **content-addressed program cache** (see
//! [`crate::Compiler::compile_cached`] and `pm_lower::progcache`), and
//! executes it on a **sharded pool of simulated SoCs**
//! ([`pm_accel::SocPool`]) with per-tenant shard affinity. Three layers:
//!
//! * [`ServeEngine`] — stateless-per-request processing: parse → compile
//!   (cached) → route to the tenant's shard → `run_trajectory` → render
//!   the response. Shared across worker threads behind an `Arc`; every
//!   piece of shared state (template cache, program cache, pool ledgers)
//!   is internally synchronized.
//! * [`ServeServer`] — admission control: a bounded queue plus a
//!   hand-rolled worker thread pool (matching the vendored `rayon`
//!   stand-in idiom — no async runtime dependency). A full queue rejects
//!   with a typed `overloaded` error instead of blocking or panicking.
//!   Workers drain requests in small batches to amortize lock traffic,
//!   which also lets repeat programs within one batch hit the cache
//!   entry their predecessor just inserted.
//! * [`serve_stdio`] / [`serve_tcp`] — the transports: newline-delimited
//!   JSON over stdin/stdout (robust for scripts and tests — no port
//!   races) or over TCP connections.
//!
//! ## Wire protocol
//!
//! One JSON object per line in, one per line out. Requests:
//!
//! ```json
//! {"op":"run","id":"r1","tenant":"alice","program":"main(...){...}",
//!  "feeds":{"x":{"dims":[4],"values":[1,2,3,4]}},
//!  "state":{"z":{"dims":[],"values":[0]}},
//!  "invocations":3,"sizes":{"n":64},
//!  "chaos":{"profile":"transient","seed":7,"max_retries":3,"down":["DECO"]}}
//! {"op":"stats","id":"s1"}
//! {"op":"shutdown","id":"bye"}
//! ```
//!
//! A `run` response echoes the request id, names the shard and whether
//! the program cache served the compile, and carries the outputs of the
//! final invocation plus the deterministic execution counters:
//!
//! ```json
//! {"id":"r1","op":"run","ok":true,"tenant":"alice","shard":1,
//!  "program_cache":"hit","outputs":{"y":{"dims":[],"values":[30]}},
//!  "invocations":3,"replayed_invocations":0,"faults_injected":0,
//!  "retries":0,"fallbacks":0,"virtual_ns":6000,
//!  "frontend_us":812,"lower_us":0,"compile_us":0,"execute_us":95}
//! ```
//!
//! Failures are typed, never panics:
//! `{"id":"r1","op":"run","ok":false,"error":{"kind":"overloaded","detail":"..."}}`
//! with kinds `bad_request` | `overloaded` | `shedding` | `deadline_exceeded`
//! | `quarantined` | `shutting_down` | `panic` | `compile` | `execution`.
//!
//! Responses are emitted in completion order; match them to requests by
//! `id`. All tensors are `float`; outputs render with names sorted, so a
//! cache hit's response bytes are identical to the cold compile's.
//!
//! ## Resilience (`pm-resilience`, DESIGN.md §15)
//!
//! The service contains faults at four layers:
//!
//! * **deadlines** — a request may carry `deadline_ms` (wall clock) and
//!   `fuel` (deterministic work units); the resulting [`srdfg::Budget`]
//!   is threaded through Algorithm 1's round loop, Algorithm 2's entry,
//!   and every SoC dispatch/retry/invocation loop. Exhaustion returns a
//!   typed `deadline_exceeded` error at the next loop boundary — no
//!   thread is ever killed, and an already-expired deadline is rejected
//!   before the frontend runs.
//! * **circuit breakers** — each shard tracks per-backend breakers
//!   ([`pm_accel::BreakerBoard`]); an admitted request steers away from
//!   open breakers by merging them into its chaos `force_down` set,
//!   which reuses the byte-identical host-fallback re-lowering path.
//! * **admission control** — beyond the bounded queue (`overloaded`),
//!   submissions are load-shed with a distinct `shedding` error when the
//!   total in-flight request cost passes `max_inflight_cost`, and
//!   requests whose content address is quarantined after a prior panic
//!   are rejected (`quarantined`) without reaching a worker.
//! * **panic isolation** — each request runs under `catch_unwind`; a
//!   panic is caught, counted, its program's source hash and graph
//!   fingerprint quarantined, and a typed error returned while the
//!   worker lives on.

use crate::compiler::{standard_soc, Compiler, PolyMathError};
use crate::json::Json;
use pm_accel::{ChaosConfig, ChaosProfile, SocError, SocPool, TrajectoryInputs};
use pm_lower::ProgramKey;
use srdfg::{Bindings, Budget, Tensor};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one serve instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of SoC shards (tenants are pinned to shards by name hash).
    pub shards: usize,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected with a
    /// typed `overloaded` error.
    pub queue_depth: usize,
    /// Requests a worker drains per queue lock acquisition.
    pub batch: usize,
    /// Compile against the host-only target map instead of the
    /// cross-domain one.
    pub host_only: bool,
    /// Total in-flight request cost (admitted line bytes, queued or
    /// executing) beyond which submissions are load-shed with a typed
    /// `shedding` error — distinct from the queue-depth `overloaded`
    /// rejection, so operators can tell "too many requests" from "too
    /// much work".
    pub max_inflight_cost: u64,
    /// Programs containing this marker panic inside the worker's
    /// `catch_unwind` region — the deterministic poison-program hook the
    /// chaos soak and the quarantine tests use. `None` in production.
    pub poison_marker: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 64,
            batch: 8,
            host_only: false,
            max_inflight_cost: 4 << 20,
            poison_marker: None,
        }
    }
}

/// Typed request-level failure. The service returns these on the wire;
/// it never panics or drops a request silently.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request line was not a valid protocol object.
    BadRequest(String),
    /// The admission queue is full.
    Overloaded {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The in-flight cost limit was exceeded (load shedding).
    Shedding {
        /// In-flight cost the submission would have reached.
        cost: u64,
        /// The configured in-flight cost limit.
        limit: u64,
    },
    /// The request's budget (wall-clock deadline or deterministic fuel)
    /// ran out; the pipeline unwound cooperatively.
    DeadlineExceeded(String),
    /// The program's content address is quarantined after a prior
    /// worker panic.
    Quarantined(String),
    /// The server has stopped admitting requests.
    ShuttingDown,
    /// Request processing panicked outside the engine's isolation region
    /// (worker-level backstop; the worker thread survives).
    Panic(String),
    /// The compile pipeline rejected the program.
    Compile(String),
    /// The SoC runtime could not execute the compiled program.
    Execution(String),
}

impl ServeError {
    /// The wire `error.kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Shedding { .. } => "shedding",
            ServeError::DeadlineExceeded(_) => "deadline_exceeded",
            ServeError::Quarantined(_) => "quarantined",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Panic(_) => "panic",
            ServeError::Compile(_) => "compile",
            ServeError::Execution(_) => "execution",
        }
    }

    fn detail(&self) -> String {
        match self {
            ServeError::BadRequest(d)
            | ServeError::DeadlineExceeded(d)
            | ServeError::Quarantined(d)
            | ServeError::Panic(d)
            | ServeError::Compile(d)
            | ServeError::Execution(d) => d.clone(),
            ServeError::Overloaded { depth } => format!("queue full (depth {depth})"),
            ServeError::Shedding { cost, limit } => {
                format!("in-flight cost {cost} exceeds limit {limit}")
            }
            ServeError::ShuttingDown => "server is shutting down; request not admitted".to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for ServeError {}

/// A parsed `run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Request id, echoed in the response (`""` when omitted).
    pub id: String,
    /// Tenant name — decides the SoC shard (`"default"` when omitted).
    pub tenant: String,
    /// PMLang source.
    pub program: String,
    /// Boundary `input`/`param` feeds.
    pub feeds: HashMap<String, Tensor>,
    /// Initial values for `state` variables.
    pub state: Vec<(String, Tensor)>,
    /// Invocations to run (defaults to 1).
    pub invocations: u64,
    /// Size bindings for symbolic dimensions.
    pub sizes: Bindings,
    /// Fault-injection configuration (defaults to chaos off).
    pub chaos: ChaosConfig,
    /// Wall-clock deadline in milliseconds (measured from the moment a
    /// worker picks the request up; `None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Deterministic work-unit budget (`None` = unlimited). Exhaustion
    /// is bit-for-bit reproducible, unlike the wall-clock deadline.
    pub fuel: Option<u64>,
    /// Whether the response carries the wall-clock `*_us` timing fields
    /// (`true` by default; the soak harness turns them off so replays
    /// compare byte-for-byte).
    pub timings: bool,
}

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile (through the program cache) and execute.
    Run(Box<RunRequest>),
    /// Report cache and pool statistics.
    Stats {
        /// Request id.
        id: String,
    },
    /// Acknowledge and stop serving.
    Shutdown {
        /// Request id.
        id: String,
    },
}

impl Request {
    /// The request id (echoed in responses).
    pub fn id(&self) -> &str {
        match self {
            Request::Run(r) => &r.id,
            Request::Stats { id } | Request::Shutdown { id } => id,
        }
    }

    /// The wire `op` tag.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run(_) => "run",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] with a description of the first
    /// malformed field.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let bad = |d: &str| ServeError::BadRequest(d.to_string());
        let v = Json::parse(line).map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let id = v.get("id").and_then(Json::as_str).unwrap_or("").to_string();
        let op = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing `op`"))?;
        match op {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "run" => {
                let program = v
                    .get("program")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("run: missing `program`"))?
                    .to_string();
                let tenant =
                    v.get("tenant").and_then(Json::as_str).unwrap_or("default").to_string();
                let invocations = match v.get("invocations") {
                    None => 1,
                    Some(n) => n.as_u64().ok_or_else(|| bad("run: bad `invocations`"))?,
                };
                let mut feeds = HashMap::new();
                if let Some(obj) = v.get("feeds") {
                    for (name, t) in
                        obj.members().ok_or_else(|| bad("run: `feeds` must be an object"))?
                    {
                        feeds.insert(name.clone(), parse_tensor(name, t)?);
                    }
                }
                let mut state = Vec::new();
                if let Some(obj) = v.get("state") {
                    for (name, t) in
                        obj.members().ok_or_else(|| bad("run: `state` must be an object"))?
                    {
                        state.push((name.clone(), parse_tensor(name, t)?));
                    }
                }
                let mut sizes = Bindings::default();
                if let Some(obj) = v.get("sizes") {
                    for (name, n) in
                        obj.members().ok_or_else(|| bad("run: `sizes` must be an object"))?
                    {
                        let val = n
                            .as_f64()
                            .filter(|x| x.fract() == 0.0)
                            .ok_or_else(|| bad("run: bad size value"))?;
                        sizes.sizes.insert(name.clone(), val as i64);
                    }
                }
                let chaos = parse_chaos(v.get("chaos"))?;
                let deadline_ms = match v.get("deadline_ms") {
                    None => None,
                    Some(n) => Some(n.as_u64().ok_or_else(|| bad("run: bad `deadline_ms`"))?),
                };
                let fuel = match v.get("fuel") {
                    None => None,
                    Some(n) => Some(n.as_u64().ok_or_else(|| bad("run: bad `fuel`"))?),
                };
                let timings = match v.get("timings") {
                    None => true,
                    Some(b) => b.as_bool().ok_or_else(|| bad("run: bad `timings`"))?,
                };
                Ok(Request::Run(Box::new(RunRequest {
                    id,
                    tenant,
                    program,
                    feeds,
                    state,
                    invocations,
                    sizes,
                    chaos,
                    deadline_ms,
                    fuel,
                    timings,
                })))
            }
            other => Err(bad(&format!("unknown op `{other}`"))),
        }
    }
}

fn parse_tensor(name: &str, v: &Json) -> Result<Tensor, ServeError> {
    let bad = |d: String| ServeError::BadRequest(d);
    let dims: Vec<usize> = v
        .get("dims")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("tensor `{name}`: missing `dims`")))?
        .iter()
        .map(|d| d.as_u64().map(|u| u as usize))
        .collect::<Option<_>>()
        .ok_or_else(|| bad(format!("tensor `{name}`: bad dims")))?;
    let values: Vec<f64> = v
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("tensor `{name}`: missing `values`")))?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<_>>()
        .ok_or_else(|| bad(format!("tensor `{name}`: bad values")))?;
    Tensor::from_vec(pmlang::DType::Float, dims, values)
        .map_err(|e| bad(format!("tensor `{name}`: {e}")))
}

fn parse_chaos(v: Option<&Json>) -> Result<ChaosConfig, ServeError> {
    let bad = |d: &str| ServeError::BadRequest(d.to_string());
    let Some(v) = v else {
        return Ok(ChaosConfig::off());
    };
    let seed = match v.get("seed") {
        None => 0,
        Some(n) => n.as_u64().ok_or_else(|| bad("chaos: bad `seed`"))?,
    };
    let profile = match v.get("profile").and_then(Json::as_str) {
        None => ChaosProfile::Off,
        Some(p) => p.parse().map_err(|e: String| ServeError::BadRequest(e))?,
    };
    let mut cfg = ChaosConfig::new(seed, profile);
    if let Some(n) = v.get("max_retries") {
        let retries = n.as_u64().ok_or_else(|| bad("chaos: bad `max_retries`"))?;
        cfg = cfg.with_max_retries(retries as u32);
    }
    if let Some(down) = v.get("down") {
        for d in down.as_array().ok_or_else(|| bad("chaos: `down` must be an array"))? {
            cfg = cfg.with_down(d.as_str().ok_or_else(|| bad("chaos: bad `down` entry"))?);
        }
    }
    Ok(cfg)
}

fn tensor_json(t: &Tensor) -> Json {
    let dims = Json::Arr(t.shape().iter().map(|&d| Json::Num(d as f64)).collect());
    let values = match t.as_real_slice() {
        Some(s) => Json::Arr(s.iter().map(|&v| Json::Num(v)).collect()),
        None => Json::Null,
    };
    Json::Obj(vec![("dims".into(), dims), ("values".into(), values)])
}

fn error_response(id: &str, op: &str, e: &ServeError) -> String {
    Json::Obj(vec![
        ("id".into(), Json::Str(id.into())),
        ("op".into(), Json::Str(op.into())),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(e.kind().into())),
                ("detail".into(), Json::Str(e.detail())),
            ]),
        ),
    ])
    .render()
}

/// Renders the typed rejection for a line that could not be admitted
/// (best-effort id/op echo — the line may itself be malformed).
pub fn reject_line(line: &str, e: &ServeError) -> String {
    let (id, op) = match Request::parse(line) {
        Ok(req) => (req.id().to_string(), req.op().to_string()),
        Err(_) => (String::new(), String::new()),
    };
    error_response(&id, &op, e)
}

/// A representative corpus of valid wire requests, used as the seed set
/// for the `serve@wire` byte-mutation fuzz route (`pmc fuzz --wire` and
/// the resilience integration tests). Covers every op and every optional
/// `run` field, so mutations reach all parser states.
pub fn wire_corpus() -> Vec<String> {
    vec![
        concat!(
            r#"{"op":"run","id":"w0","tenant":"alice","program":"main(input float x[4], "#,
            r#"output float y) { index i[0:3]; y = sum[i](x[i]*x[i]); }","feeds":{"x":"#,
            r#"{"dims":[4],"values":[1,2,3,4]}},"invocations":2,"timings":false}"#
        )
        .to_string(),
        concat!(
            r#"{"op":"run","id":"w1","tenant":"bob","program":"main(input float x[n], "#,
            r#"output float y) { index i[0:n-1]; y = sum[i](x[i]); }","sizes":{"n":4},"#,
            r#""feeds":{"x":{"dims":[4],"values":[1,1,1,1]}},"state":{"z":{"dims":[],"#,
            r#""values":[0]}},"chaos":{"profile":"transient","seed":7,"max_retries":2,"#,
            r#""down":["DECO"]},"deadline_ms":1000,"fuel":100000}"#
        )
        .to_string(),
        r#"{"op":"stats","id":"w2"}"#.to_string(),
        r#"{"op":"shutdown","id":"w3"}"#.to_string(),
    ]
}

/// The wire-hardening oracle: feeds one (possibly mutated) line through
/// the engine under `catch_unwind` and demands a typed response — valid
/// JSON carrying either `ok:true` or a non-empty `error.kind`. Any
/// panic or malformed output is a hardening failure.
///
/// # Errors
///
/// A description of the violation (panic payload or the malformed
/// response), for the fuzz report.
pub fn check_wire_line(engine: &ServeEngine, line: &str) -> Result<(), String> {
    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.handle_line(line)))
        .map_err(|p| format!("panicked: {}", panic_message(p.as_ref())))?;
    let v = Json::parse(&resp).map_err(|e| format!("response is not JSON ({e}): {resp}"))?;
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(());
    }
    let kind = v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str).unwrap_or("");
    if kind.is_empty() {
        return Err(format!("response has neither ok:true nor error.kind: {resp}"));
    }
    Ok(())
}

/// Content hash of a request's compile inputs (program source plus size
/// bindings) — the cheap admission-level quarantine key. The graph
/// fingerprint is the precise content address, but computing it requires
/// running the frontend and mid-end; this hash lets [`ServeServer::submit`]
/// reject known-poison requests without any pipeline work.
pub fn source_hash(program: &str, sizes: &Bindings) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = srdfg::FxHasher::default();
    program.hash(&mut h);
    let mut entries: Vec<_> = sizes.sizes.iter().collect();
    entries.sort();
    for (name, value) in entries {
        name.hash(&mut h);
        value.hash(&mut h);
    }
    h.finish()
}

/// The poison-program quarantine: content addresses of requests that
/// panicked a worker. Dual-keyed — the cheap [`source_hash`] is checked
/// at admission (before the request reaches a worker), the precise
/// [`srdfg::graph_fingerprint`] is checked by the compile gate (catching
/// re-encodings of the same graph) — so a repeat offender is rejected
/// with a typed `quarantined` error instead of re-panicking a worker.
#[derive(Debug, Default)]
pub struct Quarantine {
    sources: Mutex<BTreeSet<u64>>,
    graphs: Mutex<BTreeSet<u64>>,
    populated: AtomicBool,
}

impl Quarantine {
    /// Fast emptiness probe (lock-free), so the admission path pays
    /// nothing until the first panic has actually happened.
    pub fn is_empty(&self) -> bool {
        !self.populated.load(Ordering::Acquire)
    }

    /// Quarantines a request's source hash, and its graph fingerprint
    /// when the pipeline got far enough to compute one.
    pub fn record(&self, source: u64, graph: Option<u64>) {
        self.sources.lock().unwrap_or_else(|e| e.into_inner()).insert(source);
        if let Some(g) = graph {
            self.graphs.lock().unwrap_or_else(|e| e.into_inner()).insert(g);
        }
        self.populated.store(true, Ordering::Release);
    }

    /// Whether a source hash is quarantined.
    pub fn has_source(&self, source: u64) -> bool {
        !self.is_empty() && self.sources.lock().unwrap_or_else(|e| e.into_inner()).contains(&source)
    }

    /// Whether a graph fingerprint is quarantined.
    pub fn has_graph(&self, graph: u64) -> bool {
        !self.is_empty() && self.graphs.lock().unwrap_or_else(|e| e.into_inner()).contains(&graph)
    }

    /// `(source hashes, graph fingerprints)` currently quarantined.
    pub fn counts(&self) -> (usize, usize) {
        (
            self.sources.lock().unwrap_or_else(|e| e.into_inner()).len(),
            self.graphs.lock().unwrap_or_else(|e| e.into_inner()).len(),
        )
    }
}

/// Best-effort panic payload rendering for the typed wire error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-request processing core: compile through the program cache,
/// route to the tenant's shard, execute, render. Shared by every worker
/// thread and transport.
pub struct ServeEngine {
    compiler: Compiler,
    pool: SocPool,
    quarantine: Quarantine,
    worker_panics: AtomicU64,
    poison_marker: Option<String>,
}

impl fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine").field("shards", &self.pool.len()).finish()
    }
}

impl ServeEngine {
    /// Builds the engine: one compiler (host-only or cross-domain) whose
    /// template and program caches are shared by all shards, and a
    /// [`SocPool`] whose every shard carries the standard accelerator
    /// complement plus the compiler's template cache (so device-down
    /// re-lowering under chaos reuses the templates the original compile
    /// populated).
    pub fn new(cfg: &ServeConfig) -> ServeEngine {
        let compiler = if cfg.host_only { Compiler::host_only() } else { Compiler::cross_domain() };
        let template_cache = compiler.template_cache();
        let pool = SocPool::new(cfg.shards, |_| {
            let mut soc = standard_soc();
            soc.with_template_cache(template_cache.clone());
            soc
        });
        ServeEngine {
            compiler,
            pool,
            quarantine: Quarantine::default(),
            worker_panics: AtomicU64::new(0),
            poison_marker: cfg.poison_marker.clone(),
        }
    }

    /// The engine's compiler (cache handles, target map).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The engine's SoC pool (shard routing, ledgers).
    pub fn pool(&self) -> &SocPool {
        &self.pool
    }

    /// The engine's poison quarantine.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Panics caught (and contained) across the engine's lifetime. The
    /// soak harness asserts its workers all survived by checking this
    /// equals the number of poison requests it injected.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Counts a panic the worker-level backstop caught (outside the
    /// engine's own isolation region).
    pub fn note_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Processes one request line and renders the response line.
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Err(e) => error_response("", "", &e),
            Ok(req) => self.handle(&req),
        }
    }

    /// Processes one parsed request and renders the response line.
    pub fn handle(&self, req: &Request) -> String {
        match req {
            Request::Run(r) => match self.run(r) {
                Ok(resp) => resp,
                Err(e) => error_response(&r.id, "run", &e),
            },
            Request::Stats { id } => self.stats_response(id),
            Request::Shutdown { id } => Json::Obj(vec![
                ("id".into(), Json::Str(id.clone())),
                ("op".into(), Json::Str("shutdown".into())),
                ("ok".into(), Json::Bool(true)),
            ])
            .render(),
        }
    }

    /// Executes one `run` request under panic isolation: a panic anywhere
    /// in the pipeline is caught, counted, and quarantines the program's
    /// content address — the worker thread survives and the client gets a
    /// typed `quarantined` error.
    fn run(&self, req: &RunRequest) -> Result<String, ServeError> {
        // Side-slot the compile gate populates with the graph fingerprint
        // once the mid-end has computed it, so a panic *after* that point
        // quarantines the precise content address too.
        let graph_fp: Mutex<Option<u64>> = Mutex::new(None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_inner(req, &graph_fp)
        }));
        match result {
            Ok(r) => r,
            Err(payload) => {
                self.worker_panics.fetch_add(1, Ordering::Relaxed);
                let source = source_hash(&req.program, &req.sizes);
                let graph = *graph_fp.lock().unwrap_or_else(|e| e.into_inner());
                self.quarantine.record(source, graph);
                Err(ServeError::Quarantined(format!(
                    "request panicked ({}); program quarantined",
                    panic_message(payload.as_ref())
                )))
            }
        }
    }

    fn run_inner(
        &self,
        req: &RunRequest,
        graph_fp: &Mutex<Option<u64>>,
    ) -> Result<String, ServeError> {
        if let Some(marker) = &self.poison_marker {
            if !marker.is_empty() && req.program.contains(marker.as_str()) {
                panic!("poison marker tripped");
            }
        }
        let budget = Budget::new(req.deadline_ms.map(Duration::from_millis), req.fuel);
        let gate = |key: &ProgramKey| {
            *graph_fp.lock().unwrap_or_else(|e| e.into_inner()) = Some(key.graph);
            !self.quarantine.has_graph(key.graph)
        };
        let cc = self
            .compiler
            .compile_cached_checked(&req.program, &req.sizes, &budget, Some(&gate))
            .map_err(|e| match e {
                PolyMathError::Budget(b) => ServeError::DeadlineExceeded(b.to_string()),
                PolyMathError::Quarantined { fingerprint } => ServeError::Quarantined(format!(
                    "graph fingerprint {fingerprint:016x} is quarantined"
                )),
                other => ServeError::Compile(other.to_string()),
            })?;
        let shard = self.pool.shard_for(&req.tenant);
        // Steer away from open breakers through the same force-down path
        // a declared outage uses: fragments re-lower onto the host, so
        // outputs stay byte-identical to the healthy path.
        let forced = self.pool.breaker_guard(shard);
        let mut chaos = req.chaos.clone();
        chaos.budget = budget.clone();
        for t in &forced {
            chaos.force_down.insert(t.clone());
        }
        let inputs = TrajectoryInputs {
            feeds: &req.feeds,
            state_seeds: &req.state,
            invocations: req.invocations,
        };
        let t = Instant::now();
        let outcome = self
            .pool
            .shard(shard)
            .run_trajectory(
                &cc.program,
                &HashMap::new(),
                &chaos,
                Some(self.compiler.targets()),
                &inputs,
            )
            .map_err(|e| match e {
                SocError::BudgetExhausted(b) => ServeError::DeadlineExceeded(b.to_string()),
                other => ServeError::Execution(other.to_string()),
            })?;
        let execute_us = t.elapsed().as_micros() as f64;
        self.pool.record_served(shard, &req.tenant, &outcome, &forced);

        let mut names: Vec<&String> = outcome.outputs.keys().collect();
        names.sort();
        let outputs = Json::Obj(
            names.iter().map(|n| ((*n).clone(), tensor_json(&outcome.outputs[*n]))).collect(),
        );
        let us = |d: std::time::Duration| Json::Num(d.as_micros() as f64);
        let frontend = cc.timings.frontend + cc.timings.build + cc.timings.midend;
        let mut fields = vec![
            ("id".into(), Json::Str(req.id.clone())),
            ("op".into(), Json::Str("run".into())),
            ("ok".into(), Json::Bool(true)),
            ("tenant".into(), Json::Str(req.tenant.clone())),
            ("shard".into(), Json::Num(shard as f64)),
            ("program_cache".into(), Json::Str(if cc.cache_hit { "hit" } else { "miss" }.into())),
            ("outputs".into(), outputs),
            ("invocations".into(), Json::Num(outcome.invocations as f64)),
            ("replayed_invocations".into(), Json::Num(outcome.replayed_invocations as f64)),
            ("faults_injected".into(), Json::Num(outcome.faults_injected as f64)),
            ("retries".into(), Json::Num(outcome.retries as f64)),
            ("fallbacks".into(), Json::Num(outcome.fallbacks.len() as f64)),
            ("breaker_steered".into(), Json::Num(forced.len() as f64)),
            ("virtual_ns".into(), Json::Num(outcome.virtual_ns as f64)),
        ];
        if req.timings {
            fields.push(("frontend_us".into(), us(frontend)));
            fields.push(("lower_us".into(), us(cc.timings.lower + cc.timings.post_lower)));
            fields.push(("compile_us".into(), us(cc.timings.compile)));
            fields.push(("execute_us".into(), Json::Num(execute_us)));
        }
        Ok(Json::Obj(fields).render())
    }

    /// Renders the `stats` response: program-cache, template-cache, and
    /// pool-level counters.
    pub fn stats_response(&self, id: &str) -> String {
        let pc = self.compiler.program_cache_stats();
        let tc = self.compiler.cache_stats();
        let pool = self.pool.report();
        Json::Obj(vec![
            ("id".into(), Json::Str(id.into())),
            ("op".into(), Json::Str("stats".into())),
            ("ok".into(), Json::Bool(true)),
            (
                "program_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(pc.hits as f64)),
                    ("misses".into(), Json::Num(pc.misses as f64)),
                    ("inserts".into(), Json::Num(pc.inserts as f64)),
                    ("evictions".into(), Json::Num(pc.evictions as f64)),
                    ("entries".into(), Json::Num(pc.entries as f64)),
                    ("hit_rate".into(), Json::Num(pc.hit_rate())),
                ]),
            ),
            (
                "template_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(tc.hits as f64)),
                    ("misses".into(), Json::Num(tc.misses as f64)),
                    ("inserts".into(), Json::Num(tc.inserts as f64)),
                    ("evictions".into(), Json::Num(tc.evictions as f64)),
                    ("hit_rate".into(), Json::Num(tc.hit_rate())),
                ]),
            ),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("shards".into(), Json::Num(self.pool.len() as f64)),
                    ("requests".into(), Json::Num(pool.total.requests as f64)),
                    ("invocations".into(), Json::Num(pool.total.invocations as f64)),
                    (
                        "replayed_invocations".into(),
                        Json::Num(pool.total.replayed_invocations as f64),
                    ),
                    ("faults_injected".into(), Json::Num(pool.total.faults_injected as f64)),
                    ("retries".into(), Json::Num(pool.total.retries as f64)),
                    ("fallbacks".into(), Json::Num(pool.total.fallbacks as f64)),
                    ("virtual_ns".into(), Json::Num(pool.total.virtual_ns as f64)),
                ]),
            ),
            (
                "tenants".into(),
                Json::Obj(
                    pool.tenants
                        .iter()
                        .map(|(name, s)| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    ("requests".into(), Json::Num(s.requests as f64)),
                                    ("invocations".into(), Json::Num(s.invocations as f64)),
                                    (
                                        "replayed_invocations".into(),
                                        Json::Num(s.replayed_invocations as f64),
                                    ),
                                    ("faults_injected".into(), Json::Num(s.faults_injected as f64)),
                                    ("retries".into(), Json::Num(s.retries as f64)),
                                    ("fallbacks".into(), Json::Num(s.fallbacks as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "breakers".into(),
                Json::Arr(
                    pool.breakers
                        .iter()
                        .map(|shard| {
                            Json::Arr(
                                shard
                                    .iter()
                                    .map(|b| {
                                        Json::Obj(vec![
                                            ("target".into(), Json::Str(b.target.clone())),
                                            ("state".into(), Json::Str(b.state.to_string())),
                                            ("trips".into(), Json::Num(b.trips as f64)),
                                            ("steered".into(), Json::Num(b.steered as f64)),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "resilience".into(),
                Json::Obj(vec![
                    ("worker_panics".into(), Json::Num(self.worker_panics() as f64)),
                    ("quarantined_sources".into(), Json::Num(self.quarantine.counts().0 as f64)),
                    ("quarantined_graphs".into(), Json::Num(self.quarantine.counts().1 as f64)),
                ]),
            ),
        ])
        .render()
    }
}

/// One admitted request: the raw line, its admission cost, and where its
/// response goes.
struct Job {
    line: String,
    cost: u64,
    reply: mpsc::Sender<String>,
}

/// Queue state shared between submitters and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    depth: usize,
    /// Cost (line bytes) of every admitted request not yet fully
    /// processed — queued or executing. Charged at admission, released
    /// by the worker after the response is sent.
    inflight_cost: AtomicU64,
    max_inflight_cost: u64,
    /// Once set, no further submissions are admitted; workers drain the
    /// queue and exit.
    stopping: AtomicBool,
}

/// Admission control + worker pool around a [`ServeEngine`].
pub struct ServeServer {
    engine: Arc<ServeEngine>,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
    batch: usize,
}

impl fmt::Debug for ServeServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeServer")
            .field("workers", &self.workers.len())
            .field("depth", &self.shared.depth)
            .finish()
    }
}

impl ServeServer {
    /// Starts the worker pool immediately.
    pub fn start(engine: Arc<ServeEngine>, cfg: &ServeConfig) -> ServeServer {
        let mut server = ServeServer::paused(engine, cfg);
        server.resume();
        server
    }

    /// Builds the server without starting workers — submissions queue up
    /// (and overflow deterministically), which is how the overload test
    /// fills the queue without racing the drain. Call
    /// [`ServeServer::resume`] to start processing.
    pub fn paused(engine: Arc<ServeEngine>, cfg: &ServeConfig) -> ServeServer {
        ServeServer {
            engine,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                not_empty: Condvar::new(),
                depth: cfg.queue_depth.max(1),
                inflight_cost: AtomicU64::new(0),
                max_inflight_cost: cfg.max_inflight_cost.max(1),
                stopping: AtomicBool::new(false),
            }),
            workers: Vec::new(),
            worker_count: cfg.workers.max(1),
            batch: cfg.batch.max(1),
        }
    }

    /// Spawns the worker threads (idempotent after the first call).
    pub fn resume(&mut self) {
        if !self.workers.is_empty() {
            return;
        }
        for _ in 0..self.worker_count {
            let engine = Arc::clone(&self.engine);
            let shared = Arc::clone(&self.shared);
            let batch = self.batch;
            self.workers.push(std::thread::spawn(move || loop {
                let jobs: Vec<Job> = {
                    let mut q = shared.queue.lock().unwrap();
                    loop {
                        if !q.is_empty() {
                            let take = batch.min(q.len());
                            break q.drain(..take).collect();
                        }
                        if shared.stopping.load(Ordering::Acquire) {
                            return;
                        }
                        q = shared.not_empty.wait(q).unwrap();
                    }
                };
                for job in jobs {
                    // The engine isolates request panics itself; this
                    // backstop guarantees the worker survives even a
                    // panic outside that region (parse, stats, render).
                    let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.handle_line(&job.line)
                    }))
                    .unwrap_or_else(|_| {
                        engine.note_worker_panic();
                        reject_line(
                            &job.line,
                            &ServeError::Panic("request processing panicked".into()),
                        )
                    });
                    // A dropped receiver (client went away) is not an error.
                    let _ = job.reply.send(resp);
                    shared.inflight_cost.fetch_sub(job.cost, Ordering::Relaxed);
                }
            }));
        }
    }

    /// Admits one request line; its response will be sent to `reply`.
    ///
    /// # Errors
    ///
    /// In check order: [`ServeError::ShuttingDown`] once admission has
    /// stopped, [`ServeError::Quarantined`] when the request's source
    /// hash is quarantined (rejected before reaching a worker),
    /// [`ServeError::Overloaded`] when the queue is at capacity, and
    /// [`ServeError::Shedding`] when the in-flight cost limit would be
    /// exceeded.
    pub fn submit(&self, line: String, reply: mpsc::Sender<String>) -> Result<(), ServeError> {
        let depth = self.shared.depth;
        if self.shared.stopping.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // Admission-level quarantine: the parse is paid only once a panic
        // has actually populated the quarantine.
        if !self.engine.quarantine().is_empty() {
            if let Ok(Request::Run(r)) = Request::parse(&line) {
                if self.engine.quarantine().has_source(source_hash(&r.program, &r.sizes)) {
                    return Err(ServeError::Quarantined(
                        "program source is quarantined after a prior worker panic".into(),
                    ));
                }
            }
        }
        let cost = line.len() as u64;
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.len() >= depth {
                return Err(ServeError::Overloaded { depth });
            }
            // The in-flight counter only moves under the queue lock on
            // the admission side, so the check-then-charge is atomic
            // against other submitters; workers decrement lock-free.
            let inflight = self.shared.inflight_cost.load(Ordering::Relaxed);
            let would_be = inflight.saturating_add(cost);
            if would_be > self.shared.max_inflight_cost {
                return Err(ServeError::Shedding {
                    cost: would_be,
                    limit: self.shared.max_inflight_cost,
                });
            }
            self.shared.inflight_cost.fetch_add(cost, Ordering::Relaxed);
            q.push_back(Job { line, cost, reply });
        }
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Currently queued (admitted, not yet drained) requests.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Cost (line bytes) of admitted requests not yet fully processed.
    pub fn inflight_cost(&self) -> u64 {
        self.shared.inflight_cost.load(Ordering::Relaxed)
    }

    /// Stops admitting new requests without joining the workers: late
    /// submissions get a typed `shutting_down` rejection while already
    /// admitted requests keep draining. The graceful-drain half of
    /// [`ServeServer::shutdown`].
    pub fn stop_admitting(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
    }

    /// Stops admitting, drains the queue, and joins every worker.
    pub fn shutdown(mut self) {
        self.stop_admitting();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serves newline-delimited JSON over stdin/stdout until EOF or a
/// `shutdown` request. Responses are written in completion order by a
/// dedicated writer thread; queued requests are drained before exit.
///
/// # Errors
///
/// Only transport failures (stdin read errors); request-level failures
/// go on the wire as typed error responses.
pub fn serve_stdio(cfg: &ServeConfig) -> Result<(), String> {
    use std::io::BufRead;
    let engine = Arc::new(ServeEngine::new(cfg));
    let server = ServeServer::start(Arc::clone(&engine), cfg);
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let is_shutdown = matches!(Request::parse(&line), Ok(Request::Shutdown { .. }));
        if let Err(e) = server.submit(line.clone(), tx.clone()) {
            let _ = tx.send(reject_line(&line, &e));
        }
        if is_shutdown {
            break;
        }
    }
    server.shutdown();
    drop(tx);
    let _ = writer.join();
    Ok(())
}

/// Serves newline-delimited JSON over TCP. Each connection gets its own
/// reader thread and response channel; all connections share one engine,
/// admission queue, and worker pool. A `shutdown` request from any
/// client stops the listener after its acknowledgement is sent.
///
/// # Errors
///
/// Binding failures; per-connection I/O errors only end that connection.
pub fn serve_tcp(cfg: &ServeConfig, addr: &str) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("pmc serve: listening on {local}");
    let engine = Arc::new(ServeEngine::new(cfg));
    let server = Arc::new(ServeServer::start(Arc::clone(&engine), cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();

    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        let conn_stop = Arc::clone(&stop);
        conns.push(std::thread::spawn(move || {
            let stop = conn_stop;
            let (tx, rx) = mpsc::channel::<String>();
            let Ok(write_half) = stream.try_clone() else { return };
            let writer = std::thread::spawn(move || {
                let mut out = write_half;
                for line in rx {
                    if writeln!(out, "{line}").is_err() {
                        break;
                    }
                    let _ = out.flush();
                }
            });
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let is_shutdown = matches!(Request::parse(&line), Ok(Request::Shutdown { .. }));
                if let Err(e) = server.submit(line.clone(), tx.clone()) {
                    let _ = tx.send(reject_line(&line, &e));
                }
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                    break;
                }
            }
            drop(tx);
            let _ = writer.join();
        }));
        if stop.load(Ordering::Acquire) {
            // Unblock the accept loop so the listener can close.
            let _ = std::net::TcpStream::connect(local);
        }
    }
    for c in conns {
        let _ = c.join();
    }
    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = "main(input float x[4], output float y) {
         index i[0:3];
         y = sum[i](x[i]*x[i]);
     }";

    fn run_line(id: &str, program: &str) -> String {
        Json::Obj(vec![
            ("op".into(), Json::Str("run".into())),
            ("id".into(), Json::Str(id.into())),
            ("tenant".into(), Json::Str("t0".into())),
            ("program".into(), Json::Str(program.into())),
            (
                "feeds".into(),
                Json::Obj(vec![(
                    "x".into(),
                    Json::Obj(vec![
                        ("dims".into(), Json::Arr(vec![Json::Num(4.0)])),
                        (
                            "values".into(),
                            Json::Arr(vec![
                                Json::Num(1.0),
                                Json::Num(2.0),
                                Json::Num(3.0),
                                Json::Num(4.0),
                            ]),
                        ),
                    ]),
                )]),
            ),
        ])
        .render()
    }

    #[test]
    fn run_request_round_trips() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        let resp = engine.handle_line(&run_line("r1", DOT));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("program_cache").and_then(Json::as_str), Some("miss"));
        let y = v.get("outputs").and_then(|o| o.get("y")).unwrap();
        assert_eq!(y.get("values").and_then(Json::as_array), Some(&[Json::Num(30.0)][..]));
    }

    #[test]
    fn warm_response_hits_and_outputs_match_cold_byte_for_byte() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        let cold = engine.handle_line(&run_line("c", DOT));
        let warm = engine.handle_line(&run_line("w", DOT));
        let cv = Json::parse(&cold).unwrap();
        let wv = Json::parse(&warm).unwrap();
        assert_eq!(cv.get("program_cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(wv.get("program_cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            cv.get("outputs").unwrap().render(),
            wv.get("outputs").unwrap().render(),
            "cache hit must be byte-identical to the cold compile"
        );
        assert_eq!(wv.get("lower_us").and_then(Json::as_f64), Some(0.0));
        assert_eq!(wv.get("compile_us").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn malformed_lines_get_typed_errors() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        for (line, kind) in [
            ("not json", "bad_request"),
            ("{\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"run\",\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"warp\",\"id\":\"x\"}", "bad_request"),
            ("{\"op\":\"run\",\"id\":\"x\",\"program\":\"main(\"}", "compile"),
        ] {
            let v = Json::parse(&engine.handle_line(line)).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            let k = v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
            assert_eq!(k, Some(kind), "{line}");
        }
    }

    #[test]
    fn overload_rejects_with_typed_error() {
        let cfg = ServeConfig { queue_depth: 2, host_only: true, ..Default::default() };
        let engine = Arc::new(ServeEngine::new(&cfg));
        // Paused server: the queue fills deterministically.
        let mut server = ServeServer::paused(Arc::clone(&engine), &cfg);
        let (tx, rx) = mpsc::channel();
        assert!(server.submit(run_line("a", DOT), tx.clone()).is_ok());
        assert!(server.submit(run_line("b", DOT), tx.clone()).is_ok());
        let err = server.submit(run_line("c", DOT), tx.clone()).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { depth: 2 });
        assert_eq!(err.kind(), "overloaded");
        // The rejection renders as a response, echoing the request id.
        let rejection = reject_line(&run_line("c", DOT), &err);
        let v = Json::parse(&rejection).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("c"));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("overloaded")
        );
        // Resume: both admitted requests complete.
        server.resume();
        drop(tx);
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(rx.recv().expect("admitted requests must complete"));
        }
        server.shutdown();
        for resp in got {
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    #[test]
    fn stats_reports_cache_and_pool_counters() {
        let engine = ServeEngine::new(&ServeConfig { host_only: true, ..Default::default() });
        engine.handle_line(&run_line("a", DOT));
        engine.handle_line(&run_line("b", DOT));
        let v = Json::parse(&engine.handle_line("{\"op\":\"stats\",\"id\":\"s\"}")).unwrap();
        let pc = v.get("program_cache").unwrap();
        assert_eq!(pc.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(pc.get("misses").and_then(Json::as_u64), Some(1));
        let pool = v.get("pool").unwrap();
        assert_eq!(pool.get("requests").and_then(Json::as_u64), Some(2));
    }
}
