//! Minimal JSON parsing and rendering for the serve wire protocol.
//!
//! The workspace renders all of its JSON by hand (`pmc --format json`,
//! pm-bench, pm-lint) and, until the serve protocol, never had to *read*
//! any. This module adds the missing half: a small recursive-descent
//! parser over the line-delimited request objects `pmc serve` admits,
//! plus a renderer so responses round-trip through the same type. No
//! external dependency — the stack's no-new-deps rule (see DESIGN.md §1)
//! applies to the service layer too.
//!
//! Object member order is preserved (members are a `Vec` of pairs, not a
//! map), which keeps rendered responses byte-stable — the property the
//! golden schema test and the cold-vs-warm byte-identity test pin.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source/insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object member by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number representing one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in order, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders compact single-line JSON (the wire format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Numbers render via Rust's shortest-roundtrip `Display` — deterministic
/// and re-parseable; non-finite values (unrepresentable in JSON) become
/// `null`.
fn render_num(n: f64, out: &mut String) {
    if n.is_finite() {
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, detail: detail.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates and other invalid code points map
                            // to U+FFFD rather than failing the request.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"op":"run","n":3,"feeds":{"x":{"dims":[4],"values":[1,2,3,4]}}}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        let x = v.get("feeds").and_then(|f| f.get("x")).unwrap();
        assert_eq!(x.get("dims").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert_eq!(x.get("values").and_then(Json::as_array).map(|a| a.len()), Some(4));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash 日本語";
        let rendered = Json::Str(original.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(original.into()));
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn object_order_is_preserved_in_render() {
        let src = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(src).unwrap().render(), src);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "truefalse", "{'a':1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = Json::parse("[1, !]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
