//! `pmc` — the PolyMath compiler command-line interface.
//!
//! ```text
//! pmc check <file.pm> [--size name=value ...]
//!     Parse and semantically check a PMLang program.
//! pmc stats <file.pm> [--size ...]
//!     Build the srDFG and print graph statistics.
//! pmc dot <file.pm> [--size ...]
//!     Emit the srDFG in Graphviz DOT syntax on stdout.
//! pmc compile <file.pm> [--size ...] [--host-only] [--pin comp=TARGET ...]
//!     Run the full pipeline (passes, lowering, accelerator IR) and print
//!     the per-target partition summary with cycle/energy estimates.
//!     `--pin` overrides one component's target (repeatable), so two
//!     accelerators can serve the same domain — e.g.
//!     `--pin blks=HyperStreams` while LR keeps the TABLA default.
//!     `--fragments` additionally dumps each partition's fragment stream
//!     (Algorithm 2's load/compute/store sequence).
//!     `--timings` appends a per-stage / per-pass wall-time account of the
//!     compilation itself (frontend, build, each mid-end pass, lowering,
//!     Algorithm 2); with `--format json` it prints that account as a
//!     single JSON object instead of the partition summary.
//! pmc lint <file.pm> [--size ...] [--host-only] [--deny-warnings] [--format json]
//!     Run the cross-layer static-analysis lints (unused declarations,
//!     state carry notes, edge-metadata consistency, reduction races,
//!     unmarshaled domain crossings, lowering feasibility) against the
//!     cross-domain target map (or the host with --host-only). Exits
//!     non-zero on errors, or on warnings under --deny-warnings.
//!     `--format json` emits one JSON array instead of caret renderings.
//! pmc analyze <file.pm> [--size ...] [--host-only] [--deny-warnings] [--format json]
//!     Run the pm-analyze static verifiers: abstract interpretation over
//!     the srDFG (shape/dtype re-inference, interval bounds proofs,
//!     initialization analysis) plus static hazard analysis of the
//!     compiled SoC schedule (missing DMA marshalling, WAR/WAW hazards
//!     on state buffers, cross-target deadlock). Exits non-zero on
//!     errors, or on warnings under --deny-warnings. `--format json`
//!     emits one JSON array instead of caret renderings.
//! pmc fmt <file.pm>
//!     Pretty-print the program (canonical formatting) on stdout.
//! pmc ir <file.pm> [--size ...] [--target <name>]
//!     Print the srDFG as a textual listing (nodes, kernels, spaces).
//!     With --target, print the listing *after* lowering for that
//!     accelerator instead (the refined scalar/stage-level IR).
//! pmc lower <file.pm> --target <name> [--size ...]
//!     Lower for one accelerator (TABLA | DECO | Graphicionado | RoboX |
//!     TVM-VTA | DnnWeaver | HyperStreams) and print the operation census
//!     before and after — the paper's granularity-refinement trajectory.
//! pmc run <file.pm> <feeds.txt> [--size ...] [--iters N]
//!         [--chaos-seed N] [--chaos-profile off|transient|hostile]
//!         [--max-retries K] [--format json]
//!     Compile cross-domain, execute the lowered program on the given
//!     feeds, and print the outputs. `feeds.txt` holds one tensor per
//!     line: `name dim dim ... = v v v ...` (no dims = scalar); prefix a
//!     line with `state ` to seed a persistent state variable. With
//!     `--iters`, invokes repeatedly so `state` evolves. The chaos flags
//!     run the trajectory through the resilient SoC runtime with
//!     deterministic fault injection (retry/backoff, checkpoint/replay,
//!     host-fallback re-lowering on persistent outages); `--chaos-seed`
//!     alone implies the transient profile, and `--chaos-profile off`
//!     output is byte-identical to a run without chaos flags. With
//!     `--format json` the chaos run prints a single JSON report
//!     (profile, fault/retry counters, fallbacks, partitions, outputs).
//! pmc serve [--addr host:port] [--shards N] [--workers N] [--queue N]
//!           [--batch N] [--host-only]
//!     Long-lived compile-and-run service. Admits line-delimited JSON
//!     requests (PMLang program + feeds + chaos config) over stdin/stdout
//!     (default) or TCP (`--addr`), compiles each through a
//!     content-addressed program cache (repeat submissions skip lowering
//!     and Algorithm 2 entirely), and executes on a sharded pool of
//!     simulated SoCs with per-tenant shard affinity. A full admission
//!     queue rejects with a typed `overloaded` error. The `stats` op
//!     reports cache hit rates and pool-level execution counters; the
//!     `shutdown` op drains and exits. See `polymath::serve` for the
//!     full wire protocol.
//! pmc soak [--seed N] [--profile off|transient|hostile] [--requests N]
//!          [--tenants N] [--host-only] [--format json]
//!     Deterministic chaos soak of the serving layer: drive a live serve
//!     stack through a seed-derived multi-tenant workload (per-request
//!     chaos, deadline/fuel jitter, poison programs that panic a worker,
//!     admission storms), assert the resilience invariants (no worker
//!     death, every response typed, breaker convergence, quarantine
//!     stops repeat poisons), and run the whole workload twice to prove
//!     the transcript is byte-identical at the same seed. Exits non-zero
//!     on the first violated invariant. `--format json` prints the soak
//!     report as one JSON object (consumed by the benchmark harness).
//! pmc fuzz [--seed N] [--cases N] [--smoke] [--minimize] [--corpus DIR]
//!          [--chaos-profile P] [--chaos-seed N] [--wire]
//!     Differentially fuzz the whole stack: generate seeded random PMLang
//!     programs and run each through every route (interpreter at opt
//!     levels 0/1/2 with and without fusion, lowered + partitioned
//!     host-only and cross-domain), cross-checking outputs against the
//!     generator's model evaluator. `--smoke` is the fixed CI
//!     configuration (seed 0xC0FFEE). `--minimize` shrinks the first
//!     failure with delta debugging; `--corpus DIR` additionally writes
//!     the minimized reproducer as a self-contained `.pm` file there
//!     (replayed forever after by the regression suite). `--chaos-profile`
//!     adds the chaos route: every case also executes under fault
//!     injection and must match the oracle (or fail with a structured,
//!     minimizable diagnostic — never a panic). `--wire` switches to the
//!     serve@wire route instead: seeded byte mutations of valid request
//!     lines are fed to a live serve engine, and every one must yield a
//!     typed response — never a panic, never malformed output.
//! ```

use polymath::{standard_soc, Compiler};
use srdfg::Bindings;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pmc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    if cmd == "fuzz" {
        // `fuzz` takes no source file; everything after the command is flags.
        return fuzz_cmd(&args[1..]);
    }
    if cmd == "serve" {
        // `serve` takes no source file either; programs arrive over the wire.
        return serve_cmd(&args[1..]);
    }
    if cmd == "soak" {
        // `soak` generates its own workload from the seed.
        return soak_cmd(&args[1..]);
    }
    let Some(path) = args.get(1) else {
        return Err(usage());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let bindings = parse_sizes(&args[2..])?;
    let host_only = args.iter().any(|a| a == "--host-only");

    match cmd.as_str() {
        "check" => {
            pmlang::frontend(&source).map_err(|e| e.to_string())?;
            println!("{path}: OK");
            Ok(())
        }
        "stats" => {
            let compiler = Compiler::host_only();
            let graph = compiler.build_graph(&source, &bindings).map_err(|e| e.to_string())?;
            let stats = pm_passes::stats(&graph);
            println!("graph `{}`", graph.name);
            println!("  nodes:          {}", stats.nodes);
            for (kind, count) in {
                let mut v: Vec<_> = stats.kinds.iter().collect();
                v.sort();
                v
            } {
                println!("    {kind:<12} {count}");
            }
            println!("  scalar ops:     {}", stats.scalar_ops);
            println!("  boundary bytes: {}", stats.boundary_bytes);
            println!("  critical path:  {}", pm_passes::critical_path_len(&graph));
            let domains = pm_passes::domains_used(&graph);
            if !domains.is_empty() {
                let names: Vec<_> = domains.iter().map(|d| d.keyword()).collect();
                println!("  domains:        {}", names.join(", "));
            }
            Ok(())
        }
        "dot" => {
            let compiler = Compiler::host_only();
            let graph = compiler.build_graph(&source, &bindings).map_err(|e| e.to_string())?;
            print!("{}", srdfg::dot::to_dot(&graph));
            Ok(())
        }
        "compile" => {
            let mut compiler =
                if host_only { Compiler::host_only() } else { Compiler::cross_domain() };
            for (component, target) in parse_pins(&args[2..])? {
                compiler = compiler.with_target_override(&component, backend_spec(&target)?);
            }
            let want_timings = args.iter().any(|a| a == "--timings");
            let (compiled, timings) =
                compiler.compile_timed(&source, &bindings).map_err(|e| e.to_string())?;
            if want_timings && parse_format(args)? == "json" {
                println!("{}", timings_json(&timings));
                return Ok(());
            }
            let soc = standard_soc();
            let report = soc.run(&compiled, &HashMap::new()).map_err(|e| e.to_string())?;
            println!("{path}: {} partition(s)", compiled.partitions.len());
            for (part, pr) in compiled.partitions.iter().zip(&report.partitions) {
                let domain =
                    part.domain.map(|d| d.keyword().to_string()).unwrap_or_else(|| "host".into());
                println!(
                    "  [{domain:>4}] {:<14} {:>6} fragments  {:>12} ops  {:>10.3e} s  {:>10.3e} J",
                    pr.target,
                    part.fragments.len(),
                    part.compute_ops(),
                    pr.compute.seconds + pr.dma.seconds,
                    pr.compute.energy_j + pr.dma.energy_j,
                );
            }
            println!(
                "  total: {:.3e} s, {:.3e} J per invocation ({:.1}% communication)",
                report.total.seconds,
                report.total.energy_j,
                report.comm_fraction * 100.0
            );
            if args.iter().any(|a| a == "--fragments") {
                for part in &compiled.partitions {
                    println!("\npartition {} ({} fragments):", part.target, part.fragments.len());
                    print_fragments(part);
                }
            }
            if want_timings {
                print_timings(&timings);
            }
            Ok(())
        }
        "lint" => {
            let (program, _) = pmlang::frontend(&source).map_err(|e| e.to_string())?;
            // No optimization passes: lints should see the graph exactly as
            // the source wrote it, with every span intact.
            let graph = srdfg::build(&program, &bindings).map_err(|e| e.to_string())?;
            let compiler = if host_only { Compiler::host_only() } else { Compiler::cross_domain() };
            let cx = pm_lint::LintContext {
                program: &program,
                graph: &graph,
                targets: compiler.targets(),
            };
            let diags = pm_lint::LintRegistry::standard().run(&cx);
            if parse_format(args)? == "json" {
                println!("{}", pm_lint::render_json(&diags));
            } else {
                print!("{}", pm_lint::render_text(&diags, &source, path));
            }
            let errors = diags.iter().filter(|d| d.severity == pm_lint::Severity::Error).count();
            let warnings =
                diags.iter().filter(|d| d.severity == pm_lint::Severity::Warning).count();
            let deny = args.iter().any(|a| a == "--deny-warnings");
            if errors > 0 {
                return Err(format!("lint found {errors} error(s)"));
            }
            if deny && warnings > 0 {
                return Err(format!("lint found {warnings} warning(s) (--deny-warnings)"));
            }
            Ok(())
        }
        "analyze" => {
            let (program, _) = pmlang::frontend(&source).map_err(|e| e.to_string())?;
            // Abstract interpretation runs on the un-optimized graph so
            // every finding still carries a span into the source.
            let graph = srdfg::build(&program, &bindings).map_err(|e| e.to_string())?;
            let mut findings = pm_analyze::analyze_graph(&graph);
            let compiler = if host_only { Compiler::host_only() } else { Compiler::cross_domain() };
            // Hazard analysis needs the real compiled fragment plan; if the
            // pipeline fails downstream, the graph findings still render.
            match compiler.compile(&source, &bindings) {
                Ok(compiled) => {
                    findings.extend(pm_analyze::analyze_schedule(&compiled, compiler.targets()));
                }
                Err(e) => eprintln!("pmc: analyze: schedule hazard analysis skipped: {e}"),
            }
            let findings = pm_analyze::finish(findings);
            let diags: Vec<_> = findings.iter().map(pm_lint::diagnostic_from_finding).collect();
            if parse_format(args)? == "json" {
                println!("{}", pm_lint::render_json(&diags));
            } else {
                print!("{}", pm_lint::render_text(&diags, &source, path));
            }
            let errors = diags.iter().filter(|d| d.severity == pm_lint::Severity::Error).count();
            let warnings =
                diags.iter().filter(|d| d.severity == pm_lint::Severity::Warning).count();
            if errors > 0 {
                return Err(format!("analyze found {errors} error(s)"));
            }
            if args.iter().any(|a| a == "--deny-warnings") && warnings > 0 {
                return Err(format!("analyze found {warnings} warning(s) (--deny-warnings)"));
            }
            Ok(())
        }
        "fmt" => {
            let (program, _) = pmlang::frontend(&source).map_err(|e| e.to_string())?;
            print!("{}", pmlang::print_program(&program));
            Ok(())
        }
        "ir" => {
            let compiler = Compiler::host_only();
            let mut graph = compiler.build_graph(&source, &bindings).map_err(|e| e.to_string())?;
            if let Some(pos) = args.iter().position(|a| a == "--target") {
                let name =
                    args.get(pos + 1).ok_or_else(|| "--target expects a name".to_string())?;
                lower_for(&mut graph, name)?;
            }
            print!("{}", srdfg::dot::to_text(&graph));
            Ok(())
        }
        "lower" => {
            let target = args
                .iter()
                .position(|a| a == "--target")
                .and_then(|p| args.get(p + 1))
                .ok_or_else(|| "lower expects --target <name>".to_string())?;
            let compiler = Compiler::host_only();
            let mut graph = compiler.build_graph(&source, &bindings).map_err(|e| e.to_string())?;
            println!("before lowering:");
            print_census(&graph);
            lower_for(&mut graph, target)?;
            println!("after lowering for {target}:");
            print_census(&graph);
            Ok(())
        }
        "run" => {
            let feeds_path = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "run expects a feeds file".to_string())?;
            let (feeds, state) = parse_feeds(feeds_path)?;
            let iters = parse_iters(&args[3..])?;
            let chaos = parse_chaos(&args[3..])?;
            let compiler = Compiler::cross_domain();
            let compiled = compiler.compile(&source, &bindings).map_err(|e| e.to_string())?;
            let format = parse_format(args)?;

            // The fault-free text path stays the plain interpreter loop —
            // byte-identical with and without `--chaos-profile off`.
            let chaos_off = match &chaos {
                None => true,
                Some(c) => c.profile == pm_accel::ChaosProfile::Off,
            };
            if format == "text" && chaos_off {
                let mut machine = srdfg::Machine::new((*compiled.graph).clone());
                for (name, tensor) in state {
                    machine.set_state(&name, tensor);
                }
                let mut outputs = std::collections::HashMap::new();
                for _ in 0..iters {
                    outputs = machine.invoke(&feeds).map_err(|e| e.to_string())?;
                }
                print_outputs(&outputs);
                return Ok(());
            }

            let chaos = chaos.unwrap_or_default();
            let cfg = pm_accel::ChaosConfig::new(chaos.seed, chaos.profile)
                .with_max_retries(chaos.max_retries);
            let soc = standard_soc();
            let inputs = pm_accel::TrajectoryInputs {
                feeds: &feeds,
                state_seeds: &state,
                invocations: iters,
            };
            let outcome = soc
                .run_trajectory(&compiled, &HashMap::new(), &cfg, Some(compiler.targets()), &inputs)
                .map_err(|e| e.to_string())?;
            if format == "json" {
                println!("{}", chaos_json(&chaos, &outcome));
                return Ok(());
            }
            print_outputs(&outcome.outputs);
            println!(
                "chaos: profile {}, seed {:#x}, max {} retries/fragment",
                chaos.profile, chaos.seed, chaos.max_retries
            );
            println!(
                "  invocations: {} ({} replayed), faults: {}, retries: {}, \
                 dma retried: {} bytes, virtual time: {} ns",
                outcome.invocations,
                outcome.replayed_invocations,
                outcome.faults_injected,
                outcome.retries,
                outcome.retried_dma_bytes,
                outcome.virtual_ns
            );
            for fb in &outcome.fallbacks {
                println!("  fallback: {} -> host ({})", fb.target, fb.fault);
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// The `pmc fuzz` subcommand: a whole differential-fuzzing campaign.
///
/// The undocumented `PMC_FUZZ_MISCOMPILE` environment variable arms the
/// sentinel miscompilation (a deliberate `add`→`sub` flip applied after
/// optimization) so CI can prove the harness actually detects bugs.
fn fuzz_cmd(args: &[String]) -> Result<(), String> {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| -> Result<Option<u64>, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(pos) => {
                let v = args.get(pos + 1).ok_or_else(|| format!("{name} expects a number"))?;
                parse_u64(v).map(Some).map_err(|_| format!("bad {name} value `{v}`"))
            }
        }
    };
    let seed = flag_value("--seed")?.unwrap_or(if smoke { 0xC0FFEE } else { 0 });
    let cases = flag_value("--cases")?.unwrap_or(if smoke { 10_000 } else { 1000 }) as usize;
    if args.iter().any(|a| a == "--wire") {
        return wire_fuzz_cmd(seed, cases);
    }
    let chaos = match args.iter().position(|a| a == "--chaos-profile") {
        None => None,
        Some(pos) => {
            let v =
                args.get(pos + 1).ok_or_else(|| "--chaos-profile expects a value".to_string())?;
            let profile: pm_accel::ChaosProfile = v.parse()?;
            (profile != pm_accel::ChaosProfile::Off).then_some(profile)
        }
    };
    let chaos_seed = flag_value("--chaos-seed")?.unwrap_or(0);
    let minimize = args.iter().any(|a| a == "--minimize") || smoke;
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .map(|pos| {
            args.get(pos + 1)
                .map(std::path::PathBuf::from)
                .ok_or_else(|| "--corpus expects a directory".to_string())
        })
        .transpose()?;
    let sabotage = std::env::var_os("PMC_FUZZ_MISCOMPILE").is_some_and(|v| v != "0");

    let cfg = pm_fuzz::FuzzConfig {
        seed,
        cases,
        diff: pm_fuzz::DiffConfig { sabotage, chaos, chaos_seed, ..Default::default() },
        minimize,
        corpus_dir,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let report = pm_fuzz::run_fuzz_with_progress(&cfg, &mut |done, unstable| {
        if done % 1000 == 0 {
            eprintln!("pmc fuzz: {done}/{cases} cases ({unstable} unstable)");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    match report.failure {
        None => {
            println!(
                "fuzz: {} case(s) passed, {} unstable (seed {seed:#x}, {elapsed:.1}s)",
                report.passed, report.unstable
            );
            Ok(())
        }
        Some(f) => {
            eprintln!("fuzz: FAILURE at case {} (seed {seed:#x})", f.case);
            eprintln!("  route:  {}", f.failure.route);
            eprintln!("  detail: {}", f.failure.detail);
            if minimize {
                eprintln!(
                    "  minimized {} -> {} statement(s) in {} attempt(s)",
                    f.original_stmts,
                    f.program.stmt_count(),
                    f.shrink_attempts
                );
            }
            eprintln!("  inputs: x = {:?}", f.xs);
            eprintln!("          y = {:?}", f.ys);
            if f.program.has_state() {
                eprintln!("          z = {:?}", f.z0);
            }
            eprintln!("--- reproducer ---");
            eprint!("{}", f.program.to_pmlang());
            eprintln!("------------------");
            if let Some(path) = &f.reproducer {
                eprintln!("  reproducer written to {}", path.display());
            }
            Err(format!("differential mismatch after {} case(s) ({elapsed:.1}s)", report.executed))
        }
    }
}

/// The `pmc fuzz --wire` route: seeded byte-mutation fuzzing of the
/// serve wire protocol. Every mutated line must yield a typed response
/// from a live engine — never a panic, never malformed output.
fn wire_fuzz_cmd(seed: u64, cases: usize) -> Result<(), String> {
    let engine = polymath::ServeEngine::new(&polymath::ServeConfig {
        host_only: true,
        ..Default::default()
    });
    let corpus = polymath::serve::wire_corpus();
    let cfg = pm_fuzz::WireFuzzConfig { seed, cases };
    let start = std::time::Instant::now();
    // The checker panics are an expected campaign event (that is what the
    // oracle is hunting); keep the default hook from spamming stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let report = pm_fuzz::run_wire_fuzz(
        &cfg,
        &corpus,
        |line| polymath::Request::parse(line).is_err(),
        |line| polymath::serve::check_wire_line(&engine, line),
    );
    let _ = std::panic::take_hook();
    let elapsed = start.elapsed().as_secs_f64();
    match report.failure {
        None => {
            println!(
                "fuzz: serve@wire: {} mutated line(s) all yielded typed responses \
                 ({} no longer parseable; seed {seed:#x}, {elapsed:.1}s)",
                report.executed, report.mangled
            );
            Ok(())
        }
        Some(f) => {
            eprintln!("fuzz: serve@wire: FAILURE at case {} (seed {seed:#x})", f.case);
            eprintln!("  detail: {}", f.detail);
            eprintln!("--- mutated line ---");
            eprintln!("{}", f.line);
            eprintln!("--------------------");
            Err(format!("wire hardening violation after {} case(s)", report.executed))
        }
    }
}

/// The `pmc soak` subcommand: the deterministic chaos soak harness.
/// Drives a live serve stack through a seed-derived multi-tenant
/// workload (chaos, deadline jitter, poison programs, admission storms),
/// asserts the resilience invariants, and replays the whole run to prove
/// byte-identical determinism. See `polymath::soak`.
fn soak_cmd(args: &[String]) -> Result<(), String> {
    let flag_value = |name: &str| -> Result<Option<u64>, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(pos) => {
                let v = args.get(pos + 1).ok_or_else(|| format!("{name} expects a number"))?;
                match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                }
                .map(Some)
                .map_err(|_| format!("bad {name} value `{v}`"))
            }
        }
    };
    let defaults = polymath::SoakConfig::default();
    let mut cfg = polymath::SoakConfig {
        seed: flag_value("--seed")?.unwrap_or(defaults.seed),
        requests: flag_value("--requests")?.unwrap_or(defaults.requests as u64) as usize,
        tenants: flag_value("--tenants")?.unwrap_or(defaults.tenants as u64) as usize,
        host_only: args.iter().any(|a| a == "--host-only"),
        ..defaults
    };
    if let Some(pos) = args.iter().position(|a| a == "--profile") {
        let p = args.get(pos + 1).ok_or_else(|| "--profile expects a value".to_string())?;
        cfg.profile = p.parse()?;
    }
    let json = matches!(
        args.iter().position(|a| a == "--format").and_then(|p| args.get(p + 1)),
        Some(f) if f == "json"
    );
    // Worker panics are an expected part of the soak (poison programs);
    // silence the default hook so the report is the only output.
    std::panic::set_hook(Box::new(|_| {}));
    let result = polymath::run_soak(&cfg);
    let _ = std::panic::take_hook();
    let report = result?;
    if json {
        println!("{}", report.to_json().render());
    } else {
        println!(
            "soak: {} responses over {} tenant(s), seed {:#x}, profile {}",
            report.responses, report.tenants, report.seed, report.profile
        );
        for (kind, n) in &report.kinds {
            println!("  {kind:>18}  {n}");
        }
        println!(
            "  worker panics contained: {} (quarantined {} source(s), {} graph(s))",
            report.worker_panics, report.quarantined_sources, report.quarantined_graphs
        );
        println!(
            "  breakers: {} trip(s), {} request(s) steered to host fallback",
            report.breaker_trips, report.breaker_steered
        );
        println!("  replay: byte-identical");
    }
    Ok(())
}

/// The `pmc serve` subcommand: a long-lived compile-and-run service
/// speaking line-delimited JSON over stdin/stdout (default) or TCP
/// (`--addr host:port`). See `polymath::serve` for the wire protocol.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let flag_value = |name: &str| -> Result<Option<u64>, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(pos) => {
                let v = args.get(pos + 1).ok_or_else(|| format!("{name} expects a number"))?;
                v.parse().map(Some).map_err(|_| format!("bad {name} value `{v}`"))
            }
        }
    };
    let defaults = polymath::ServeConfig::default();
    let cfg = polymath::ServeConfig {
        shards: flag_value("--shards")?.unwrap_or(defaults.shards as u64) as usize,
        workers: flag_value("--workers")?.unwrap_or(defaults.workers as u64) as usize,
        queue_depth: flag_value("--queue")?.unwrap_or(defaults.queue_depth as u64) as usize,
        batch: flag_value("--batch")?.unwrap_or(defaults.batch as u64) as usize,
        host_only: args.iter().any(|a| a == "--host-only"),
        max_inflight_cost: flag_value("--max-inflight-cost")?.unwrap_or(defaults.max_inflight_cost),
        poison_marker: None,
    };
    match args.iter().position(|a| a == "--addr") {
        Some(pos) => {
            let addr = args.get(pos + 1).ok_or_else(|| "--addr expects host:port".to_string())?;
            polymath::serve_tcp(&cfg, addr)
        }
        None => polymath::serve_stdio(&cfg),
    }
}

/// Parses a feeds file: one tensor per line, `name dims... = values...`,
/// with `state `-prefixed lines seeding persistent state. Returns
/// `(feeds, state_seeds)`.
type Feeds = std::collections::HashMap<String, srdfg::Tensor>;

fn parse_feeds(path: &str) -> Result<(Feeds, Vec<(String, srdfg::Tensor)>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut feeds = Feeds::new();
    let mut state = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let is_state = if let Some(rest) = line.strip_prefix("state ") {
            line = rest.trim_start();
            true
        } else {
            false
        };
        let (head, values) = line
            .split_once('=')
            .ok_or_else(|| format!("{path}:{}: expected `name dims = values`", lineno + 1))?;
        let mut head_parts = head.split_whitespace();
        let name = head_parts
            .next()
            .ok_or_else(|| format!("{path}:{}: missing tensor name", lineno + 1))?;
        let shape: Vec<usize> = head_parts
            .map(|d| d.parse().map_err(|_| format!("{path}:{}: bad dim `{d}`", lineno + 1)))
            .collect::<Result<_, _>>()?;
        let data: Vec<f64> = values
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| format!("{path}:{}: bad value `{v}`", lineno + 1)))
            .collect::<Result<_, _>>()?;
        let tensor = srdfg::Tensor::from_vec(pmlang::DType::Float, shape, data)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if is_state {
            state.push((name.to_string(), tensor));
        } else {
            feeds.insert(name.to_string(), tensor);
        }
    }
    Ok((feeds, state))
}

fn parse_iters(args: &[String]) -> Result<u64, String> {
    if let Some(pos) = args.iter().position(|a| a == "--iters") {
        args.get(pos + 1)
            .ok_or_else(|| "--iters expects a count".to_string())?
            .parse()
            .map_err(|_| "bad --iters value".to_string())
    } else {
        Ok(1)
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal u64.
fn parse_u64(v: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    }
}

/// The `run` subcommand's chaos flags.
struct ChaosFlags {
    seed: u64,
    profile: pm_accel::ChaosProfile,
    max_retries: u32,
}

impl Default for ChaosFlags {
    fn default() -> Self {
        ChaosFlags { seed: 0, profile: pm_accel::ChaosProfile::Off, max_retries: 3 }
    }
}

/// Parses `--chaos-seed N`, `--chaos-profile {off|transient|hostile}` and
/// `--max-retries K`. Returns `None` when no chaos flag is present.
/// `--chaos-seed` without an explicit profile implies `transient`, so the
/// short form alone turns fault injection on.
fn parse_chaos(args: &[String]) -> Result<Option<ChaosFlags>, String> {
    let value_of = |name: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(pos) => {
                args.get(pos + 1).map(Some).ok_or_else(|| format!("{name} expects a value"))
            }
        }
    };
    let seed = value_of("--chaos-seed")?;
    let profile = value_of("--chaos-profile")?;
    let retries = value_of("--max-retries")?;
    if seed.is_none() && profile.is_none() && retries.is_none() {
        return Ok(None);
    }
    let mut flags = ChaosFlags::default();
    if let Some(v) = seed {
        flags.seed = parse_u64(v).map_err(|_| format!("bad --chaos-seed value `{v}`"))?;
    }
    match profile {
        Some(v) => flags.profile = v.parse()?,
        None if seed.is_some() => flags.profile = pm_accel::ChaosProfile::Transient,
        None => {}
    }
    if let Some(v) = retries {
        flags.max_retries = v.parse().map_err(|_| format!("bad --max-retries value `{v}`"))?;
    }
    Ok(Some(flags))
}

/// Prints the outputs of a run, sorted by name (the `pmc run` contract).
fn print_outputs(outputs: &std::collections::HashMap<String, srdfg::Tensor>) {
    let mut names: Vec<_> = outputs.keys().collect();
    names.sort();
    for name in names {
        println!("{name} = {}", outputs[name]);
    }
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `run --format json` rendering of a chaos trajectory (single line,
/// mirroring `--timings --format json`).
fn chaos_json(flags: &ChaosFlags, outcome: &pm_accel::TrajectoryOutcome) -> String {
    let num = |v: f64| if v.is_finite() { format!("{v}") } else { "null".to_string() };
    let fallbacks: Vec<String> = outcome
        .fallbacks
        .iter()
        .map(|f| {
            format!(
                "{{\"target\":{},\"fault\":{},\"fragment\":{},\"op\":{},\"attempts\":{}}}",
                json_str(&f.target),
                json_str(&f.fault.to_string()),
                f.fragment,
                json_str(&f.op),
                f.attempts
            )
        })
        .collect();
    let partitions: Vec<String> = outcome
        .last
        .partitions
        .iter()
        .map(|p| {
            let domain = p.domain.map(|d| d.keyword().to_string()).unwrap_or_else(|| "host".into());
            format!(
                "{{\"target\":{},\"domain\":{},\"attempts\":{},\"retries\":{},\"faults\":{},\
                 \"retried_dma_bytes\":{},\"virtual_ns\":{}}}",
                json_str(&p.target),
                json_str(&domain),
                p.attempts,
                p.retries,
                p.faults_seen,
                p.retried_dma_bytes,
                p.virtual_ns
            )
        })
        .collect();
    let mut names: Vec<_> = outcome.outputs.keys().collect();
    names.sort();
    let outputs: Vec<String> = names
        .iter()
        .map(|name| {
            let vals = match outcome.outputs[*name].as_real_slice() {
                Some(s) => format!("[{}]", s.iter().map(|v| num(*v)).collect::<Vec<_>>().join(",")),
                None => "null".to_string(),
            };
            format!("{}:{}", json_str(name), vals)
        })
        .collect();
    format!(
        "{{\"profile\":{},\"seed\":{},\"max_retries\":{},\"invocations\":{},\
         \"replayed_invocations\":{},\"checkpoints\":{},\"faults_injected\":{},\"retries\":{},\
         \"retried_dma_bytes\":{},\"virtual_ns\":{},\"fallbacks\":[{}],\"partitions\":[{}],\
         \"outputs\":{{{}}}}}",
        json_str(&flags.profile.to_string()),
        flags.seed,
        flags.max_retries,
        outcome.invocations,
        outcome.replayed_invocations,
        outcome.checkpoints,
        outcome.faults_injected,
        outcome.retries,
        outcome.retried_dma_bytes,
        outcome.virtual_ns,
        fallbacks.join(","),
        partitions.join(","),
        outputs.join(",")
    )
}

/// Lowers a graph for one named accelerator (host for everything else),
/// then elides interior marshalling — the shared setup of the `lower`
/// and `ir --target` subcommands. Programs without any domain annotation
/// are forced onto the target's domain so single-kernel programs lower.
fn lower_for(graph: &mut srdfg::SrDfg, target: &str) -> Result<(), String> {
    let spec = backend_spec(target)?;
    if graph.domain.is_none() && pm_passes::domains_used(graph).is_empty() {
        graph.domain = Some(spec.domain);
    }
    let mut targets = pm_lower::TargetMap::host_only(pm_lower::AcceleratorSpec::general_purpose(
        "CPU",
        spec.domain,
    ));
    targets.set(spec);
    pm_lower::lower(graph, &targets).map_err(|e| e.to_string())?;
    pm_passes::Pass::run(&pm_passes::ElideMarshalling, graph);
    Ok(())
}

/// Prints a partition's fragment stream, run-length-compressed so the
/// scalar fabrics' long op rows stay readable.
fn print_fragments(part: &pm_lower::AccProgram) {
    let label = |f: &pm_lower::Fragment| match f.kind {
        pm_lower::FragmentKind::Load => format!("load  {}", f.inputs[0].name()),
        pm_lower::FragmentKind::Store => format!("store {}", f.outputs[0].name()),
        pm_lower::FragmentKind::Compute => f.op.to_string(),
    };
    let mut i = 0;
    let frags = &part.fragments;
    let mut shown = 0;
    while i < frags.len() && shown < 40 {
        let head = label(&frags[i]);
        let mut j = i;
        while j < frags.len() && label(&frags[j]) == head {
            j += 1;
        }
        if j - i > 1 {
            println!("  {head:<24} x{}", j - i);
        } else {
            println!("  {head}");
        }
        shown += 1;
        i = j;
    }
    if i < frags.len() {
        println!("  ... {} more fragments", frags.len() - i);
    }
}

/// The operation census of a graph: name → count, sorted by frequency.
fn print_census(graph: &srdfg::SrDfg) {
    let mut census: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    fn walk(g: &srdfg::SrDfg, census: &mut std::collections::HashMap<String, usize>) {
        for (_, node) in g.iter_nodes() {
            *census.entry(node.name.to_string()).or_default() += 1;
            if let srdfg::NodeKind::Component(sub) = &node.kind {
                walk(sub, census);
            }
        }
    }
    walk(graph, &mut census);
    let mut rows: Vec<_> = census.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: usize = rows.iter().map(|r| r.1).sum();
    for (name, count) in rows.iter().take(12) {
        println!("  {name:<14} {count}");
    }
    if rows.len() > 12 {
        println!("  ... {} more kinds", rows.len() - 12);
    }
    println!("  ({total} nodes total)");
}

/// Prints the per-stage / per-pass wall-time account of one compilation.
fn print_timings(t: &polymath::CompileTimings) {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    println!("\ncompile timings:");
    println!("  frontend     {:>10.3} ms", ms(t.frontend));
    println!("  build        {:>10.3} ms", ms(t.build));
    println!("  mid-end      {:>10.3} ms", ms(t.midend));
    for p in &t.passes {
        println!(
            "    {:<24} {:>10.3} ms  {:>6} rewrites",
            p.pass,
            ms(p.duration),
            p.stats.rewrites
        );
    }
    println!("  lower        {:>10.3} ms", ms(t.lower));
    println!(
        "    templates: {} hits / {} misses ({:.1}% hit rate), {} inserts, {} evictions",
        t.cache.hits,
        t.cache.misses,
        t.cache.hit_rate() * 100.0,
        t.cache.inserts,
        t.cache.evictions
    );
    println!("  post-lower   {:>10.3} ms", ms(t.post_lower));
    println!("  compile      {:>10.3} ms", ms(t.compile));
    println!("  analyze      {:>10.3} ms", ms(t.analyze));
    println!("  hazards      {:>10.3} ms", ms(t.hazards));
    println!("  total        {:>10.3} ms", ms(t.total));
}

/// The `--timings --format json` rendering (all durations in seconds).
fn timings_json(t: &polymath::CompileTimings) -> String {
    let s = |d: std::time::Duration| format!("{:.9}", d.as_secs_f64());
    let passes: Vec<String> = t
        .passes
        .iter()
        .map(|p| {
            format!(
                "{{\"pass\":\"{}\",\"seconds\":{},\"rewrites\":{},\"changed\":{}}}",
                p.pass,
                s(p.duration),
                p.stats.rewrites,
                p.stats.changed
            )
        })
        .collect();
    format!(
        "{{\"frontend\":{},\"build\":{},\"midend\":{},\"passes\":[{}],\"lower\":{},\
         \"post_lower\":{},\"compile\":{},\"analyze\":{},\"hazards\":{},\
         \"template_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\
         \"inserts\":{},\"evictions\":{}}},\"total\":{}}}",
        s(t.frontend),
        s(t.build),
        s(t.midend),
        passes.join(","),
        s(t.lower),
        s(t.post_lower),
        s(t.compile),
        s(t.analyze),
        s(t.hazards),
        t.cache.hits,
        t.cache.misses,
        t.cache.hit_rate(),
        t.cache.inserts,
        t.cache.evictions,
        s(t.total)
    )
}

/// Resolves a backend name to its accelerator spec.
fn backend_spec(name: &str) -> Result<pm_lower::AcceleratorSpec, String> {
    use pm_accel::Backend as _;
    Ok(match name.to_ascii_uppercase().as_str() {
        "TABLA" => pm_accel::Tabla::default().accel_spec(),
        "DECO" => pm_accel::Deco::default().accel_spec(),
        "GRAPHICIONADO" => pm_accel::Graphicionado::default().accel_spec(),
        "ROBOX" => pm_accel::Robox::default().accel_spec(),
        "TVM-VTA" | "VTA" => pm_accel::Vta::default().accel_spec(),
        "DNNWEAVER" => pm_accel::DnnWeaver::default().accel_spec(),
        "HYPERSTREAMS" => pm_accel::HyperStreams::default().accel_spec(),
        other => return Err(format!("unknown target `{other}`")),
    })
}

/// Parses repeated `--pin component=TARGET` overrides.
fn parse_pins(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut pins = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--pin" {
            let spec =
                args.get(i + 1).ok_or_else(|| "--pin expects component=TARGET".to_string())?;
            let (component, target) =
                spec.split_once('=').ok_or_else(|| format!("bad --pin `{spec}`"))?;
            if component.is_empty() || target.is_empty() {
                return Err(format!("bad --pin `{spec}`"));
            }
            pins.push((component.to_string(), target.to_string()));
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(pins)
}

fn parse_sizes(args: &[String]) -> Result<Bindings, String> {
    let mut bindings = Bindings::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--size" {
            let spec = args.get(i + 1).ok_or_else(|| "--size expects name=value".to_string())?;
            let (name, value) =
                spec.split_once('=').ok_or_else(|| format!("bad --size `{spec}`"))?;
            let value: i64 = value.parse().map_err(|_| format!("bad --size value `{value}`"))?;
            bindings.sizes.insert(name.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(bindings)
}

/// Parses `--format <text|json>` (defaulting to text).
fn parse_format(args: &[String]) -> Result<&str, String> {
    match args.iter().position(|a| a == "--format") {
        None => Ok("text"),
        Some(pos) => match args.get(pos + 1).map(String::as_str) {
            Some(f @ ("text" | "json")) => Ok(f),
            Some(other) => Err(format!("unknown --format `{other}` (expected text or json)")),
            None => Err("--format expects text or json".to_string()),
        },
    }
}

fn usage() -> String {
    "usage: pmc <check|stats|dot|compile|lint|analyze|run> <file.pm> [feeds.txt] \
[--size name=value ...] [--host-only] [--pin comp=TARGET ...] [--iters N] \
[--deny-warnings] [--timings] [--format json] [--chaos-seed N] \
[--chaos-profile off|transient|hostile] [--max-retries K]\n\
       pmc serve [--addr host:port] [--shards N] [--workers N] [--queue N] [--batch N] \
[--host-only]\n\
       pmc fuzz [--seed N] [--cases N] [--smoke] [--minimize] [--corpus DIR] \
[--chaos-profile P] [--chaos-seed N]"
        .to_string()
}
