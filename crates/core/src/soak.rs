//! `pmc soak` — the deterministic chaos soak harness.
//!
//! The resilience layers in [`crate::serve`] (deadlines, circuit
//! breakers, load shedding, poison quarantine — DESIGN.md §15) are only
//! trustworthy if they hold up under *sustained, adversarial, mixed*
//! traffic — not just the one-shot unit tests. The soak harness drives a
//! live [`ServeServer`] through a seed-derived multi-tenant workload and
//! asserts the service-level invariants:
//!
//! * **no worker death** — poison programs panic inside the isolation
//!   region; the panic count equals exactly the poison programs that
//!   *executed* (repeats are quarantined at admission), and the server
//!   still answers a healthy request after the storm;
//! * **every response is typed** — each transcript line is valid JSON
//!   carrying `ok:true` or a known `error.kind`; nothing is dropped;
//! * **breaker convergence** — any breaker left open or half-open has
//!   actually tripped (state is never invented);
//! * **byte-identical replay** — the whole soak runs twice against fresh
//!   engines, and the two transcripts must match byte for byte. This is
//!   why soak requests set `"timings":false` and use `fuel` (plus the
//!   trivially-deterministic `deadline_ms:0`) for deadline jitter: every
//!   remaining bit of the run is a pure function of the seed.
//!
//! The workload interleaves admission mini-phases (a paused server with a
//! tiny queue for `overloaded`, a tiny in-flight cost limit for
//! `shedding`, a stopped-admission late submission for `shutting_down`)
//! with a lockstep main phase: one worker, one request in flight at a
//! time, so completion order — and therefore the transcript — is
//! deterministic. Chaos profiles, tenants, program variants, feed values,
//! fuel jitter and poison injection are all drawn from a splitmix64
//! stream over the seed.

use crate::json::Json;
use crate::serve::{reject_line, ServeConfig, ServeEngine, ServeError, ServeServer};
use pm_accel::{BreakerConfig, BreakerState, ChaosProfile};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// The marker [`ServeConfig::poison_marker`] is set to during a soak; any
/// generated program containing it panics inside the worker's isolation
/// region.
pub const POISON_MARKER: &str = "@soak-poison";

/// One soak campaign's knobs (`pmc soak` flags map 1:1).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; the entire workload is a pure function of it.
    pub seed: u64,
    /// Chaos profile attached to every main-phase request.
    pub profile: ChaosProfile,
    /// Main-phase request count (the admission mini-phases add a handful
    /// more). Values below 12 are rounded up so the forced poison /
    /// deadline / fuel cases always exist.
    pub requests: usize,
    /// Distinct tenant names to spread requests across.
    pub tenants: usize,
    /// Compile host-only instead of cross-domain.
    pub host_only: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 0x50AC,
            profile: ChaosProfile::Hostile,
            requests: 200,
            tenants: 3,
            host_only: false,
        }
    }
}

/// What a completed soak proved, as consumed by `pmc soak --format json`
/// and the benchmark harness.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The seed the workload derived from.
    pub seed: u64,
    /// The chaos profile used.
    pub profile: ChaosProfile,
    /// Transcript lines produced (admitted responses + typed rejections).
    pub responses: usize,
    /// Tenants the workload spread across.
    pub tenants: usize,
    /// Response count per wire kind (`ok`, `deadline_exceeded`, …).
    pub kinds: BTreeMap<String, u64>,
    /// Panics caught by the isolation region — must equal the poison
    /// programs that reached a worker.
    pub worker_panics: u64,
    /// Quarantined source hashes at the end of the run.
    pub quarantined_sources: usize,
    /// Quarantined graph fingerprints at the end of the run.
    pub quarantined_graphs: usize,
    /// Breaker trips summed across every shard.
    pub breaker_trips: u64,
    /// Requests steered away from open breakers, summed across shards.
    pub breaker_steered: u64,
    /// Whether the second pass reproduced the first byte for byte.
    pub replay_identical: bool,
}

impl SoakReport {
    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Num(self.seed as f64)),
            ("profile".into(), Json::Str(self.profile.to_string())),
            ("responses".into(), Json::Num(self.responses as f64)),
            ("tenants".into(), Json::Num(self.tenants as f64)),
            (
                "kinds".into(),
                Json::Obj(
                    self.kinds.iter().map(|(k, n)| (k.clone(), Json::Num(*n as f64))).collect(),
                ),
            ),
            ("worker_panics".into(), Json::Num(self.worker_panics as f64)),
            ("quarantined_sources".into(), Json::Num(self.quarantined_sources as f64)),
            ("quarantined_graphs".into(), Json::Num(self.quarantined_graphs as f64)),
            ("breaker_trips".into(), Json::Num(self.breaker_trips as f64)),
            ("breaker_steered".into(), Json::Num(self.breaker_steered as f64)),
            ("replay_identical".into(), Json::Bool(self.replay_identical)),
        ])
    }
}

/// The splitmix64 stream the workload is drawn from.
struct SoakRng(u64);

impl SoakRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Single-line program variants (single-line so the JSON escaping path
/// stays boring). All take `x[4]` and produce scalar `y`, so one feed
/// shape serves every variant while still exercising distinct
/// program-cache entries. The domain annotations spread the workload
/// across TABLA, DECO, RoboX and the host, so hostile chaos actually
/// faults accelerator dispatches and the breaker path gets traffic.
const VARIANTS: &[&str] = &[
    "f(input float x[4], output float y) { index i[0:3]; y = sum[i](x[i]*x[i]); } \
     main(input float x[4], output float y) { DA: f(x, y); }",
    "f(input float x[4], output float y) { index i[0:3]; y = sum[i](x[i]*x[i] + x[i]); } \
     main(input float x[4], output float y) { DSP: f(x, y); }",
    "f(input float x[4], output float y) { index i[0:3]; y = sum[i](x[i] * 2); } \
     main(input float x[4], output float y) { RBT: f(x, y); }",
    "main(input float x[4], output float y) { index i[0:3]; y = sum[i](x[i]); }",
];

/// The fixed poison source: repeats must hash identically so the second
/// submission is rejected at admission, not re-executed.
const POISON_PROGRAM: &str = "@soak-poison main() {}";

/// One generated main-phase request.
struct SoakRequest {
    line: String,
    poison: bool,
}

/// Everything that varies between generated run requests.
struct RunSpec<'a> {
    id: &'a str,
    tenant: &'a str,
    program: &'a str,
    feeds: &'a [f64],
    invocations: u64,
    profile: ChaosProfile,
    chaos_seed: u64,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
}

fn run_request_line(spec: &RunSpec) -> String {
    let &RunSpec {
        id,
        tenant,
        program,
        feeds,
        invocations,
        profile,
        chaos_seed,
        deadline_ms,
        fuel,
    } = spec;
    let mut fields = vec![
        ("op".into(), Json::Str("run".into())),
        ("id".into(), Json::Str(id.into())),
        ("tenant".into(), Json::Str(tenant.into())),
        ("program".into(), Json::Str(program.into())),
        (
            "feeds".into(),
            Json::Obj(vec![(
                "x".into(),
                Json::Obj(vec![
                    ("dims".into(), Json::Arr(vec![Json::Num(4.0)])),
                    ("values".into(), Json::Arr(feeds.iter().map(|&v| Json::Num(v)).collect())),
                ]),
            )]),
        ),
        ("invocations".into(), Json::Num(invocations as f64)),
        ("timings".into(), Json::Bool(false)),
    ];
    if profile != ChaosProfile::Off {
        fields.push((
            "chaos".into(),
            Json::Obj(vec![
                ("profile".into(), Json::Str(profile.to_string())),
                ("seed".into(), Json::Num((chaos_seed % (1 << 32)) as f64)),
            ]),
        ));
    }
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms".into(), Json::Num(d as f64)));
    }
    if let Some(f) = fuel {
        fields.push(("fuel".into(), Json::Num(f as f64)));
    }
    Json::Obj(fields).render()
}

/// Generates the main-phase workload for a seed. Requests 3 and 7 are
/// always the (identical) poison program — the first panics a worker,
/// the second proves admission-level quarantine; request 5 always
/// carries an already-expired deadline; request 9 always carries starving
/// fuel. Everything else is drawn from the seed stream.
fn generate(cfg: &SoakConfig) -> Vec<SoakRequest> {
    let mut rng = SoakRng(cfg.seed);
    let n = cfg.requests.max(12);
    let tenants = cfg.tenants.max(1);
    (0..n)
        .map(|i| {
            let draw = rng.next();
            let tenant = format!("t{}", draw % tenants as u64);
            let id = format!("r{i:04}");
            let poison = i == 3 || i == 7 || draw.is_multiple_of(29);
            if poison {
                // Poison lines skip feeds/chaos: the marker panics before
                // the program is even parsed.
                let line = Json::Obj(vec![
                    ("op".into(), Json::Str("run".into())),
                    ("id".into(), Json::Str(id)),
                    ("tenant".into(), Json::Str(tenant)),
                    ("program".into(), Json::Str(POISON_PROGRAM.into())),
                    ("timings".into(), Json::Bool(false)),
                ])
                .render();
                return SoakRequest { line, poison: true };
            }
            let program = VARIANTS[(draw >> 8) as usize % VARIANTS.len()];
            let feeds: Vec<f64> =
                (0..4).map(|k| ((draw >> (16 + 4 * k)) & 0xF) as f64 - 7.0).collect();
            let invocations = 1 + (draw >> 40) % 3;
            // Deterministic deadline jitter: an already-expired wall-clock
            // deadline (request 5 and a thin seeded stream) or a starving
            // fuel budget (request 9 and another stream). Fuel exhaustion
            // is bit-for-bit reproducible; `deadline_ms:0` is the one
            // wall-clock deadline whose outcome does not depend on timing.
            let deadline_ms = (i == 5 || draw.is_multiple_of(31)).then_some(0);
            let fuel = (deadline_ms.is_none() && (i == 9 || draw.is_multiple_of(23)))
                .then_some(1 + (draw >> 48) % 8);
            let line = run_request_line(&RunSpec {
                id: &id,
                tenant: &tenant,
                program,
                feeds: &feeds,
                invocations,
                profile: cfg.profile,
                chaos_seed: draw,
                deadline_ms,
                fuel,
            });
            SoakRequest { line, poison: false }
        })
        .collect()
}

/// A healthy host-path request used by the admission mini-phases and the
/// final worker-liveness probe.
fn healthy_line(id: &str) -> String {
    run_request_line(&RunSpec {
        id,
        tenant: "adm",
        program: VARIANTS[0],
        feeds: &[1.0, 2.0, 3.0, 4.0],
        invocations: 1,
        profile: ChaosProfile::Off,
        chaos_seed: 0,
        deadline_ms: None,
        fuel: None,
    })
}

struct PassOutcome {
    transcript: Vec<String>,
    worker_panics: u64,
    quarantined: (usize, usize),
    breaker_trips: u64,
    breaker_steered: u64,
    poison_executed: u64,
    poison_total: u64,
}

fn recv_response(rx: &mpsc::Receiver<String>) -> Result<String, String> {
    rx.recv_timeout(Duration::from_secs(120))
        .map_err(|_| "soak: worker did not respond within 120 s (worker death?)".to_string())
}

/// Admission mini-phases: deterministic `overloaded`, `shedding`, and
/// `shutting_down` rejections against paused servers sharing the soak
/// engine.
fn admission_phase(engine: &Arc<ServeEngine>, transcript: &mut Vec<String>) -> Result<(), String> {
    // Overload: a depth-2 paused queue rejects the third submission.
    let cfg = ServeConfig { workers: 1, queue_depth: 2, ..ServeConfig::default() };
    let mut server = ServeServer::paused(Arc::clone(engine), &cfg);
    let (tx, rx) = mpsc::channel();
    for id in ["adm-0", "adm-1"] {
        server
            .submit(healthy_line(id), tx.clone())
            .map_err(|e| format!("soak: admission phase: unexpected rejection: {e}"))?;
    }
    let over = healthy_line("adm-2");
    match server.submit(over.clone(), tx.clone()) {
        Err(e @ ServeError::Overloaded { .. }) => transcript.push(reject_line(&over, &e)),
        other => return Err(format!("soak: expected overloaded, got {other:?}")),
    }
    server.resume();
    for _ in 0..2 {
        transcript.push(recv_response(&rx)?);
    }
    // Graceful drain: stopped admission rejects late work with a typed
    // `shutting_down` while (already drained) admitted work completed.
    server.stop_admitting();
    let late = healthy_line("adm-3");
    match server.submit(late.clone(), tx.clone()) {
        Err(e @ ServeError::ShuttingDown) => transcript.push(reject_line(&late, &e)),
        other => return Err(format!("soak: expected shutting_down, got {other:?}")),
    }
    server.shutdown();

    // Shedding: an in-flight cost limit of one byte sheds any submission.
    let cfg = ServeConfig { workers: 1, max_inflight_cost: 1, ..ServeConfig::default() };
    let server = ServeServer::paused(Arc::clone(engine), &cfg);
    let (tx, _rx) = mpsc::channel();
    let shed = healthy_line("adm-4");
    match server.submit(shed.clone(), tx) {
        Err(e @ ServeError::Shedding { .. }) => transcript.push(reject_line(&shed, &e)),
        other => return Err(format!("soak: expected shedding, got {other:?}")),
    }
    server.shutdown();
    Ok(())
}

/// One full pass of the workload against a fresh engine.
fn run_pass(cfg: &SoakConfig, script: &[SoakRequest]) -> Result<PassOutcome, String> {
    let serve_cfg = ServeConfig {
        shards: 2,
        workers: 1,
        queue_depth: 64,
        batch: 1,
        host_only: cfg.host_only,
        poison_marker: Some(POISON_MARKER.to_string()),
        ..ServeConfig::default()
    };
    let engine = Arc::new(ServeEngine::new(&serve_cfg));
    // Shrink the breaker cool-down (virtual time) so open → half-open →
    // closed recovery cycles actually happen within a short soak, not
    // just the initial trip.
    engine.pool().set_breaker_config(BreakerConfig { cooldown_ns: 500_000, ..Default::default() });
    let mut transcript = Vec::new();
    admission_phase(&engine, &mut transcript)?;

    // Main phase, in lockstep: one worker, one request in flight, so the
    // transcript order is the submission order.
    let server = ServeServer::start(Arc::clone(&engine), &serve_cfg);
    let (tx, rx) = mpsc::channel();
    let mut poison_executed = 0u64;
    let mut poison_total = 0u64;
    let mut poison_seen = false;
    for req in script {
        if req.poison {
            poison_total += 1;
        }
        match server.submit(req.line.clone(), tx.clone()) {
            Ok(()) => {
                if req.poison {
                    // First poison reaches a worker (and panics there);
                    // afterwards the source hash is quarantined, so any
                    // repeat must be rejected at admission below.
                    if poison_seen {
                        return Err("soak: repeat poison program reached a worker".to_string());
                    }
                    poison_seen = true;
                    poison_executed += 1;
                }
                transcript.push(recv_response(&rx)?);
            }
            Err(e @ ServeError::Quarantined(_)) if req.poison => {
                transcript.push(reject_line(&req.line, &e));
            }
            Err(e) => return Err(format!("soak: unexpected admission rejection: {e}")),
        }
    }
    // Worker-liveness probe: the pool must still serve healthy traffic
    // after every panic, deadline and breaker trip above.
    let probe = healthy_line("probe");
    server.submit(probe, tx.clone()).map_err(|e| format!("soak: liveness probe rejected: {e}"))?;
    let probe_resp = recv_response(&rx)?;
    let pv = Json::parse(&probe_resp).map_err(|e| format!("soak: probe response: {e}"))?;
    if pv.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("soak: liveness probe failed: {probe_resp}"));
    }
    transcript.push(probe_resp);
    // A stats snapshot closes the transcript, so the replay check also
    // covers the deterministic counters.
    transcript.push(engine.stats_response("soak-stats"));
    server.shutdown();

    let report = engine.pool().report();
    let mut breaker_trips = 0;
    let mut breaker_steered = 0;
    for shard in &report.breakers {
        for b in shard {
            breaker_trips += b.trips;
            breaker_steered += b.steered;
            // Breaker convergence: a breaker can only be away from
            // `Closed` because it actually tripped.
            if b.state != BreakerState::Closed && b.trips == 0 {
                return Err(format!(
                    "soak: breaker for {} is {} without ever tripping",
                    b.target, b.state
                ));
            }
        }
    }
    Ok(PassOutcome {
        transcript,
        worker_panics: engine.worker_panics(),
        quarantined: engine.quarantine().counts(),
        breaker_trips,
        breaker_steered,
        poison_executed,
        poison_total,
    })
}

/// Runs the full soak: two passes over the seed-derived workload against
/// fresh engines, invariant checks, and the byte-identical replay
/// comparison.
///
/// # Errors
///
/// A human-readable description of the first violated invariant (worker
/// death, untyped response, breaker divergence, replay mismatch, …).
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let script = generate(cfg);
    let first = run_pass(cfg, &script)?;
    let second = run_pass(cfg, &script)?;

    // Invariant: every transcript line is a typed response.
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    for line in &first.transcript {
        let v = Json::parse(line).map_err(|e| format!("soak: untyped response `{line}`: {e}"))?;
        let kind = match v.get("ok").and_then(Json::as_bool) {
            Some(true) => "ok".to_string(),
            _ => v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .ok_or_else(|| format!("soak: response with neither ok nor error.kind: {line}"))?
                .to_string(),
        };
        *kinds.entry(kind).or_insert(0) += 1;
    }
    // Invariant: panics are exactly the poison programs that executed —
    // no worker died for any other reason, and no poison executed twice.
    if first.worker_panics != first.poison_executed {
        return Err(format!(
            "soak: {} worker panics but {} poison executions",
            first.worker_panics, first.poison_executed
        ));
    }
    if first.poison_total > 0 && first.poison_executed != 1 {
        return Err(format!(
            "soak: {} poison programs injected but {} executed (quarantine must stop repeats)",
            first.poison_total, first.poison_executed
        ));
    }
    // Invariant: every rejection class was actually exercised.
    for must in ["ok", "overloaded", "shedding", "shutting_down", "quarantined"] {
        if !kinds.contains_key(must) {
            return Err(format!("soak: workload never produced a `{must}` response"));
        }
    }
    if !kinds.contains_key("deadline_exceeded") {
        return Err("soak: workload never produced a `deadline_exceeded` response".to_string());
    }
    // Invariant: byte-identical replay.
    let replay_identical = first.transcript == second.transcript;
    if !replay_identical {
        let diverged =
            first.transcript.iter().zip(&second.transcript).position(|(a, b)| a != b).map_or_else(
                || format!("lengths {} vs {}", first.transcript.len(), second.transcript.len()),
                |i| format!("first divergence at line {i}"),
            );
        return Err(format!("soak: replay not byte-identical ({diverged})"));
    }

    Ok(SoakReport {
        seed: cfg.seed,
        profile: cfg.profile,
        responses: first.transcript.len(),
        tenants: cfg.tenants.max(1),
        kinds,
        worker_panics: first.worker_panics,
        quarantined_sources: first.quarantined.0,
        quarantined_graphs: first.quarantined.1,
        breaker_trips: first.breaker_trips,
        breaker_steered: first.breaker_steered,
        replay_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic_and_seed_sensitive() {
        let cfg = SoakConfig { requests: 40, ..Default::default() };
        let a: Vec<String> = generate(&cfg).into_iter().map(|r| r.line).collect();
        let b: Vec<String> = generate(&cfg).into_iter().map(|r| r.line).collect();
        assert_eq!(a, b, "same seed, same workload");
        let other = SoakConfig { seed: cfg.seed + 1, requests: 40, ..Default::default() };
        let c: Vec<String> = generate(&other).into_iter().map(|r| r.line).collect();
        assert_ne!(a, c, "different seed, different workload");
    }

    #[test]
    fn forced_cases_are_always_present() {
        let reqs = generate(&SoakConfig { requests: 12, ..Default::default() });
        assert!(reqs[3].poison && reqs[7].poison);
        // Ids differ but the program (the quarantine key) must not.
        assert!(reqs[3].line.contains(POISON_MARKER) && reqs[7].line.contains(POISON_MARKER));
        assert!(reqs[5].line.contains("\"deadline_ms\":0"));
        assert!(reqs[9].poison || reqs[9].line.contains("\"fuel\":"));
    }

    #[test]
    fn small_hostile_soak_holds_all_invariants() {
        let cfg = SoakConfig { requests: 24, host_only: false, ..Default::default() };
        let report = run_soak(&cfg).expect("soak invariants");
        assert!(report.replay_identical);
        assert_eq!(report.worker_panics, 1);
        assert!(report.quarantined_sources >= 1);
        assert!(report.kinds["ok"] > 0);
    }
}
