//! Whole-benchmark evaluation: compiles a workload for every platform and
//! prices the full run (per-invocation estimate × invocation count).
//! This is the measurement layer behind every figure of the evaluation.

use crate::compiler::{standard_soc, Compiler, PolyMathError};
use pm_accel::{Backend, Cpu, Gpu, PerfEstimate, WorkloadHints};
use pm_workloads::{SparseHints, Workload};
use pmlang::Domain;
use srdfg::Bindings;
use std::collections::HashMap;

/// Whole-benchmark estimates across the evaluation platforms.
#[derive(Debug, Clone)]
pub struct PlatformResults {
    /// Benchmark name.
    pub benchmark: String,
    /// The workload's domain.
    pub domain: Domain,
    /// The accelerator that served it.
    pub target: String,
    /// Xeon CPU baseline (native stack).
    pub cpu: PerfEstimate,
    /// Titan Xp baseline.
    pub titan: PerfEstimate,
    /// Jetson Xavier baseline.
    pub jetson: PerfEstimate,
    /// PolyMath-compiled execution on the domain accelerator (incl. DMA).
    pub polymath: PerfEstimate,
    /// Hand-optimized execution on the same accelerator.
    pub expert: PerfEstimate,
}

impl PlatformResults {
    /// Runtime improvement over the CPU (paper Fig. 7, blue bars).
    pub fn speedup_vs_cpu(&self) -> f64 {
        self.cpu.seconds / self.polymath.seconds
    }

    /// Energy improvement over the CPU (paper Fig. 7, orange bars).
    pub fn energy_reduction_vs_cpu(&self) -> f64 {
        self.cpu.energy_j / self.polymath.energy_j
    }

    /// Runtime improvement over a GPU estimate (paper Fig. 8).
    pub fn speedup_vs(&self, gpu: &PerfEstimate) -> f64 {
        gpu.seconds / self.polymath.seconds
    }

    /// Performance-per-watt improvement over a GPU estimate (paper Fig. 8).
    pub fn ppw_vs(&self, gpu: &PerfEstimate) -> f64 {
        let own = 1.0 / self.polymath.energy_j;
        let theirs = 1.0 / gpu.energy_j;
        own / theirs
    }

    /// Fraction of the hand-optimized runtime achieved (paper Fig. 9).
    pub fn pct_of_optimal(&self) -> f64 {
        self.expert.seconds / self.polymath.seconds
    }
}

/// Sums a backend's estimate over every partition of a compiled program
/// (host-only compiles still partition by domain annotation, so a single
/// processor must be priced across all of them).
pub fn estimate_all(
    backend: &dyn Backend,
    compiled: &pm_lower::CompiledProgram,
    hints: &WorkloadHints,
) -> PerfEstimate {
    let mut total = PerfEstimate::default();
    for part in &compiled.partitions {
        total = total.then(&backend.estimate(part, &compiled.graph, hints));
    }
    total
}

/// Converts workload sparse hints into backend hints.
fn to_workload_hints(h: &SparseHints) -> WorkloadHints {
    WorkloadHints {
        effective_ops: h.effective_ops,
        effective_bytes: h.effective_bytes,
        edges: h.edges,
        vertices: h.vertices,
        gpu_batch: h.gpu_batch,
        native_factor: None,
    }
}

/// Converts a workload's sparse hints into per-domain backend hints.
fn hint_map(hints: &SparseHints) -> HashMap<Option<Domain>, WorkloadHints> {
    let wh = to_workload_hints(hints);
    let mut m = HashMap::new();
    if *hints != SparseHints::default() {
        for d in Domain::all() {
            m.insert(Some(d), wh);
        }
        m.insert(None, wh);
    }
    m
}

/// Evaluates one workload across CPU, both GPUs, and its accelerator.
///
/// # Errors
///
/// Returns a [`PolyMathError`] if any compilation path fails.
pub fn evaluate(workload: &Workload) -> Result<PlatformResults, PolyMathError> {
    let bindings = Bindings::default();
    let hints = hint_map(&workload.hints);
    // Baselines run the *native stack's* algorithm; when its cost differs
    // from the PMLang formulation, `native_hints` carries the difference.
    let mut native = workload.native_hints.unwrap_or(workload.hints);
    // Batching is a property of the workload's streaming structure, not of
    // the native algorithm override.
    native.gpu_batch = native.gpu_batch.or(workload.hints.gpu_batch);
    let flat = to_workload_hints(&native);

    // Baselines compile against the host spec (native single-machine run).
    // NB: partitions are keyed by domain annotation even on the host, so
    // the processor is priced across every partition.
    let host = Compiler::host_only().compile(&workload.source, &bindings)?;
    let cpu = estimate_all(&Cpu::default(), &host, &flat).scaled(workload.invocations);
    let titan = estimate_all(&Gpu::titan_xp(), &host, &flat).scaled(workload.invocations);
    let jetson = estimate_all(&Gpu::jetson_xavier(), &host, &flat).scaled(workload.invocations);

    // PolyMath compiles cross-domain and runs on the SoC.
    let compiled = Compiler::cross_domain().compile(&workload.source, &bindings)?;
    let soc = standard_soc();
    let polymath = soc.run(&compiled, &hints)?.total.scaled(workload.invocations);
    let expert = soc.run_expert(&compiled, &hints)?.total.scaled(workload.invocations);
    let target = compiled
        .partitions
        .iter()
        .find(|p| p.domain == Some(workload.domain))
        .map(|p| p.target.clone())
        .unwrap_or_else(|| "CPU".into());

    Ok(PlatformResults {
        benchmark: workload.benchmark.to_string(),
        domain: workload.domain,
        target,
        cpu,
        titan,
        jetson,
        polymath,
        expert,
    })
}

/// Geometric mean of a ratio across results.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lr_workload() -> Workload {
        Workload {
            benchmark: "LR-small",
            algorithm: "Logistic Regression",
            domain: Domain::DataAnalytics,
            config: "256 features".into(),
            source: pm_workloads::programs::logistic(256),
            invocations: 1000,
            hints: SparseHints::default(),
            native_hints: None,
        }
    }

    #[test]
    fn evaluate_produces_consistent_results() {
        let r = evaluate(&small_lr_workload()).unwrap();
        assert_eq!(r.target, "TABLA");
        assert!(r.cpu.seconds > 0.0 && r.polymath.seconds > 0.0);
        // The expert implementation is never slower than the compiled one.
        assert!(r.expert.seconds <= r.polymath.seconds * 1.0001);
        assert!(r.pct_of_optimal() <= 1.0001 && r.pct_of_optimal() > 0.2);
    }

    #[test]
    fn invocation_scaling_is_linear() {
        let w1 = small_lr_workload();
        let mut w2 = small_lr_workload();
        w2.invocations *= 10;
        let r1 = evaluate(&w1).unwrap();
        let r2 = evaluate(&w2).unwrap();
        assert!((r2.cpu.seconds / r1.cpu.seconds - 10.0).abs() < 1e-6);
        assert!((r2.polymath.seconds / r1.polymath.seconds - 10.0).abs() < 1e-6);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }
}
