//! Structured error taxonomy for the SoC runtime.
//!
//! Every fallible path in `crates/accel` surfaces a [`SocError`] instead
//! of panicking: a missing backend, a malformed fragment stream, a retry
//! budget exhausted on a faulting device with no fallback available.
//! Errors carry enough structure for the CLI to print lint-style
//! diagnostics (including a "did you mean" suggestion for misattached
//! backends) and for the fuzzer to minimize fault-injected failures.

use crate::fault::FaultKind;
use pmlang::Domain;
use srdfg::BudgetExceeded;
use std::fmt;

/// Why a SoC run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SocError {
    /// A partition was compiled for an accelerator that is not attached
    /// to this SoC.
    MissingBackend {
        /// The target the partition was compiled for.
        target: String,
        /// The partition's domain annotation.
        domain: Option<Domain>,
        /// Names of the backends that *are* attached.
        attached: Vec<String>,
        /// Closest attached name, when one is plausibly a typo.
        suggestion: Option<String>,
    },
    /// A fragment violated the dispatch contract (e.g. a `load` with no
    /// input operands).
    MalformedFragment {
        /// Target whose stream held the fragment.
        target: String,
        /// Fragment index within the partition.
        fragment: usize,
        /// What was wrong.
        detail: String,
    },
    /// A fragment kept faulting past the retry budget and no fallback
    /// path was available.
    RetriesExhausted {
        /// The faulting target.
        target: String,
        /// Fragment index within the partition.
        fragment: usize,
        /// Fragment operation name.
        op: String,
        /// Total dispatch attempts made.
        attempts: u32,
        /// The last fault observed.
        fault: FaultKind,
    },
    /// A fragment exceeded its total virtual-time budget (stalls +
    /// backoff) and no fallback path was available.
    DeadlineExceeded {
        /// The stalling target.
        target: String,
        /// Fragment index within the partition.
        fragment: usize,
        /// Fragment operation name.
        op: String,
        /// The per-fragment budget, virtual nanoseconds.
        budget_ns: u64,
        /// Virtual time spent before giving up.
        spent_ns: u64,
    },
    /// A device is down and host-fallback re-lowering was impossible
    /// (no target map supplied to re-run Algorithm 1).
    FallbackUnavailable {
        /// The downed target.
        target: String,
        /// Why fallback could not proceed.
        detail: String,
    },
    /// Host-fallback re-lowering itself failed.
    Relower {
        /// The lowering error message.
        detail: String,
    },
    /// Functional execution of an invocation failed.
    Execution {
        /// Which invocation of the trajectory.
        invocation: u64,
        /// The interpreter error message.
        detail: String,
    },
    /// The request-level budget ([`srdfg::Budget`]) ran out mid-run;
    /// the dispatch loop unwound cooperatively at its next checkpoint.
    BudgetExhausted(BudgetExceeded),
}

impl SocError {
    /// Builds a [`SocError::MissingBackend`] with a "did you mean"
    /// suggestion computed against the attached backend names.
    pub fn missing_backend(
        target: impl Into<String>,
        domain: Option<Domain>,
        attached: Vec<String>,
    ) -> Self {
        let target = target.into();
        let suggestion = closest_name(&target, &attached);
        SocError::MissingBackend { target, domain, attached, suggestion }
    }
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::MissingBackend { target, domain, attached, suggestion } => {
                write!(f, "no backend `{target}` attached to the SoC")?;
                if let Some(d) = domain {
                    write!(f, " for domain {d:?}")?;
                }
                if attached.is_empty() {
                    write!(f, "; no backends are attached")?;
                } else {
                    write!(f, "; attached: {}", attached.join(", "))?;
                }
                if let Some(s) = suggestion {
                    write!(f, "; did you mean `{s}`?")?;
                }
                Ok(())
            }
            SocError::MalformedFragment { target, fragment, detail } => {
                write!(f, "{target}: malformed fragment {fragment}: {detail}")
            }
            SocError::RetriesExhausted { target, fragment, op, attempts, fault } => {
                write!(
                    f,
                    "{target}: fragment {fragment} (`{op}`) still failing after {attempts} \
                     attempts ({fault}) and no fallback target map was provided"
                )
            }
            SocError::DeadlineExceeded { target, fragment, op, budget_ns, spent_ns } => {
                write!(
                    f,
                    "{target}: fragment {fragment} (`{op}`) exceeded its dispatch budget \
                     ({spent_ns} ns spent of {budget_ns} ns) and no fallback target map was \
                     provided"
                )
            }
            SocError::FallbackUnavailable { target, detail } => {
                write!(f, "{target}: device down and host fallback unavailable: {detail}")
            }
            SocError::Relower { detail } => {
                write!(f, "host-fallback re-lowering failed: {detail}")
            }
            SocError::Execution { invocation, detail } => {
                write!(f, "invocation {invocation}: execution failed: {detail}")
            }
            SocError::BudgetExhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SocError {}

/// The attached name closest to `target` by edit distance, when close
/// enough to plausibly be a typo (distance ≤ half the target's length).
fn closest_name(target: &str, attached: &[String]) -> Option<String> {
    let budget = (target.chars().count() / 2).max(1);
    attached
        .iter()
        .map(|name| (levenshtein(&target.to_lowercase(), &name.to_lowercase()), name))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, name)| name.clone())
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn did_you_mean_picks_the_closest_backend() {
        let attached = vec!["TABLA".to_string(), "DECO".to_string(), "RoboX".to_string()];
        let err = SocError::missing_backend("TABAL", Some(Domain::DataAnalytics), attached);
        let msg = err.to_string();
        assert!(msg.contains("did you mean `TABLA`?"), "got: {msg}");
        assert!(msg.contains("attached: TABLA, DECO, RoboX"), "got: {msg}");
    }

    #[test]
    fn no_suggestion_when_nothing_is_close() {
        let attached = vec!["TABLA".to_string(), "DECO".to_string()];
        let err = SocError::missing_backend("Graphicionado", None, attached);
        match &err {
            SocError::MissingBackend { suggestion, .. } => assert!(suggestion.is_none()),
            other => panic!("unexpected variant {other:?}"),
        }
        assert!(!err.to_string().contains("did you mean"));
    }

    #[test]
    fn suggestion_is_case_insensitive() {
        let attached = vec!["DECO".to_string()];
        let err = SocError::missing_backend("deco", Some(Domain::Dsp), attached);
        match &err {
            SocError::MissingBackend { suggestion, .. } => {
                assert_eq!(suggestion.as_deref(), Some("DECO"));
            }
            other => panic!("unexpected variant {other:?}"),
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
