//! HyperStreams — a streaming FPGA pipeline library (Morris & Aubury,
//! FPL 2007: "Design space exploration of the European option benchmark
//! using HyperStreams"; the paper's Black-Scholes target, Table V).
//!
//! HyperStreams composes deeply pipelined floating-point operator chains:
//! a dataflow expression is unrolled into one hardware operator per scalar
//! op and data streams through at one element per cycle once the pipeline
//! fills. Unlike TABLA's PE grid (which time-multiplexes ALUs), a
//! HyperStreams pipeline is *spatially* unrolled — throughput is bound by
//! the stream rate, not the op count, as long as the operator chain fits
//! the fabric.
//!
//! This is the second Data Analytics target: the paper runs OptionPricing
//! with logistic regression on TABLA and Black-Scholes on HyperStreams
//! simultaneously. PolyMath assigns it via a per-component target
//! override (`TargetMap::set_override`).

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::{Modifier, NodeKind, SrDfg};

/// The HyperStreams backend (FPGA pipeline on the KCU1500, 150 MHz).
#[derive(Debug, Clone)]
pub struct HyperStreams {
    /// Operator budget: scalar ops the fabric can spatially instantiate.
    pub max_operators: usize,
    /// Elements each pipeline consumes per cycle at steady state.
    pub elements_per_cycle: f64,
    /// Bytes streamed per cycle by the memory interface.
    pub stream_bytes_per_cycle: u64,
}

impl Default for HyperStreams {
    fn default() -> Self {
        HyperStreams { max_operators: 4096, elements_per_cycle: 1.0, stream_bytes_per_cycle: 64 }
    }
}

/// A pipeline plan: how many parallel element-pipelines fit and how many
/// elements each invocation streams.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelinePlan {
    /// Scalar operators per element (the pipeline's depth in ops).
    pub ops_per_element: u64,
    /// Elements processed per invocation.
    pub elements: u64,
    /// Parallel pipeline copies the operator budget allows.
    pub copies: u64,
    /// Bytes streamed per invocation.
    pub streamed_bytes: u64,
}

impl HyperStreams {
    /// Derives the pipeline plan for a partition: per-element op count
    /// from the widest map over the element space, replicated until the
    /// operator budget is spent.
    pub fn plan(&self, prog: &AccProgram, graph: &SrDfg) -> PipelinePlan {
        let mut plan = PipelinePlan::default();
        let mut total_ops = 0u64;
        // At this target's granularity the partition is a scalar fabric;
        // the element count comes from the streamed tensor shapes (one
        // pipeline traversal per element).
        let mut elements = 0u64;
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            total_ops += frag.ops;
            let Some(id) = frag.node else { continue };
            let node = graph.node(id);
            match &node.kind {
                NodeKind::Map(m) => {
                    elements = elements.max(srdfg::graph::space_size(&m.out_space) as u64);
                }
                NodeKind::Reduce(r) => {
                    elements = elements.max(srdfg::graph::space_size(&r.out_space) as u64);
                }
                _ => {}
            }
        }
        for frag in &prog.fragments {
            if frag.kind == FragmentKind::Compute {
                continue;
            }
            for a in frag.inputs.iter().chain(&frag.outputs) {
                // Resident `param`/`state` tensors are not streamed and do
                // not define the element space.
                if matches!(a.modifier(), Modifier::Input | Modifier::Output | Modifier::Temp) {
                    let volume = a.shape().iter().product::<usize>() as u64;
                    elements = elements.max(volume);
                    let per = if a.dtype() == pmlang::DType::Complex { 8 } else { 4 };
                    plan.streamed_bytes += volume * per;
                }
            }
        }
        plan.elements = elements.max(1);
        plan.ops_per_element = (total_ops / plan.elements).max(1);
        plan.copies = (self.max_operators as u64 / plan.ops_per_element).clamp(1, 16);
        plan
    }
}

impl Backend for HyperStreams {
    fn name(&self) -> &'static str {
        "HyperStreams"
    }

    fn domain(&self) -> Domain {
        Domain::DataAnalytics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        #[rustfmt::skip]
        let ops = [
            // Spatially unrolled scalar FP operators.
            "add", "sub", "mul", "div", "neg", "select", "const",
            "cmp.==", "cmp.!=", "cmp.<", "cmp.<=", "cmp.>", "cmp.>=",
            // Pipelined transcendental operator cores.
            "ln", "exp", "sqrt", "phi", "erf", "sigmoid", "abs", "pow", "min2", "max2", "floor",
            // Marshalling.
            "unpack", "pack",
        ];
        AcceleratorSpec::new("HyperStreams", Domain::DataAnalytics, ops)
    }

    fn hw(&self) -> HwConfig {
        HwConfig::kcu1500("HyperStreams")
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let plan = self.plan(prog, graph);
        // Steady-state throughput: `copies` elements per cycle once the
        // pipeline fills; fill depth amortizes across the stream.
        let mut compute =
            ((plan.elements as f64) / (self.elements_per_cycle * plan.copies as f64)).ceil() as u64;
        compute = ((compute as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream = plan.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        let cycles = compute.max(stream) + plan.ops_per_element + 8; // fill + control
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        // A hand-tuned HyperStreams design balances its pipeline stages
        // perfectly (the FPL paper's point) — no control epilogue.
        let plan = self.plan(prog, graph);
        let mut compute =
            ((plan.elements as f64) / (self.elements_per_cycle * plan.copies as f64)).ceil() as u64;
        compute = ((compute as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream = plan.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        let mut est = PerfEstimate::from_cycles(
            compute.max(stream).max(1) + plan.ops_per_element,
            &self.hw(),
        );
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    fn compiled_blks(options: usize) -> (pm_lower::CompiledProgram, HyperStreams) {
        let src = pm_workloads::programs::black_scholes(options);
        let (prog, _) = pmlang::frontend(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let hs = HyperStreams::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(hs.accel_spec());
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        (compile_program(&g, &targets).unwrap(), hs)
    }

    #[test]
    fn black_scholes_lowers_onto_the_pipeline() {
        let (compiled, hs) = compiled_blks(64);
        let part = compiled.partition_by_target("HyperStreams").unwrap();
        let plan = hs.plan(part, &compiled.graph);
        assert_eq!(plan.elements, 64);
        assert!(plan.ops_per_element >= 10, "{plan:?}");
        assert!(plan.copies >= 1);
    }

    #[test]
    fn throughput_is_stream_not_op_bound() {
        // Doubling options roughly doubles cycles (per-element pipeline),
        // rather than scaling with op count × elements.
        let hs = HyperStreams::default();
        let (c1, _) = compiled_blks(128);
        let (c2, _) = compiled_blks(256);
        let h = WorkloadHints::default();
        let e1 = hs.estimate(c1.partition_by_target("HyperStreams").unwrap(), &c1.graph, &h);
        let e2 = hs.estimate(c2.partition_by_target("HyperStreams").unwrap(), &c2.graph, &h);
        let ratio = e2.cycles as f64 / e1.cycles as f64;
        assert!(ratio > 1.2 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn expert_is_never_slower() {
        let (compiled, hs) = compiled_blks(128);
        let part = compiled.partition_by_target("HyperStreams").unwrap();
        let h = WorkloadHints::default();
        let normal = hs.estimate(part, &compiled.graph, &h);
        let expert = hs.estimate_expert(part, &compiled.graph, &h);
        assert!(expert.cycles <= normal.cycles);
    }
}
