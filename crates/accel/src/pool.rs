//! Sharded pool of simulated SoCs for multi-tenant serving.
//!
//! `pmc serve` dispatches every admitted request onto one of a fixed set
//! of [`Soc`] *shards*. A tenant is pinned to its shard by a stable hash
//! of the tenant name, which gives the service two properties for free:
//!
//! * **fault isolation** — a tenant whose chaos profile takes a device
//!   down perturbs only its own shard's dispatch schedule; every other
//!   tenant's results are computed on an untouched `Soc` (and chaos state
//!   is per-request anyway: [`Soc::run_trajectory`] threads the fault
//!   plan through the call, never through the shard);
//! * **aggregate accounting** — each shard accumulates a [`ShardStats`]
//!   ledger of everything it executed, and [`SocPool::report`] folds the
//!   ledgers into the pool-level account the serve stats endpoint and the
//!   benchmark harness read.
//!
//! The pool is passive: it owns the SoCs and the ledgers but no threads.
//! The serve layer brings its own workers and calls
//! [`SocPool::shard_for`] → [`SocPool::shard`] → [`SocPool::record`].

use crate::breaker::{BreakerBoard, BreakerConfig, BreakerSnapshot};
use crate::fault::FaultKind;
use crate::runtime::TrajectoryOutcome;
use crate::soc::Soc;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Per-shard execution ledger (see [`SocPool::report`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Requests executed on this shard.
    pub requests: u64,
    /// Program invocations executed (a request may carry many).
    pub invocations: u64,
    /// Invocations that faulted, rolled back and replayed.
    pub replayed_invocations: u64,
    /// Faults injected across all requests.
    pub faults_injected: u64,
    /// Retry dispatches across all requests.
    pub retries: u64,
    /// DMA bytes re-transferred after faults.
    pub retried_dma_bytes: u64,
    /// Virtual manager time across all requests, nanoseconds.
    pub virtual_ns: u64,
    /// Devices taken down and re-lowered onto the host.
    pub fallbacks: u64,
    /// Simulated wall-clock across all requests, seconds.
    pub seconds: f64,
    /// Simulated energy across all requests, joules.
    pub energy_j: f64,
}

impl ShardStats {
    /// Folds one trajectory outcome into the ledger.
    pub fn absorb(&mut self, outcome: &TrajectoryOutcome) {
        self.requests += 1;
        self.invocations += outcome.invocations;
        self.replayed_invocations += outcome.replayed_invocations;
        self.faults_injected += outcome.faults_injected;
        self.retries += outcome.retries;
        self.retried_dma_bytes += outcome.retried_dma_bytes;
        self.virtual_ns = self.virtual_ns.saturating_add(outcome.virtual_ns);
        self.fallbacks += outcome.fallbacks.len() as u64;
        self.seconds += outcome.total.seconds;
        self.energy_j += outcome.total.energy_j;
    }

    fn merge(&mut self, other: &ShardStats) {
        self.requests += other.requests;
        self.invocations += other.invocations;
        self.replayed_invocations += other.replayed_invocations;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.retried_dma_bytes += other.retried_dma_bytes;
        self.virtual_ns = self.virtual_ns.saturating_add(other.virtual_ns);
        self.fallbacks += other.fallbacks;
        self.seconds += other.seconds;
        self.energy_j += other.energy_j;
    }
}

/// Pool-level account: the per-shard ledgers plus their fold.
#[derive(Debug, Clone, Default)]
pub struct PoolReport {
    /// One ledger per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// All shard ledgers folded together.
    pub total: ShardStats,
    /// Per-tenant ledgers (tenant order), so retry/fallback attribution
    /// survives aggregation and the soak report can prove tenant
    /// isolation numerically.
    pub tenants: Vec<(String, ShardStats)>,
    /// Per-shard breaker snapshots, in shard order (empty inner vectors
    /// for shards whose backends have never failed).
    pub breakers: Vec<Vec<BreakerSnapshot>>,
}

/// A fixed set of [`Soc`] shards with tenant-affinity routing and
/// pool-level accounting. Shareable across threads (`Soc` execution takes
/// `&self`; ledgers sit behind a [`Mutex`]).
pub struct SocPool {
    shards: Vec<Soc>,
    ledgers: Mutex<Vec<ShardStats>>,
    tenants: Mutex<BTreeMap<String, ShardStats>>,
    boards: Mutex<Vec<BreakerBoard>>,
}

impl std::fmt::Debug for SocPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocPool").field("shards", &self.shards.len()).finish()
    }
}

impl SocPool {
    /// Builds a pool of `shards` SoCs (at least one), constructing each
    /// with `build(shard_index)`.
    pub fn new(shards: usize, build: impl Fn(usize) -> Soc) -> SocPool {
        let n = shards.max(1);
        SocPool {
            shards: (0..n).map(build).collect(),
            ledgers: Mutex::new(vec![ShardStats::default(); n]),
            tenants: Mutex::new(BTreeMap::new()),
            boards: Mutex::new(vec![BreakerBoard::new(BreakerConfig::default()); n]),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false — the constructor guarantees at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard index serving `tenant`: a stable content hash of the
    /// tenant name, so a tenant always lands on the same SoC regardless
    /// of request order or interleaving.
    pub fn shard_for(&self, tenant: &str) -> usize {
        let mut h = srdfg::FxHasher::default();
        tenant.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// The SoC at `shard` (modulo the pool size, so routing can never
    /// index out of bounds).
    pub fn shard(&self, shard: usize) -> &Soc {
        &self.shards[shard % self.shards.len()]
    }

    /// Folds a completed request's outcome into `shard`'s ledger.
    pub fn record(&self, shard: usize, outcome: &TrajectoryOutcome) {
        let mut ledgers = self.ledgers.lock().unwrap_or_else(|e| e.into_inner());
        let n = ledgers.len();
        ledgers[shard % n].absorb(outcome);
    }

    /// Replaces every shard's breaker board with a fresh one under `cfg`.
    /// Tests and the soak harness use this to shrink the (virtual-time)
    /// cool-down so open→half-open→closed cycles happen within a short
    /// deterministic run; calling it mid-flight discards breaker state.
    pub fn set_breaker_config(&self, cfg: BreakerConfig) {
        let mut boards = self.boards.lock().unwrap_or_else(|e| e.into_inner());
        for b in boards.iter_mut() {
            *b = BreakerBoard::new(cfg);
        }
    }

    /// The targets an admitted request on `shard` must steer away from:
    /// every backend whose breaker is open. The caller merges the set
    /// into its [`crate::fault::ChaosConfig::force_down`], which routes
    /// those backends' fragments through the same host-fallback
    /// re-lowering a mid-run outage uses — outputs stay byte-identical
    /// to the healthy path.
    pub fn breaker_guard(&self, shard: usize) -> BTreeSet<String> {
        let mut boards = self.boards.lock().unwrap_or_else(|e| e.into_inner());
        let n = boards.len();
        boards[shard % n].guard()
    }

    /// Folds a served request into the shard *and* tenant ledgers, and
    /// drives `shard`'s breakers from the outcome.
    ///
    /// `forced` is the set [`SocPool::breaker_guard`] returned when the
    /// request was admitted: fallbacks the guard itself forced are *not*
    /// counted as fresh failures (an open breaker steering traffic must
    /// not keep itself open), and their targets report no success either
    /// — only organic dispatches carry breaker information.
    pub fn record_served(
        &self,
        shard: usize,
        tenant: &str,
        outcome: &TrajectoryOutcome,
        forced: &BTreeSet<String>,
    ) {
        self.record(shard, outcome);
        {
            let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
            tenants.entry(tenant.to_string()).or_default().absorb(outcome);
        }
        let mut boards = self.boards.lock().unwrap_or_else(|e| e.into_inner());
        let n = boards.len();
        let board = &mut boards[shard % n];
        board.advance(outcome.virtual_ns.max(1));
        for f in &outcome.fallbacks {
            if !forced.contains(&f.target) {
                let persistent = matches!(f.fault, FaultKind::DeviceDown { persistent: true });
                board.on_failure(&f.target, persistent);
            }
        }
        for p in &outcome.last.partitions {
            let fell_back = outcome.fallbacks.iter().any(|f| f.target == p.target);
            if !forced.contains(&p.target) && !fell_back {
                board.on_success(&p.target);
            }
        }
    }

    /// Snapshot of every shard ledger plus the pool-level fold, tenant
    /// attribution, and breaker states.
    pub fn report(&self) -> PoolReport {
        let shards = self.ledgers.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut total = ShardStats::default();
        for s in &shards {
            total.merge(s);
        }
        let tenants = self
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, stats)| (name.clone(), *stats))
            .collect();
        let breakers = self
            .boards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(BreakerBoard::snapshot)
            .collect();
        PoolReport { shards, total, tenants, breakers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend as _;
    use crate::fault::ChaosConfig;
    use crate::runtime::TrajectoryInputs;
    use pm_lower::{compile_program, lower, TargetMap};
    use srdfg::Tensor;
    use std::collections::HashMap;

    fn host_compiled() -> (pm_lower::CompiledProgram, TargetMap) {
        let src = "main(input float x[4], output float y) {
             index i[0:3];
             y = sum[i](x[i]*x[i]);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let targets = TargetMap::host_only(crate::cpu::Cpu::default().accel_spec());
        lower(&mut g, &targets).unwrap();
        (compile_program(&g, &targets).unwrap(), targets)
    }

    #[test]
    fn tenant_routing_is_stable() {
        let pool = SocPool::new(4, |_| Soc::new());
        assert_eq!(pool.len(), 4);
        for tenant in ["alice", "bob", "carol", ""] {
            let s = pool.shard_for(tenant);
            assert!(s < 4);
            assert_eq!(s, pool.shard_for(tenant), "same tenant must pin to the same shard");
        }
    }

    #[test]
    fn zero_shards_rounds_up_to_one() {
        let pool = SocPool::new(0, |_| Soc::new());
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        assert_eq!(pool.shard_for("anyone"), 0);
    }

    #[test]
    fn ledgers_aggregate_across_shards() {
        let pool = SocPool::new(2, |_| Soc::new());
        let (compiled, targets) = host_compiled();
        let feeds = HashMap::from([(
            "x".to_string(),
            Tensor::from_vec(pmlang::DType::Float, vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        )]);
        let inputs = TrajectoryInputs { feeds: &feeds, state_seeds: &[], invocations: 3 };
        for shard in [0usize, 0, 1] {
            let out = pool
                .shard(shard)
                .run_trajectory(
                    &compiled,
                    &HashMap::new(),
                    &ChaosConfig::off(),
                    Some(&targets),
                    &inputs,
                )
                .unwrap();
            pool.record(shard, &out);
        }
        let report = pool.report();
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.shards[0].requests, 2);
        assert_eq!(report.shards[1].requests, 1);
        assert_eq!(report.total.requests, 3);
        assert_eq!(report.total.invocations, 9);
        assert_eq!(report.total.faults_injected, 0);
        assert!(report.total.seconds > 0.0);
        assert!(report.total.energy_j > 0.0);
    }
}
