//! Shared performance/energy modelling types for the accelerator backends.
//!
//! Hardware parameters follow the paper's Table VI:
//!
//! | Chip                         | Power  | Frequency |
//! |------------------------------|--------|-----------|
//! | Xeon E-2176G (6 cores)       | 80 W   | 3.7 GHz   |
//! | UltraScale KCU1500 FPGA      | 35 W   | 150 MHz   |
//! | RoboX ASIC                   | 3.4 W  | 1 GHz     |
//! | Graphicionado ASIC           | 7 W    | 1 GHz     |
//! | Titan Xp (3840 cores)        | 250 W  | 1.5 GHz   |
//! | Jetson AGX Xavier (512 c.)   | 30 W   | 1.3 GHz   |

/// Static hardware parameters of one execution target.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Target name.
    pub name: &'static str,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Average board/chip power while active, in watts.
    pub power_w: f64,
}

impl HwConfig {
    /// Xeon E-2176G host CPU.
    pub fn xeon() -> Self {
        HwConfig { name: "Xeon E-2176G", freq_hz: 3.7e9, power_w: 80.0 }
    }

    /// UltraScale KCU1500 FPGA fabric (TABLA / DECO / VTA bitstreams).
    pub fn kcu1500(name: &'static str) -> Self {
        HwConfig { name, freq_hz: 150.0e6, power_w: 35.0 }
    }

    /// RoboX ASIC.
    pub fn robox() -> Self {
        HwConfig { name: "RoboX", freq_hz: 1.0e9, power_w: 3.4 }
    }

    /// Graphicionado ASIC.
    pub fn graphicionado() -> Self {
        HwConfig { name: "Graphicionado", freq_hz: 1.0e9, power_w: 7.0 }
    }

    /// Titan Xp discrete GPU.
    pub fn titan_xp() -> Self {
        HwConfig { name: "Titan Xp", freq_hz: 1.5e9, power_w: 250.0 }
    }

    /// Jetson AGX Xavier embedded GPU.
    pub fn jetson_xavier() -> Self {
        HwConfig { name: "Jetson Xavier", freq_hz: 1.3e9, power_w: 30.0 }
    }
}

/// A runtime/energy estimate for one program invocation on one target.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfEstimate {
    /// Cycles spent (0 for purely analytic models that report seconds).
    pub cycles: u64,
    /// Wall-clock seconds per invocation.
    pub seconds: f64,
    /// Energy per invocation, in joules.
    pub energy_j: f64,
    /// Bytes moved over DMA per invocation.
    pub dma_bytes: u64,
}

impl PerfEstimate {
    /// Builds an estimate from cycles at a given clock and power.
    pub fn from_cycles(cycles: u64, hw: &HwConfig) -> Self {
        let seconds = cycles as f64 / hw.freq_hz;
        PerfEstimate { cycles, seconds, energy_j: seconds * hw.power_w, dma_bytes: 0 }
    }

    /// Accumulates another estimate executed sequentially after this one.
    pub fn then(&self, other: &PerfEstimate) -> PerfEstimate {
        PerfEstimate {
            cycles: self.cycles + other.cycles,
            seconds: self.seconds + other.seconds,
            energy_j: self.energy_j + other.energy_j,
            dma_bytes: self.dma_bytes + other.dma_bytes,
        }
    }

    /// Scales the estimate by an invocation count.
    pub fn scaled(&self, times: u64) -> PerfEstimate {
        PerfEstimate {
            cycles: self.cycles * times,
            seconds: self.seconds * times as f64,
            energy_j: self.energy_j * times as f64,
            dma_bytes: self.dma_bytes * times,
        }
    }

    /// Performance-per-watt proxy: inverse energy-delay (1 / (s·J)). Used
    /// only for ratios, so the absolute unit does not matter.
    pub fn perf_per_watt(&self) -> f64 {
        if self.seconds <= 0.0 || self.energy_j <= 0.0 {
            return 0.0;
        }
        1.0 / (self.seconds * (self.energy_j / self.seconds))
    }
}

/// Workload-level context a backend may use to refine its estimate.
///
/// Graph workloads are *sparse*: the PMLang program is written over dense
/// vertex×vertex index spaces, but both Graphicionado and the CPU/GPU
/// baselines stream the real edge list. `effective_ops` supplies the
/// sparse operation count (≈ `edges × ops-per-edge`) that replaces the
/// dense space product.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadHints {
    /// Override for the total scalar-op count of the dominant kernel.
    pub effective_ops: Option<u64>,
    /// Override for the total bytes touched (sparse data structures).
    pub effective_bytes: Option<u64>,
    /// Real edge count per sweep (graph workloads; the PMLang program is
    /// written over a scaled dense space).
    pub edges: Option<u64>,
    /// Real vertex count (drives apply-stage cost and scratchpad fit).
    pub vertices: Option<u64>,
    /// How many invocations the native GPU stack fuses into one kernel
    /// launch (`None`/1 = latency-bound, no batching — control loops,
    /// batch-1 inference). Streaming workloads (DCT blocks, k-means
    /// samples) amortize launch overhead and raise occupancy.
    pub gpu_batch: Option<u64>,
    /// Multiplier modelling native-stack inefficiency of whatever runs on
    /// this partition's target (framework/interpreter overhead of the
    /// baseline implementation). `None` = 1.0. The end-to-end application
    /// sweeps apply it to *host* partitions only: code left on the CPU
    /// runs in the application's native stack, not an optimized kernel.
    pub native_factor: Option<f64>,
}

impl WorkloadHints {
    /// Scale factor from the dense op count to the effective (sparse) one;
    /// 1.0 when no override is present. Backends multiply their
    /// dense-formulation cycle estimates by this.
    pub fn effective_scale(&self, dense_ops: u64) -> f64 {
        let sparse = match self.effective_ops {
            Some(eff) => eff as f64 / dense_ops.max(1) as f64,
            None => 1.0,
        };
        sparse * self.native_factor.unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_seconds_and_energy() {
        let hw = HwConfig::robox();
        let p = PerfEstimate::from_cycles(1_000_000, &hw);
        assert!((p.seconds - 1e-3).abs() < 1e-12);
        assert!((p.energy_j - 3.4e-3).abs() < 1e-9);
    }

    #[test]
    fn composition_and_scaling() {
        let hw = HwConfig::xeon();
        let a = PerfEstimate::from_cycles(3_700_000, &hw); // 1 ms
        let b = a.then(&a);
        assert!((b.seconds - 2e-3).abs() < 1e-12);
        let c = a.scaled(10);
        assert!((c.seconds - 1e-2).abs() < 1e-12);
        assert_eq!(c.cycles, 37_000_000);
    }

    #[test]
    fn table_vi_parameters() {
        assert_eq!(HwConfig::xeon().power_w, 80.0);
        assert_eq!(HwConfig::kcu1500("TABLA").freq_hz, 150.0e6);
        assert_eq!(HwConfig::graphicionado().power_w, 7.0);
        assert_eq!(HwConfig::titan_xp().power_w, 250.0);
        assert_eq!(HwConfig::jetson_xavier().power_w, 30.0);
    }

    #[test]
    fn perf_per_watt_ratio_behaviour() {
        let fast_low_power =
            PerfEstimate { cycles: 0, seconds: 1e-3, energy_j: 1e-3, dma_bytes: 0 };
        let slow_high_power =
            PerfEstimate { cycles: 0, seconds: 1e-2, energy_j: 1.0, dma_bytes: 0 };
        assert!(fast_low_power.perf_per_watt() > slow_high_power.perf_per_watt());
    }
}
