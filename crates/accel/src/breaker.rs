//! Per-backend circuit breakers for the serving pool.
//!
//! A long-lived service must stop dispatching to a backend that keeps
//! failing: every request routed at a persistently-down device burns its
//! full retry/backoff budget before host fallback rescues it. The
//! breaker turns that repeated discovery into a one-time event — after a
//! device trips its breaker, subsequent requests are *pre-steered* onto
//! the host via the same `relower_without` path a mid-run outage uses
//! (so outputs stay byte-identical to the healthy path), and the device
//! is re-probed only after a cool-down.
//!
//! The state machine is the classic three-state breaker:
//!
//! * **Closed** — traffic flows; consecutive failures are counted.
//!   A persistent [`crate::fault::FaultKind::DeviceDown`] trips
//!   immediately; retryable exhaustion trips after
//!   [`BreakerConfig::failure_threshold`] consecutive failures.
//! * **Open** — traffic is steered away ([`BreakerBoard::guard`] adds
//!   the target to the request's forced-down set). After
//!   [`BreakerConfig::cooldown_ns`] of *virtual* time the breaker moves
//!   to half-open.
//! * **Half-open** — the next request is allowed through un-steered as a
//!   probe. Success (×[`BreakerConfig::probes_to_close`]) closes the
//!   breaker; any failure re-opens it.
//!
//! Time is the shard's [`VirtualClock`], advanced by the virtual
//! nanoseconds each served request consumed — never the wall clock — so
//! breaker trajectories are bit-for-bit reproducible under the chaos
//! soak harness.

use crate::fault::VirtualClock;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Where a breaker is in its trip/recover cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Traffic flows normally.
    #[default]
    Closed,
    /// Traffic is steered to host fallback; waiting out the cool-down.
    Open,
    /// Cool-down elapsed; the next request probes the device.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive retryable failures that trip a closed breaker.
    /// Persistent device-down faults trip on the first observation.
    pub failure_threshold: u32,
    /// Virtual nanoseconds an open breaker waits before allowing a
    /// half-open probe.
    pub cooldown_ns: u64,
    /// Successful probes required to close a half-open breaker.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // 50 ms of virtual time ≈ a handful of served requests.
        BreakerConfig { failure_threshold: 3, cooldown_ns: 50_000_000, probes_to_close: 1 }
    }
}

/// One backend's breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    opened_at_ns: u64,
    /// Times this breaker has tripped open.
    pub trips: u64,
    /// Requests steered to host fallback while the breaker was open.
    pub steered: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            opened_at_ns: 0,
            trips: 0,
            steered: 0,
        }
    }

    /// Current state (without applying the cool-down transition).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Applies the cool-down transition at virtual time `now_ns` and
    /// returns the resulting state.
    pub fn poll(&mut self, now_ns: u64) -> BreakerState {
        if self.state == BreakerState::Open
            && now_ns.saturating_sub(self.opened_at_ns) >= self.cfg.cooldown_ns
        {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
        }
        self.state
    }

    /// Records a successful dispatch to this backend.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.probes_to_close {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            // A success observed while open belongs to a request admitted
            // before the trip; it carries no new information.
            BreakerState::Open => {}
        }
    }

    /// Records a dispatch failure. `persistent` marks a fault the retry
    /// loop can never clear (a persistent device-down), which trips the
    /// breaker immediately; retryable exhaustion counts toward the
    /// threshold.
    pub fn on_failure(&mut self, persistent: bool, now_ns: u64) {
        match self.state {
            BreakerState::HalfOpen => self.trip(now_ns),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if persistent || self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now_ns);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ns: u64) {
        self.state = BreakerState::Open;
        self.opened_at_ns = now_ns;
        self.consecutive_failures = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }
}

/// Read-only view of one breaker, as surfaced in the pool report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// The guarded backend.
    pub target: String,
    /// State at snapshot time.
    pub state: BreakerState,
    /// Times the breaker has tripped open.
    pub trips: u64,
    /// Requests steered to host fallback while open.
    pub steered: u64,
}

/// All breakers of one shard, sharing the shard's virtual clock.
///
/// Breakers are created lazily on the first failure, so healthy backends
/// (and the host, which cannot fail) never appear on the board.
#[derive(Debug, Clone)]
pub struct BreakerBoard {
    cfg: BreakerConfig,
    clock: VirtualClock,
    breakers: BTreeMap<String, CircuitBreaker>,
}

impl BreakerBoard {
    /// An empty board.
    pub fn new(cfg: BreakerConfig) -> BreakerBoard {
        BreakerBoard { cfg, clock: VirtualClock::new(), breakers: BTreeMap::new() }
    }

    /// Advances the shard's virtual clock (by a served request's
    /// `virtual_ns`).
    pub fn advance(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The targets an admitted request must steer away from: every
    /// breaker still open after the cool-down transition. Half-open
    /// breakers are *not* included — that is the probe.
    pub fn guard(&mut self) -> BTreeSet<String> {
        let now = self.clock.now_ns();
        let mut forced = BTreeSet::new();
        for (target, b) in &mut self.breakers {
            if b.poll(now) == BreakerState::Open {
                b.steered += 1;
                forced.insert(target.clone());
            }
        }
        forced
    }

    /// Records a successful organic dispatch to `target`. Only existing
    /// breakers are touched: a backend that has never failed needs none.
    pub fn on_success(&mut self, target: &str) {
        if let Some(b) = self.breakers.get_mut(target) {
            b.on_success();
        }
    }

    /// Records an organic dispatch failure on `target`, creating its
    /// breaker on first observation.
    pub fn on_failure(&mut self, target: &str, persistent: bool) {
        let now = self.clock.now_ns();
        self.breakers
            .entry(target.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.cfg))
            .on_failure(persistent, now);
    }

    /// Snapshot of every breaker on the board, in target order.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        self.breakers
            .iter()
            .map(|(target, b)| BreakerSnapshot {
                target: target.clone(),
                state: b.state(),
                trips: b.trips,
                steered: b.steered,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown_ns: 1_000, probes_to_close: 1 }
    }

    #[test]
    fn persistent_failure_trips_immediately() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(true, 100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn retryable_failures_trip_at_threshold_and_successes_reset() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(false, 0);
        b.on_failure(false, 0);
        b.on_success(); // resets the consecutive count
        b.on_failure(false, 0);
        b.on_failure(false, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(false, 0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_then_probe_success_closes() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(true, 0);
        assert_eq!(b.poll(999), BreakerState::Open, "still cooling down");
        assert_eq!(b.poll(1_000), BreakerState::HalfOpen, "cooldown elapsed");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(true, 0);
        assert_eq!(b.poll(1_000), BreakerState::HalfOpen);
        b.on_failure(false, 1_000);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert_eq!(b.poll(1_999), BreakerState::Open, "cooldown restarted at reopen");
        assert_eq!(b.poll(2_000), BreakerState::HalfOpen);
    }

    #[test]
    fn board_guards_open_breakers_only_and_counts_steering() {
        let mut board = BreakerBoard::new(cfg());
        board.on_failure("TABLA", true);
        board.on_success("DECO"); // never failed → no breaker, no-op
        let forced = board.guard();
        assert_eq!(forced.into_iter().collect::<Vec<_>>(), vec!["TABLA".to_string()]);
        assert_eq!(board.snapshot().len(), 1, "healthy backends stay off the board");
        // Past the cooldown the guard lets the probe through.
        board.advance(1_000);
        assert!(board.guard().is_empty(), "half-open probe must not be steered");
        board.on_success("TABLA");
        let snap = board.snapshot();
        assert_eq!(snap[0].state, BreakerState::Closed);
        assert_eq!(snap[0].trips, 1);
        assert_eq!(snap[0].steered, 1);
    }
}
