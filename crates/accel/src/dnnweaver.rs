//! DnnWeaver — an alternate Deep Learning backend (Sharma et al., MICRO
//! 2016: "From high-level deep neural models to FPGAs"; reference 19 of
//! the PolyMath paper's stack comparison, Table II).
//!
//! DnnWeaver generates a template-based accelerator per network: arrays of
//! processing units walking layer slices, with a dataflow optimized for
//! convolution reuse rather than a fixed GEMM core. It accepts the same
//! *layer* granularity as VTA, so PolyMath retargets a DL program to it by
//! swapping one [`pm_lower::AcceleratorSpec`] — the concrete demonstration
//! of the paper's claim that the srDFG "offers a flexible hook that can be
//! translated to these toolchains and frameworks as well as to future
//! accelerator designs" (§VI). The `figures --portability` report compares
//! both backends on the CNN workloads.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::{NodeKind, SrDfg};

/// The DnnWeaver backend (FPGA bitstream on the KCU1500, 150 MHz).
#[derive(Debug, Clone)]
pub struct DnnWeaver {
    /// Processing units (each a MAC lane with local buffering).
    pub pus: usize,
    /// MACs per PU per cycle.
    pub macs_per_pu: usize,
    /// Bytes moved per cycle by the memory interface.
    pub io_bytes_per_cycle: u64,
    /// Per-layer reconfiguration/instruction overhead, cycles.
    pub layer_overhead: u64,
    /// Achieved fraction of peak on convolutions (the template's dataflow
    /// keeps MACs busier than a fixed GEMM array on small-channel layers,
    /// but its peak is lower).
    pub conv_efficiency: f64,
}

impl Default for DnnWeaver {
    fn default() -> Self {
        DnnWeaver {
            pus: 64,
            macs_per_pu: 2,
            io_bytes_per_cycle: 16,
            layer_overhead: 512,
            conv_efficiency: 0.7,
        }
    }
}

impl DnnWeaver {
    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.pus * self.macs_per_pu) as u64
    }

    fn fragment_cycles(&self, frag: &pm_lower::Fragment, graph: &SrDfg) -> u64 {
        let Some(id) = frag.node else { return 0 };
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Reduce(r) => {
                let out = srdfg::graph::space_size(&r.out_space) as u64;
                let red = srdfg::graph::space_size(&r.red_space) as u64;
                match node.name.as_str() {
                    "conv2d" | "matmul" | "matvec" | "dot" => {
                        // The per-layer template adapts its unrolling to the
                        // layer shape, so utilization is flat rather than
                        // channel-dependent.
                        let macs = out * red;
                        ((macs as f64) / (self.macs_per_cycle() as f64 * self.conv_efficiency))
                            .ceil() as u64
                    }
                    _ => (out * red).div_ceil(self.pus as u64),
                }
            }
            NodeKind::Map(m) => {
                let points = srdfg::graph::space_size(&m.out_space) as u64;
                (points * m.kernel.compute_op_count().max(1)).div_ceil(self.pus as u64)
            }
            _ => 0,
        }
    }
}

impl Backend for DnnWeaver {
    fn name(&self) -> &'static str {
        "DnnWeaver"
    }

    fn domain(&self) -> Domain {
        Domain::DeepLearning
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "DnnWeaver",
            Domain::DeepLearning,
            [
                // Layer granularity, like VTA.
                "conv2d",
                "matmul",
                "matvec",
                "dot",
                "pool",
                "sum",
                "max",
                "min",
                "argmax",
                "argmin",
                "map",
                "map.add",
                "map.sub",
                "map.mul",
                "map.relu",
                "map.max2",
                "map.min2",
                "map.copy",
                "map.fill",
                "map.select",
                "map.sigmoid",
                "map.tanh",
                "map.exp",
                "map.div",
                "map.cmp.<",
                "map.cmp.>",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::kcu1500("DnnWeaver")
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, _hints: &WorkloadHints) -> PerfEstimate {
        let mut compute = 0u64;
        let mut layers = 0u64;
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            compute += self.fragment_cycles(frag, graph);
            layers += 1;
        }
        let io_cycles = prog.dma_bytes().div_ceil(self.io_bytes_per_cycle);
        let cycles = compute.max(io_cycles) + layers * self.layer_overhead;
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vta::Vta;
    use pm_lower::{compile_program, lower, TargetMap};

    fn compiled_cnn(backend: &dyn Backend, s: usize) -> pm_lower::CompiledProgram {
        let src = pm_workloads::programs::resnet18(s);
        let (prog, _) = pmlang::frontend(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DeepLearning);
        let mut targets = TargetMap::host_only(host);
        targets.set(backend.accel_spec());
        lower(&mut g, &targets).unwrap();
        compile_program(&g, &targets).unwrap()
    }

    #[test]
    fn same_program_retargets_without_changes() {
        // The identical PMLang source lowers for both DL backends.
        let dw = DnnWeaver::default();
        let vta = Vta::default();
        let c_dw = compiled_cnn(&dw, 32);
        let c_vta = compiled_cnn(&vta, 32);
        let p_dw = c_dw.partition(Some(Domain::DeepLearning)).unwrap();
        let p_vta = c_vta.partition(Some(Domain::DeepLearning)).unwrap();
        assert_eq!(p_dw.target, "DnnWeaver");
        assert_eq!(p_vta.target, "TVM-VTA");
        // Both stay at layer granularity with the same layer count.
        let count =
            |p: &pm_lower::AccProgram, op: &str| p.fragments.iter().filter(|f| f.op == op).count();
        assert_eq!(count(p_dw, "conv2d"), count(p_vta, "conv2d"));
        assert!(count(p_dw, "conv2d") >= 17);
    }

    #[test]
    fn first_layer_shapes_favor_dnnweaver() {
        // A 3-input-channel conv underutilizes VTA's 16×16 GEMM rows but
        // not DnnWeaver's adaptive template.
        let src = "main(input float img[3][16][16], param float w[32][3][3][3],
              output float y[32][14][14]) {
             index oc[0:31], ic[0:2], i[0:13], j[0:13], r[0:2], t[0:2];
             DL: y[oc][i][j] = sum[ic][r][t](w[oc][ic][r][t]*img[ic][i+r][j+t]);
         }";
        let (prog, _) = pmlang::frontend(src).unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DeepLearning);
        let h = WorkloadHints::default();
        let price = |backend: &dyn Backend| -> u64 {
            let mut graph = g.clone();
            let mut targets = TargetMap::host_only(host.clone());
            targets.set(backend.accel_spec());
            lower(&mut graph, &targets).unwrap();
            let compiled = compile_program(&graph, &targets).unwrap();
            backend
                .estimate(
                    compiled.partition(Some(Domain::DeepLearning)).unwrap(),
                    &compiled.graph,
                    &h,
                )
                .cycles
        };
        let dw_cycles = price(&DnnWeaver::default());
        let vta_cycles = price(&Vta::default());
        // Per-MAC, VTA has 2× the peak but ~19% utilization here; the
        // 128-MAC adaptive template at 70% is faster on this layer.
        assert!(dw_cycles < vta_cycles, "dw {dw_cycles} vs vta {vta_cycles}");
    }

    #[test]
    fn estimates_scale_with_network_size() {
        // At tiny images the 45 MB of weights dominates the DMA bound, so
        // compare sizes where compute is binding.
        let dw = DnnWeaver::default();
        let small = compiled_cnn(&dw, 64);
        let big = compiled_cnn(&dw, 160);
        let h = WorkloadHints::default();
        let cs = dw
            .estimate(small.partition(Some(Domain::DeepLearning)).unwrap(), &small.graph, &h)
            .cycles;
        let cb =
            dw.estimate(big.partition(Some(Domain::DeepLearning)).unwrap(), &big.graph, &h).cycles;
        assert!(cb > cs * 2, "{cb} vs {cs}");
    }
}
