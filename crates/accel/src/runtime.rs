//! Resilient multi-invocation execution on the SoC.
//!
//! [`Soc::run_trajectory`] drives a compiled program through a sequence of
//! invocations the way the host manager would: before each invocation it
//! *checkpoints every state edge at the domain boundary* (the `state`
//! modifier marks exactly the data that persists across invocations —
//! paper §II.A), dispatches the schedule under fault injection, and, when
//! faults hit, discards the faulted invocation's partial effects by
//! restoring the checkpoint and replaying the invocation on the repaired
//! schedule. Persistent outages re-lower the downed device's fragments
//! onto the host mid-trajectory; the checkpoint carries the live state
//! tensors onto the re-lowered graph, so degradation never loses model
//! state.
//!
//! Because fault draws are deterministic per `(seed, invocation)` and the
//! re-lowered graph computes node-for-node identical values, a chaos
//! trajectory's outputs are *bit-identical* to the fault-free run — the
//! property the checkpoint/replay determinism test and the fuzz chaos
//! route pin down.

use crate::error::SocError;
use crate::fault::ChaosConfig;
use crate::model::{PerfEstimate, WorkloadHints};
use crate::soc::{ChaosOutcome, FallbackRecord, Soc, SocReport};
use pm_lower::{CompiledProgram, TargetMap};
use pmlang::Domain;
use srdfg::{Machine, SrDfg, Tensor};
use std::collections::HashMap;

/// Inputs of one trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryInputs<'a> {
    /// Boundary `input`/`param` feeds, reused for every invocation.
    pub feeds: &'a HashMap<String, Tensor>,
    /// Initial values for `state` variables (unset states start at zero).
    pub state_seeds: &'a [(String, Tensor)],
    /// How many invocations to run (0 is treated as 1).
    pub invocations: u64,
}

/// The account of a full trajectory.
#[derive(Debug, Clone)]
pub struct TrajectoryOutcome {
    /// Outputs of the final invocation.
    pub outputs: HashMap<String, Tensor>,
    /// The SoC report of the final invocation's dispatch.
    pub last: SocReport,
    /// Aggregate cost across all invocations.
    pub total: PerfEstimate,
    /// Invocations executed.
    pub invocations: u64,
    /// Invocations that faulted, were rolled back to their checkpoint and
    /// replayed.
    pub replayed_invocations: u64,
    /// State-edge checkpoints taken (one per invocation).
    pub checkpoints: u64,
    /// Total faults injected across the trajectory.
    pub faults_injected: u64,
    /// Total retry dispatches across the trajectory.
    pub retries: u64,
    /// Total DMA bytes re-transferred after faults.
    pub retried_dma_bytes: u64,
    /// Total virtual manager time across the trajectory.
    pub virtual_ns: u64,
    /// Devices taken down and re-lowered onto the host (across all
    /// invocations, in failure order).
    pub fallbacks: Vec<FallbackRecord>,
}

/// The effective pre-invocation value of every state edge: the live
/// tensor when one exists, else the zero tensor the interpreter would
/// fabricate. Capturing zeros explicitly makes restore-after-rollback
/// correct even before the first invocation has populated the state map.
fn checkpoint_states(machine: &Machine) -> Vec<(String, Tensor)> {
    let graph: &SrDfg = machine.graph();
    graph
        .boundary_inputs
        .iter()
        .filter(|&&e| graph.edge(e).meta.modifier == srdfg::Modifier::State)
        .map(|&e| {
            let meta = &graph.edge(e).meta;
            let value = machine
                .state(&meta.name)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(meta.dtype, meta.shape.clone()));
            (meta.name.clone(), value)
        })
        .collect()
}

fn restore_states(machine: &mut Machine, checkpoint: &[(String, Tensor)]) {
    for (name, value) in checkpoint {
        machine.set_state(name, value.clone());
    }
}

impl Soc {
    /// Runs `inputs.invocations` invocations of `compiled` under the given
    /// chaos configuration, with state-edge checkpointing and
    /// deterministic replay of faulted invocations.
    ///
    /// `targets` enables host-fallback re-lowering when a device goes
    /// down; with `None`, persistent faults surface as structured errors.
    ///
    /// # Errors
    ///
    /// Everything [`Soc::run_chaos`] returns, plus
    /// [`SocError::Execution`] when the interpreter rejects an invocation
    /// (missing feeds, shape mismatches).
    pub fn run_trajectory(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        cfg: &ChaosConfig,
        targets: Option<&TargetMap>,
        inputs: &TrajectoryInputs<'_>,
    ) -> Result<TrajectoryOutcome, SocError> {
        let invocations = inputs.invocations.max(1);
        let mut current: Option<CompiledProgram> = None;
        let mut machine = Machine::new((*compiled.graph).clone());
        for (name, value) in inputs.state_seeds {
            machine.set_state(name, value.clone());
        }

        let mut outputs = HashMap::new();
        let mut last: Option<SocReport> = None;
        let mut total = PerfEstimate::default();
        let mut replayed = 0u64;
        let mut checkpoints = 0u64;
        let mut faults_injected = 0u64;
        let mut retries = 0u64;
        let mut retried_dma_bytes = 0u64;
        let mut virtual_ns = 0u64;
        let mut fallbacks: Vec<FallbackRecord> = Vec::new();

        for k in 0..invocations {
            cfg.budget.charge("invoke", 1).map_err(SocError::BudgetExhausted)?;
            // Checkpoint the state edges at the domain boundary before
            // dispatching, so a faulted invocation can be rolled back and
            // replayed deterministically.
            let checkpoint = checkpoint_states(&machine);
            checkpoints += 1;

            let inv_cfg = cfg.for_invocation(k);
            let prog = current.as_ref().unwrap_or(compiled);
            let ChaosOutcome { report, relowered } =
                self.run_chaos(prog, hints, &inv_cfg, targets)?;

            if let Some(re) = relowered {
                // A device went down mid-trajectory: move execution onto
                // the re-lowered graph, carrying the checkpointed state
                // across the substitution.
                machine = Machine::new((*re.graph).clone());
                restore_states(&mut machine, &checkpoint);
                current = Some(re);
            }

            let exec_err =
                |e: srdfg::ExecError| SocError::Execution { invocation: k, detail: e.to_string() };
            if report.faults_injected > 0 {
                // The faulted dispatch's partial effects are discarded:
                // run the doomed invocation, roll its state back to the
                // checkpoint, and replay it clean.
                let _ = machine.invoke(inputs.feeds).map_err(exec_err)?;
                restore_states(&mut machine, &checkpoint);
                replayed += 1;
            }
            outputs = machine.invoke(inputs.feeds).map_err(exec_err)?;

            total = total.then(&report.total);
            faults_injected += report.faults_injected;
            retries += report.retries;
            retried_dma_bytes += report.retried_dma_bytes;
            virtual_ns = virtual_ns.saturating_add(report.virtual_ns);
            for f in &report.fallbacks {
                if !fallbacks.iter().any(|seen| seen.target == f.target) {
                    fallbacks.push(f.clone());
                }
            }
            last = Some(report);
        }

        let last = last.ok_or(SocError::Execution {
            invocation: 0,
            detail: "trajectory ran zero invocations (internal error)".to_string(),
        })?;
        Ok(TrajectoryOutcome {
            outputs,
            last,
            total,
            invocations,
            replayed_invocations: replayed,
            checkpoints,
            faults_injected,
            retries,
            retried_dma_bytes,
            virtual_ns,
            fallbacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::deco::Deco;
    use crate::fault::ChaosProfile;
    use crate::tabla::Tabla;
    use pm_lower::{compile_program, lower};

    /// A stateful two-domain program: a DSP smoother feeding a DA
    /// accumulator whose `state` persists across invocations.
    fn stateful_compiled() -> (CompiledProgram, TargetMap) {
        let src = "main(input float sig[8], param float taps[2], state float acc[7],
              output float out[7]) {
             index i[0:6], k[0:1];
             float feat[7];
             DSP: feat[i] = sum[k](taps[k]*sig[i+k]);
             DA: acc[i] = acc[i] + feat[i];
             DA: out[i] = acc[i];
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = crate::cpu::Cpu::default().accel_spec();
        let mut targets = TargetMap::host_only(host);
        targets.set(Deco::default().accel_spec());
        targets.set(Tabla::default().accel_spec());
        lower(&mut g, &targets).unwrap();
        (compile_program(&g, &targets).unwrap(), targets)
    }

    fn soc() -> Soc {
        let mut s = Soc::new();
        s.attach(Deco::default());
        s.attach(Tabla::default());
        s
    }

    fn feeds() -> HashMap<String, Tensor> {
        use pmlang::DType;
        let mut f = HashMap::new();
        f.insert(
            "sig".to_string(),
            Tensor::from_vec(DType::Float, vec![8], (0..8).map(|i| 0.5 + i as f64).collect())
                .unwrap(),
        );
        f.insert(
            "taps".to_string(),
            Tensor::from_vec(DType::Float, vec![2], vec![0.75, 0.25]).unwrap(),
        );
        f
    }

    fn run_with(cfg: &ChaosConfig) -> TrajectoryOutcome {
        let (compiled, targets) = stateful_compiled();
        let f = feeds();
        let inputs = TrajectoryInputs { feeds: &f, state_seeds: &[], invocations: 4 };
        soc().run_trajectory(&compiled, &HashMap::new(), cfg, Some(&targets), &inputs).unwrap()
    }

    #[test]
    fn checkpoint_replay_keeps_chaos_outputs_identical_to_clean_run() {
        let clean = run_with(&ChaosConfig::off());
        assert_eq!(clean.replayed_invocations, 0);
        assert_eq!(clean.checkpoints, 4);

        // Find a transient seed that actually faults, then require the
        // replayed trajectory to match the clean one bit-for-bit.
        let mut faulted = None;
        for seed in 0..64u64 {
            let out = run_with(&ChaosConfig::new(seed, ChaosProfile::Transient));
            if out.faults_injected > 0 {
                faulted = Some(out);
                break;
            }
        }
        let faulted = faulted.expect("no transient fault in 64 seeds");
        assert!(faulted.replayed_invocations > 0, "faulted invocations must be replayed");
        assert_eq!(faulted.fallbacks.len(), 0, "transient faults never down a device");
        assert_eq!(clean.outputs.len(), faulted.outputs.len());
        for (name, t) in &clean.outputs {
            assert_eq!(Some(t), faulted.outputs.get(name), "output `{name}` diverged");
        }
    }

    #[test]
    fn trajectory_is_deterministic_per_seed() {
        let cfg = ChaosConfig::new(11, ChaosProfile::Transient);
        let a = run_with(&cfg);
        let b = run_with(&cfg);
        assert_eq!(a.last, b.last);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.virtual_ns, b.virtual_ns);
        assert_eq!(a.outputs.len(), b.outputs.len());
        for (name, t) in &a.outputs {
            assert_eq!(Some(t), b.outputs.get(name));
        }
    }

    #[test]
    fn mid_trajectory_outage_carries_state_onto_the_host() {
        let clean = run_with(&ChaosConfig::off());
        let out = run_with(&ChaosConfig::off().with_down("TABLA").with_down("DECO"));
        assert_eq!(out.fallbacks.len(), 2);
        assert!(out.last.partitions.iter().all(|p| p.target == "Xeon E-2176G"));
        // The accumulator state survived the substitution: outputs match
        // the healthy run exactly.
        for (name, t) in &clean.outputs {
            assert_eq!(Some(t), out.outputs.get(name), "output `{name}` diverged");
        }
    }

    #[test]
    fn state_seeds_are_applied() {
        use pmlang::DType;
        let (compiled, targets) = stateful_compiled();
        let f = feeds();
        let seed = vec![(
            "acc".to_string(),
            Tensor::from_vec(DType::Float, vec![7], vec![100.0; 7]).unwrap(),
        )];
        let inputs = TrajectoryInputs { feeds: &f, state_seeds: &seed, invocations: 1 };
        let out = soc()
            .run_trajectory(
                &compiled,
                &HashMap::new(),
                &ChaosConfig::off(),
                Some(&targets),
                &inputs,
            )
            .unwrap();
        let o = out.outputs.get("out").unwrap().as_real_slice().unwrap().to_vec();
        assert!(o.iter().all(|v| *v > 100.0), "seeded state must be visible: {o:?}");
    }
}
