//! Analytic model of the baseline CPU — a Xeon E-2176G (6 cores, 3.7 GHz)
//! running the paper's optimized native stacks (ACADO, GraphMat, FFTW3,
//! MLPack/OpenBLAS, TensorFlow; Table V).
//!
//! The model is a per-class throughput / memory roofline: cache-blocked
//! dense kernels approach multi-core SIMD peak, streaming linear algebra is
//! DRAM-bandwidth-bound, elementwise maps vectorize but stream, and
//! branchy/irregular code retires a couple of scalar ops per cycle on one
//! core. Each distinct kernel also pays a fixed dispatch overhead. The
//! achieved-throughput constants are the usual engineering numbers for a
//! 6-core Coffee Lake running well-tuned libraries; EXPERIMENTS.md compares
//! the resulting *ratios* against the paper's figures.

use crate::backend::Backend;
use crate::classify::{profile, WorkProfile};
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec};
use pmlang::Domain;
use srdfg::SrDfg;

/// The Xeon host model.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Achieved dense-kernel throughput (FLOP/s): AVX2 FMA across 6 cores
    /// at realistic (not peak) efficiency.
    pub dense_flops: f64,
    /// Achieved streaming linear-algebra throughput (bandwidth-bound).
    pub streaming_flops: f64,
    /// Achieved elementwise-map throughput.
    pub vector_flops: f64,
    /// Achieved throughput for conditional/custom reductions.
    pub irregular_flops: f64,
    /// Scalar dataflow-node retirement rate.
    pub scalar_flops: f64,
    /// Transcendental (libm) throughput.
    pub nonlinear_flops: f64,
    /// Sustained DRAM bandwidth (bytes/s).
    pub mem_bandwidth: f64,
    /// Fixed dispatch cost per kernel (seconds).
    pub kernel_overhead_s: f64,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu {
            dense_flops: 9.0e10,       // 90 GFLOP/s cache-blocked GEMM/conv
            streaming_flops: 1.0e10,   // 10 GFLOP/s BLAS-2 (bandwidth bound)
            vector_flops: 1.4e10,      // 14 GFLOP/s streaming maps
            irregular_flops: 3.0e9,    // 3 Gop/s branchy reductions
            scalar_flops: 1.5e9,       // 1.5 Gop/s pointer-chasing dataflow
            nonlinear_flops: 1.2e9,    // 1.2 Gop/s libm transcendentals
            mem_bandwidth: 3.5e10,     // 35 GB/s dual-channel DDR4
            kernel_overhead_s: 4.0e-8, // 40 ns per loop-nest dispatch
        }
    }
}

impl Cpu {
    /// Seconds for one invocation of a profiled partition.
    pub fn seconds_for(&self, p: &WorkProfile, hints: &WorkloadHints) -> f64 {
        let mut dense = p.dense_ops as f64;
        let mut streaming = p.streaming_ops as f64;
        let mut vector = p.vector_ops as f64;
        let mut irregular = p.irregular_ops as f64;
        // Sparse workloads: the native stack (GraphMat etc.) only touches
        // real edges; rescale the dominant classes by effective/dense.
        if let Some(eff) = hints.effective_ops {
            let total = p.total_ops().max(1) as f64;
            let ratio = eff as f64 / total;
            dense *= ratio;
            streaming *= ratio;
            vector *= ratio;
            irregular *= ratio;
        }
        let mut nonlinear = p.nonlinear_ops as f64;
        if let Some(eff) = hints.effective_ops {
            let total = p.total_ops().max(1) as f64;
            nonlinear *= eff as f64 / total;
        }
        let compute = dense / self.dense_flops
            + streaming / self.streaming_flops
            + vector / self.vector_flops
            + irregular / self.irregular_flops
            + nonlinear / self.nonlinear_flops
            + p.scalar_ops as f64 / self.scalar_flops;
        let bytes = hints.effective_bytes.unwrap_or(p.touched_bytes.max(p.boundary_bytes)) as f64;
        let memory = bytes / self.mem_bandwidth;
        let raw = compute.max(memory) + p.kernels as f64 * self.kernel_overhead_s;
        // Native-stack inefficiency applies to the whole invocation: an
        // interpreted/framework baseline is slow on compute and memory alike.
        raw * hints.native_factor.unwrap_or(1.0)
    }
}

impl Backend for Cpu {
    fn name(&self) -> &'static str {
        "Xeon E-2176G"
    }

    fn domain(&self) -> Domain {
        // The host serves every domain; the nominal value is unused.
        Domain::DataAnalytics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics)
    }

    fn hw(&self) -> HwConfig {
        HwConfig::xeon()
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let p = profile(prog, graph);
        let seconds = self.seconds_for(&p, hints);
        let hw = self.hw();
        PerfEstimate {
            cycles: (seconds * hw.freq_hz) as u64,
            seconds,
            energy_j: seconds * hw.power_w,
            dma_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, TargetMap};

    fn estimate_src(src: &str) -> PerfEstimate {
        let prog = pmlang::parse(src).unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let targets = TargetMap::host_only(Cpu::default().accel_spec());
        let compiled = compile_program(&g, &targets).unwrap();
        Cpu::default().estimate(&compiled.partitions[0], &g, &WorkloadHints::default())
    }

    #[test]
    fn dense_work_is_fast_per_op() {
        let dense = estimate_src(
            "main(input float A[32][32], input float B[32][32], output float C[32][32]) {
                 index i[0:31], j[0:31], k[0:31];
                 C[i][j] = sum[k](A[i][k]*B[k][j]);
             }",
        );
        let irregular = estimate_src(
            "main(input float A[64][64], output float s) {
                 index i[0:63], j[0:63];
                 s = sum[i][j: j != i](A[i][j] * A[j][i]);
             }",
        );
        // Similar op counts, very different achieved throughput.
        assert!(irregular.seconds > dense.seconds * 3.0);
    }

    #[test]
    fn memory_roofline_applies() {
        // A trivial copy of a large tensor is bandwidth-bound.
        let est = estimate_src(
            "main(input float x[1000000], output float y[1000000]) {
                 index i[0:999999];
                 y[i] = x[i];
             }",
        );
        // 8 MB at 35 GB/s ≈ 229 µs.
        assert!(est.seconds > 2.0e-4, "{}", est.seconds);
        assert!(est.seconds < 1.0e-3, "{}", est.seconds);
    }

    #[test]
    fn sparse_hint_reduces_time() {
        let src = "main(input float A[64][64], state float d[64], output float o[64]) {
             index u[0:63], v[0:63];
             float c[64];
             c[v] = min[u](d[u] + A[u][v]);
             d[v] = c[v] < d[v] ? c[v] : d[v];
             o[v] = d[v];
         }";
        let prog = pmlang::parse(src).unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let targets = TargetMap::host_only(Cpu::default().accel_spec());
        let compiled = compile_program(&g, &targets).unwrap();
        let cpu = Cpu::default();
        let dense = cpu.estimate(&compiled.partitions[0], &g, &WorkloadHints::default());
        let sparse = cpu.estimate(
            &compiled.partitions[0],
            &g,
            &WorkloadHints {
                effective_ops: Some(200),
                effective_bytes: Some(2048),
                ..Default::default()
            },
        );
        assert!(sparse.seconds < dense.seconds);
    }

    #[test]
    fn energy_tracks_time_at_80w() {
        let est = estimate_src(
            "main(input float x[1024], output float y) {
                 index i[0:1023];
                 y = sum[i](x[i]*x[i]);
             }",
        );
        assert!((est.energy_j / est.seconds - 80.0).abs() < 1e-9);
    }
}
