//! The multi-acceleration SoC (paper §V.A.3, "Multi-acceleration").
//!
//! "All accelerators are cascaded as a single System On Chip, comprised of
//! memory and a host. A light-weight manager executes on the host, ensuring
//! data dependencies between different accelerators and initiating DMA
//! transfers between DRAM and local accelerator memory."
//!
//! [`Soc::run`] executes one invocation of a compiled multi-domain program:
//! each partition runs on its backend (or on the host), every `load`/
//! `store` fragment becomes a DMA transfer, and the host manager adds its
//! own dispatch overhead. Kernels of an end-to-end application are
//! data-dependent (sense → perceive → act), so partitions execute
//! sequentially — which is precisely why Amdahl's law bites when only some
//! domains are accelerated (paper Fig. 10-12).
//!
//! The dispatch loop is *resilient* (DESIGN.md §10): a [`ChaosConfig`]
//! threads a deterministic fault plan through every backend, fragments are
//! retried under exponential backoff on a virtual clock, and a device that
//! keeps failing is marked down and its work re-lowered onto the host via
//! Algorithm 1 ([`pm_lower::relower_without`]). With
//! [`ChaosConfig::off()`] — the default for [`Soc::run`] — the account is
//! identical to a fault-free run.

use crate::backend::{Backend, DmaModel};
use crate::cpu::Cpu;
use crate::error::SocError;
use crate::fault::{ChaosConfig, ChaosProfile, FaultEvent, FaultKind, VirtualClock};
use crate::model::{PerfEstimate, WorkloadHints};
use pm_lower::{CompiledProgram, FragmentKind, TargetMap};
use pmlang::Domain;
use std::collections::HashMap;

/// Host-manager dispatch overhead per fragment, virtual nanoseconds.
const DISPATCH_NS: u64 = 2_000;
/// Fault events recorded verbatim per partition; beyond this only the
/// counters grow (`faults_seen` stays exact).
const MAX_RECORDED_FAULTS: usize = 32;

/// Per-partition result within a SoC run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Target name that executed the partition.
    pub target: String,
    /// The partition's domain (`None` = host glue).
    pub domain: Option<Domain>,
    /// Compute estimate.
    pub compute: PerfEstimate,
    /// DMA estimate for this partition's transfers (including re-issued
    /// transfers after DMA faults).
    pub dma: PerfEstimate,
    /// Total fragment dispatch attempts (0 for host partitions, which the
    /// manager does not dispatch over the fabric).
    pub attempts: u64,
    /// Dispatches beyond the first attempt of each fragment.
    pub retries: u64,
    /// Faults injected into this partition (exact count; `faults` below
    /// records at most the first [`MAX_RECORDED_FAULTS`] verbatim).
    pub faults_seen: u64,
    /// The recorded fault events.
    pub faults: Vec<FaultEvent>,
    /// DMA bytes re-transferred after corruption/truncation faults.
    pub retried_dma_bytes: u64,
    /// Virtual time the manager spent dispatching this partition
    /// (transfers, stall deadlines, backoff).
    pub virtual_ns: u64,
}

/// One accelerator taken out of the run and re-lowered onto the host.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackRecord {
    /// The downed target.
    pub target: String,
    /// The fault that took it down.
    pub fault: FaultKind,
    /// Fragment index that exhausted its budget (0 for outages declared
    /// before dispatch).
    pub fragment: usize,
    /// The fragment's operation (`<declared>` for pre-dispatch outages).
    pub op: String,
    /// Dispatch attempts made before giving up (0 for declared outages).
    pub attempts: u32,
}

/// The end-to-end account of one program invocation on the SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct SocReport {
    /// Per-partition breakdown.
    pub partitions: Vec<PartitionReport>,
    /// Total wall-clock/energy for the invocation.
    pub total: PerfEstimate,
    /// Share of total time spent in communication (DMA).
    pub comm_fraction: f64,
    /// The chaos profile this run executed under.
    pub profile: ChaosProfile,
    /// The chaos seed (0 when chaos is off).
    pub chaos_seed: u64,
    /// Total faults injected, including those on partitions that were
    /// subsequently re-lowered away.
    pub faults_injected: u64,
    /// Total retry dispatches.
    pub retries: u64,
    /// Total DMA bytes re-transferred after faults.
    pub retried_dma_bytes: u64,
    /// Total virtual manager time (dispatch + stalls + backoff).
    pub virtual_ns: u64,
    /// Accelerators taken down and re-lowered onto the host, in the order
    /// they failed.
    pub fallbacks: Vec<FallbackRecord>,
}

/// Result of a chaos run: the report plus the re-lowered program, when
/// host fallback had to rewrite the partitioning.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The account of the (final, successful) dispatch schedule.
    pub report: SocReport,
    /// The host-fallback recompilation, if any device went down. Its
    /// graph computes bit-identical results to the original.
    pub relowered: Option<CompiledProgram>,
}

/// A fragment that exhausted its retry/deadline budget (internal).
#[derive(Debug, Clone)]
struct DownInfo {
    target: String,
    fragment: usize,
    op: String,
    attempts: u32,
    fault: FaultKind,
    spent_ns: u64,
    budget_exceeded: bool,
    /// Counters from the aborted partition, carried into the final report.
    faults_seen: u64,
    retries: u64,
    retried_dma_bytes: u64,
}

impl DownInfo {
    fn record(&self) -> FallbackRecord {
        FallbackRecord {
            target: self.target.clone(),
            fault: self.fault,
            fragment: self.fragment,
            op: self.op.clone(),
            attempts: self.attempts,
        }
    }

    fn as_error(&self, budget_ns: u64) -> SocError {
        if self.budget_exceeded {
            SocError::DeadlineExceeded {
                target: self.target.clone(),
                fragment: self.fragment,
                op: self.op.clone(),
                budget_ns,
                spent_ns: self.spent_ns,
            }
        } else {
            SocError::RetriesExhausted {
                target: self.target.clone(),
                fragment: self.fragment,
                op: self.op.clone(),
                attempts: self.attempts,
                fault: self.fault,
            }
        }
    }
}

enum PartSim {
    Done(PartitionReport),
    Down(DownInfo),
}

enum Round {
    Done(Vec<PartitionReport>),
    Downs(Vec<DownInfo>),
}

/// Counters carried across fallback rounds (internal).
#[derive(Debug, Clone, Copy, Default)]
struct Carry {
    faults_seen: u64,
    retries: u64,
    retried_dma_bytes: u64,
    virtual_ns: u64,
}

impl Carry {
    fn absorb(&mut self, info: &DownInfo) {
        self.faults_seen += info.faults_seen;
        self.retries += info.retries;
        self.retried_dma_bytes += info.retried_dma_bytes;
        self.virtual_ns += info.spent_ns;
    }
}

/// A host plus a set of cascaded accelerator backends.
pub struct Soc {
    backends: Vec<Box<dyn Backend>>,
    host: Cpu,
    dma: DmaModel,
    /// Energy per DMA byte (interconnect + DRAM access), joules.
    dma_energy_per_byte: f64,
    /// Host-manager power draw while orchestrating, watts.
    manager_power_w: f64,
    /// Optional lowering template cache for fault-recovery re-lowering.
    /// When set (usually to the compiling driver's cache handle), a
    /// device-down re-lower instantiates the templates the original
    /// compilation populated instead of re-expanding under recovery
    /// latency pressure.
    template_cache: Option<srdfg::TemplateCache>,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("backends", &self.backends.iter().map(|b| b.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Soc {
    fn default() -> Self {
        Soc::new()
    }
}

impl Soc {
    /// Creates a SoC with only the host CPU.
    pub fn new() -> Self {
        Soc {
            backends: Vec::new(),
            host: Cpu::default(),
            dma: DmaModel::default(),
            dma_energy_per_byte: 5.0e-11, // 50 pJ/byte
            manager_power_w: 5.0,
            template_cache: None,
        }
    }

    /// Shares a lowering template cache (typically the compiler driver's)
    /// with the fault-recovery path; see [`pm_lower::relower_without_cached`].
    pub fn with_template_cache(&mut self, cache: srdfg::TemplateCache) -> &mut Self {
        self.template_cache = Some(cache);
        self
    }

    /// Attaches an accelerator backend (replacing any previous backend of
    /// the same name).
    pub fn attach(&mut self, backend: impl Backend + 'static) -> &mut Self {
        let name = backend.accel_spec().name;
        self.backends.retain(|b| b.accel_spec().name != name);
        self.backends.push(Box::new(backend));
        self
    }

    /// The first backend serving `domain`, if attached.
    pub fn backend(&self, domain: Domain) -> Option<&dyn Backend> {
        self.backends.iter().find(|b| b.domain() == domain).map(|b| b.as_ref())
    }

    /// The backend with the given target name, if attached.
    pub fn backend_by_name(&self, name: &str) -> Option<&dyn Backend> {
        self.backends.iter().find(|b| b.accel_spec().name == name).map(|b| b.as_ref())
    }

    /// The host CPU model.
    pub fn host(&self) -> &Cpu {
        &self.host
    }

    /// Names of the attached backends (target-spec names, attach order).
    pub fn attached_names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.accel_spec().name).collect()
    }

    /// Estimates one invocation of `compiled`, with per-domain workload
    /// hints (sparse sizes etc.).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MissingBackend`] when a partition was compiled
    /// for an accelerator that is not attached (with a "did you mean"
    /// suggestion), or [`SocError::MalformedFragment`] when a fragment
    /// violates the DMA marshalling contract.
    pub fn run(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
    ) -> Result<SocReport, SocError> {
        self.run_plain(compiled, hints, false)
    }

    /// Like [`Soc::run`] but pricing each accelerated partition at its
    /// hand-optimized ("expert") implementation — the paper's Fig. 9/12
    /// optimal baseline. Host partitions are unchanged (the CPU baseline
    /// is already the native stack).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Soc::run`].
    pub fn run_expert(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
    ) -> Result<SocReport, SocError> {
        self.run_plain(compiled, hints, true)
    }

    fn run_plain(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        expert: bool,
    ) -> Result<SocReport, SocError> {
        match self.dispatch(compiled, hints, expert, &ChaosConfig::off())? {
            Round::Done(parts) => {
                Ok(Self::assemble(parts, ChaosProfile::Off, 0, Vec::new(), Carry::default()))
            }
            // Unreachable by construction — the off plan injects nothing —
            // but surfaced as an error rather than a panic.
            Round::Downs(_) => Err(SocError::Relower {
                detail: "device marked down under the off chaos profile (internal error)".into(),
            }),
        }
    }

    /// Runs one invocation under fault injection with host-fallback
    /// re-lowering.
    ///
    /// Devices declared down (via [`ChaosConfig::force_down`] or the
    /// hostile profile's persistent-outage draw) are re-lowered away
    /// before dispatch; devices that exhaust a fragment's retry or
    /// deadline budget are marked down and re-lowered mid-run. `targets`
    /// is the map the program was compiled against — required for
    /// fallback; pass `None` to turn exhaustion into a structured error
    /// instead.
    ///
    /// The whole schedule is deterministic: the same `compiled`, config
    /// and attached backends produce an identical [`SocReport`].
    ///
    /// # Errors
    ///
    /// All [`Soc::run`] conditions, plus [`SocError::RetriesExhausted`] /
    /// [`SocError::DeadlineExceeded`] / [`SocError::FallbackUnavailable`]
    /// when a device fails without `targets`, and [`SocError::Relower`]
    /// if fallback recompilation fails.
    pub fn run_chaos(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        cfg: &ChaosConfig,
        targets: Option<&TargetMap>,
    ) -> Result<ChaosOutcome, SocError> {
        let mut down: Vec<String> = Vec::new();
        let mut fallbacks: Vec<FallbackRecord> = Vec::new();
        let mut carry = Carry::default();

        // Persistent outages known before dispatch: forced downs and the
        // hostile profile's device-down draw. Only targets the program
        // actually uses matter.
        for b in &self.backends {
            let name = b.accel_spec().name;
            let declared = cfg.force_down.contains(&name) || cfg.plan.device_down(&name);
            if declared && compiled.partitions.iter().any(|p| p.target == name) {
                fallbacks.push(FallbackRecord {
                    target: name.clone(),
                    fault: FaultKind::DeviceDown { persistent: true },
                    fragment: 0,
                    op: "<declared>".to_string(),
                    attempts: 0,
                });
                down.push(name);
            }
        }
        let mut relowered: Option<CompiledProgram> = None;
        if let Some(first) = down.first() {
            let fail = SocError::FallbackUnavailable {
                target: first.clone(),
                detail: "no target map provided for host re-lowering".to_string(),
            };
            relowered = Some(self.relower_or(compiled, targets, &down, fail)?);
        }

        // Each round either completes or marks at least one more target
        // down, so the loop is bounded by the number of backends; the
        // counter is a defensive backstop.
        for _ in 0..=self.backends.len() + 1 {
            cfg.budget.charge("dispatch", 1).map_err(SocError::BudgetExhausted)?;
            let prog = relowered.as_ref().unwrap_or(compiled);
            match self.dispatch(prog, hints, false, cfg)? {
                Round::Done(parts) => {
                    let report = Self::assemble(
                        parts,
                        cfg.plan.profile(),
                        cfg.plan.seed(),
                        fallbacks,
                        carry,
                    );
                    return Ok(ChaosOutcome { report, relowered });
                }
                Round::Downs(infos) => {
                    let fail = infos
                        .first()
                        .map(|i| i.as_error(cfg.fragment_budget_ns))
                        .unwrap_or(SocError::Relower { detail: "empty down set".into() });
                    for info in infos {
                        carry.absorb(&info);
                        if !down.contains(&info.target) {
                            down.push(info.target.clone());
                        }
                        fallbacks.push(info.record());
                    }
                    relowered = Some(self.relower_or(compiled, targets, &down, fail)?);
                }
            }
        }
        Err(SocError::Relower { detail: "host-fallback loop did not converge".to_string() })
    }

    fn relower_or(
        &self,
        compiled: &CompiledProgram,
        targets: Option<&TargetMap>,
        down: &[String],
        fail: SocError,
    ) -> Result<CompiledProgram, SocError> {
        match targets {
            None => Err(fail),
            Some(t) => {
                pm_lower::relower_without_cached(compiled, t, down, self.template_cache.as_ref())
                    .map_err(|e| SocError::Relower { detail: e.to_string() })
            }
        }
    }

    fn assemble(
        partitions: Vec<PartitionReport>,
        profile: ChaosProfile,
        chaos_seed: u64,
        fallbacks: Vec<FallbackRecord>,
        carry: Carry,
    ) -> SocReport {
        let mut total = PerfEstimate::default();
        let mut dma_seconds = 0.0f64;
        let mut faults_injected = carry.faults_seen;
        let mut retries = carry.retries;
        let mut retried_dma_bytes = carry.retried_dma_bytes;
        let mut virtual_ns = carry.virtual_ns;
        for report in &partitions {
            total = total.then(&report.compute).then(&report.dma);
            dma_seconds += report.dma.seconds;
            faults_injected += report.faults_seen;
            retries += report.retries;
            retried_dma_bytes += report.retried_dma_bytes;
            virtual_ns = virtual_ns.saturating_add(report.virtual_ns);
        }
        let comm_fraction = if total.seconds > 0.0 { dma_seconds / total.seconds } else { 0.0 };
        SocReport {
            partitions,
            total,
            comm_fraction,
            profile,
            chaos_seed,
            faults_injected,
            retries,
            retried_dma_bytes,
            virtual_ns,
            fallbacks,
        }
    }

    /// Simulates every partition of one dispatch schedule. Per-partition
    /// results are pure functions of `(part, graph, hints, cfg)`, so they
    /// run in parallel; the fold below is serial in partition order,
    /// keeping the outcome byte-identical to a serial run.
    fn dispatch(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        expert: bool,
        cfg: &ChaosConfig,
    ) -> Result<Round, SocError> {
        let sim = |part: &pm_lower::AccProgram| {
            self.simulate_partition(part, compiled, hints, expert, cfg)
        };
        let sims: Vec<Result<PartSim, SocError>> = if compiled.partitions.len() > 1 {
            use rayon::prelude::*;
            compiled.partitions.par_iter().map(sim).collect()
        } else {
            compiled.partitions.iter().map(sim).collect()
        };
        let mut parts = Vec::with_capacity(sims.len());
        let mut downs = Vec::new();
        for s in sims {
            match s? {
                PartSim::Done(p) => parts.push(p),
                PartSim::Down(info) => downs.push(info),
            }
        }
        if downs.is_empty() {
            Ok(Round::Done(parts))
        } else {
            Ok(Round::Downs(downs))
        }
    }

    fn simulate_partition(
        &self,
        part: &pm_lower::AccProgram,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        expert: bool,
        cfg: &ChaosConfig,
    ) -> Result<PartSim, SocError> {
        let default_hints = WorkloadHints::default();
        let h = hints.get(&part.domain).unwrap_or(&default_hints);
        // The partition records which target its fragments were compiled
        // for; pick the matching backend, else the host (an unaccelerated
        // domain compiles against the host spec).
        let backend = self.backends.iter().find(|b| b.accel_spec().name == part.target);
        let host_spec_name = self.host.accel_spec().name;
        if backend.is_none() && part.target != host_spec_name {
            return Err(SocError::missing_backend(
                part.target.clone(),
                part.domain,
                self.attached_names(),
            ));
        }
        let (target, compute) = match backend {
            Some(backend) if expert => {
                (backend.name().to_string(), backend.estimate_expert(part, &compiled.graph, h))
            }
            Some(backend) => {
                (backend.name().to_string(), backend.estimate(part, &compiled.graph, h))
            }
            None => {
                // Unaccelerated domains and host glue run on the CPU.
                let mut est = self.host.estimate(part, &compiled.graph, h);
                if expert {
                    // The hand-tuned reference is native C against the
                    // vendor libraries, ~15% tighter than the code the
                    // generic stack emits for the host.
                    est.seconds *= 0.85;
                    est.energy_j *= 0.85;
                    est.cycles = (est.cycles as f64 * 0.85) as u64;
                }
                (self.host.name().to_string(), est)
            }
        };
        let mut r = PartitionReport {
            target,
            domain: part.domain,
            compute,
            dma: PerfEstimate::default(),
            attempts: 0,
            retries: 0,
            faults_seen: 0,
            faults: Vec::new(),
            retried_dma_bytes: 0,
            virtual_ns: 0,
        };
        // DMA transfers and fragment dispatch: only real when the
        // partition runs on an accelerator (host-resident data needs no
        // DMA, and the host manager does not dispatch to itself).
        let Some(backend) = backend else {
            return Ok(PartSim::Done(r));
        };
        let mut clock = VirtualClock::new();
        for (idx, frag) in part.fragments.iter().enumerate() {
            let is_dma = frag.kind != FragmentKind::Compute;
            if is_dma && frag.inputs.is_empty() && frag.outputs.is_empty() {
                return Err(SocError::MalformedFragment {
                    target: part.target.clone(),
                    fragment: idx,
                    detail: "load/store fragment has no operands to marshal".to_string(),
                });
            }
            // `param` and `state` data are resident in the accelerator's
            // local memory (loaded once, amortized across the run) — this
            // is precisely what PMLang's type modifiers tell the stack
            // (paper §II.A). Only `input`/`output`/intermediate flows
            // cross the DMA per invocation, and only per-invocation
            // dispatches are fault-injected.
            let resident = is_dma
                && frag.inputs.iter().chain(&frag.outputs).all(|a| {
                    matches!(a.modifier(), srdfg::Modifier::Param | srdfg::Modifier::State)
                });
            if resident {
                continue;
            }
            let (bytes, transfer_ns) = if is_dma {
                let bytes = frag.bytes();
                let secs = self.dma.transfer_seconds(bytes);
                r.dma.seconds += secs;
                r.dma.energy_j +=
                    bytes as f64 * self.dma_energy_per_byte + secs * self.manager_power_w;
                r.dma.dma_bytes += bytes;
                (bytes, (secs * 1e9) as u64)
            } else {
                (0, DISPATCH_NS)
            };
            // Resilient dispatch: retry faulting fragments under
            // exponential backoff until success, retry exhaustion, or the
            // per-fragment virtual-time budget runs out.
            let mut attempt: u32 = 1;
            let mut spent: u64 = 0;
            loop {
                // All parallel charge sites share the `dispatch` stage so
                // the wire error stays byte-stable whichever partition's
                // charge crosses the limit first.
                cfg.budget.charge("dispatch", 1).map_err(SocError::BudgetExhausted)?;
                r.attempts += 1;
                let Some(kind) = backend.inject_fault(&cfg.plan, idx, frag.kind, attempt) else {
                    clock.advance(transfer_ns);
                    break;
                };
                r.faults_seen += 1;
                if r.faults.len() < MAX_RECORDED_FAULTS {
                    r.faults.push(FaultEvent {
                        target: part.target.clone(),
                        fragment: idx,
                        op: frag.op.to_string(),
                        attempt,
                        kind,
                    });
                }
                let cost = match kind {
                    FaultKind::FragmentStall => cfg.fragment_deadline_ns,
                    _ => transfer_ns,
                };
                clock.advance(cost);
                spent += cost;
                let budget_exceeded = spent > cfg.fragment_budget_ns;
                if !kind.retryable() || attempt > cfg.max_retries || budget_exceeded {
                    r.virtual_ns = clock.now_ns();
                    return Ok(PartSim::Down(DownInfo {
                        target: part.target.clone(),
                        fragment: idx,
                        op: frag.op.to_string(),
                        attempts: attempt,
                        fault: kind,
                        spent_ns: clock.now_ns(),
                        budget_exceeded: budget_exceeded && kind.retryable(),
                        faults_seen: r.faults_seen,
                        retries: r.retries,
                        retried_dma_bytes: r.retried_dma_bytes,
                    }));
                }
                // A corrupted or truncated transfer is re-issued in full:
                // the retry pays the DMA cost again.
                if matches!(kind, FaultKind::DmaCorruption | FaultKind::DmaTruncation) {
                    let secs = self.dma.transfer_seconds(bytes);
                    r.dma.seconds += secs;
                    r.dma.energy_j +=
                        bytes as f64 * self.dma_energy_per_byte + secs * self.manager_power_w;
                    r.dma.dma_bytes += bytes;
                    r.retried_dma_bytes += bytes;
                }
                let delay = cfg.backoff.delay_ns(attempt);
                clock.advance(delay);
                spent += delay;
                r.retries += 1;
                attempt += 1;
            }
        }
        r.virtual_ns = clock.now_ns();
        Ok(PartSim::Done(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deco::Deco;
    use crate::tabla::Tabla;
    use pm_lower::{compile_program, lower, TargetMap};

    /// A two-domain pipeline: DSP filter feeding a DA classifier.
    fn compiled_two_domain(accelerate: &[Domain]) -> (CompiledProgram, TargetMap) {
        let src = "filt(input float x[1024], param float h[16], output float y[1009]) {
             index i[0:1008], k[0:15];
             y[i] = sum[k](h[k]*x[i+k]);
         }
         clas(input float f[1009], param float W[64][1009], param float v[64],
              output float c) {
             index i[0:1008], j[0:63];
             float hid[64];
             hid[j] = sigmoid(sum[i](W[j][i]*f[i]));
             c = sigmoid(sum[j](v[j]*hid[j]));
         }
         main(input float sig[1024], param float taps[16],
              param float W[64][1009], param float v[64], output float cls) {
             float feat[1009];
             DSP: filt(sig, taps, feat);
             DA: clas(feat, W, v, cls);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = Cpu::default().accel_spec();
        let mut targets = TargetMap::host_only(host);
        if accelerate.contains(&Domain::Dsp) {
            targets.set(Deco::default().accel_spec());
        }
        if accelerate.contains(&Domain::DataAnalytics) {
            targets.set(Tabla::default().accel_spec());
        }
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        (compile_program(&g, &targets).unwrap(), targets)
    }

    fn soc() -> Soc {
        let mut s = Soc::new();
        s.attach(Deco::default());
        s.attach(Tabla::default());
        s
    }

    #[test]
    fn accelerating_both_beats_one() {
        let s = soc();
        let hints = HashMap::new();
        let none = s.run(&compiled_two_domain(&[]).0, &hints).unwrap();
        let dsp_only = s.run(&compiled_two_domain(&[Domain::Dsp]).0, &hints).unwrap();
        let both =
            s.run(&compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]).0, &hints).unwrap();
        // Fully accelerated is fastest in energy (the paper's headline
        // cross-domain claim).
        assert!(both.total.energy_j < none.total.energy_j);
        assert!(both.total.energy_j < dsp_only.total.energy_j);
    }

    #[test]
    fn unaccelerated_partition_falls_back_to_host() {
        let s = soc();
        let report = s.run(&compiled_two_domain(&[Domain::Dsp]).0, &HashMap::new()).unwrap();
        let da =
            report.partitions.iter().find(|p| p.domain == Some(Domain::DataAnalytics)).unwrap();
        assert_eq!(da.target, "Xeon E-2176G");
        assert_eq!(da.dma.dma_bytes, 0, "host partitions need no DMA");
        let dsp = report.partitions.iter().find(|p| p.domain == Some(Domain::Dsp)).unwrap();
        assert_eq!(dsp.target, "DECO");
        assert!(dsp.dma.dma_bytes > 0);
    }

    #[test]
    fn expert_run_is_never_slower() {
        let s = soc();
        let (compiled, _) = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        let normal = s.run(&compiled, &HashMap::new()).unwrap();
        let expert = s.run_expert(&compiled, &HashMap::new()).unwrap();
        assert!(expert.total.seconds <= normal.total.seconds * 1.0001);
        assert!(expert.total.energy_j <= normal.total.energy_j * 1.0001);
    }

    #[test]
    fn resident_param_and_state_data_skip_dma() {
        // A kernel whose only large operand is a `param` weight matrix:
        // the per-invocation DMA must only move the small input/output.
        let src = "clas(input float x[64], param float W[256][64], output float y[256]) {
             index i[0:63], j[0:255];
             y[j] = sum[i](W[j][i]*x[i]);
         }
         main(input float x[64], param float W[256][64], output float y[256]) {
             DA: clas(x, W, y);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let mut targets = TargetMap::host_only(Cpu::default().accel_spec());
        targets.set(Tabla::default().accel_spec());
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        let compiled = compile_program(&g, &targets).unwrap();
        let s = soc();
        let report = s.run(&compiled, &HashMap::new()).unwrap();
        let da =
            report.partitions.iter().find(|p| p.domain == Some(Domain::DataAnalytics)).unwrap();
        // x (256 B) + y (1 KiB) cross the DMA; W (64 KiB) must not.
        assert!(da.dma.dma_bytes <= 2048, "moved {} bytes", da.dma.dma_bytes);
        assert!(da.dma.dma_bytes >= 256 + 1024, "moved {} bytes", da.dma.dma_bytes);
    }

    #[test]
    fn communication_fraction_is_reported() {
        let s = soc();
        let report = s
            .run(&compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]).0, &HashMap::new())
            .unwrap();
        assert!(report.comm_fraction > 0.0 && report.comm_fraction < 1.0);
    }

    #[test]
    fn missing_backend_is_an_error_with_a_suggestion() {
        // Compile against a typo'd spec name; the SoC has the real TABLA
        // attached, so the error should suggest it.
        let src = "main(input float x[4], param float w[4], output float y) {
             index i[0:3];
             DA: y = sum[i](w[i]*x[i]);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let mut spec = Tabla::default().accel_spec();
        spec.name = "TABAL".to_string();
        let mut targets = TargetMap::host_only(Cpu::default().accel_spec());
        targets.set(spec);
        lower(&mut g, &targets).unwrap();
        let compiled = compile_program(&g, &targets).unwrap();
        let err = soc().run(&compiled, &HashMap::new()).unwrap_err();
        match &err {
            SocError::MissingBackend { target, suggestion, attached, .. } => {
                assert_eq!(target, "TABAL");
                assert_eq!(suggestion.as_deref(), Some("TABLA"));
                assert!(attached.contains(&"TABLA".to_string()));
            }
            other => panic!("expected MissingBackend, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean `TABLA`?"));
    }

    #[test]
    fn off_chaos_matches_plain_run_exactly() {
        let s = soc();
        let (compiled, targets) = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        let plain = s.run(&compiled, &HashMap::new()).unwrap();
        let chaos =
            s.run_chaos(&compiled, &HashMap::new(), &ChaosConfig::off(), Some(&targets)).unwrap();
        assert!(chaos.relowered.is_none());
        assert_eq!(plain, chaos.report);
        assert_eq!(plain.faults_injected, 0);
        assert_eq!(plain.retries, 0);
    }

    #[test]
    fn transient_chaos_retries_and_is_deterministic() {
        let s = soc();
        let (compiled, targets) = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        // The draw is deterministic; scan a few seeds for one that faults.
        let mut hit = None;
        for seed in 0..64u64 {
            let cfg = ChaosConfig::new(seed, ChaosProfile::Transient);
            let out = s.run_chaos(&compiled, &HashMap::new(), &cfg, Some(&targets)).unwrap();
            assert!(out.relowered.is_none(), "transient profile must never force fallback");
            if out.report.faults_injected > 0 {
                hit = Some((cfg, out));
                break;
            }
        }
        let (cfg, out) = hit.expect("no transient fault in 64 seeds");
        assert!(out.report.retries > 0, "faults must be retried");
        let again = s.run_chaos(&compiled, &HashMap::new(), &cfg, Some(&targets)).unwrap();
        assert_eq!(out.report, again.report, "same seed must reproduce the same report");
        // Compute estimates are untouched by chaos; only DMA grows.
        let plain = s.run(&compiled, &HashMap::new()).unwrap();
        for (a, b) in plain.partitions.iter().zip(&out.report.partitions) {
            assert_eq!(a.compute, b.compute);
            assert!(b.dma.dma_bytes >= a.dma.dma_bytes);
        }
    }

    #[test]
    fn forced_outage_falls_back_to_host() {
        let s = soc();
        let (compiled, targets) = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        let cfg = ChaosConfig::off().with_down("DECO").with_down("TABLA");
        let out = s.run_chaos(&compiled, &HashMap::new(), &cfg, Some(&targets)).unwrap();
        assert_eq!(out.report.fallbacks.len(), 2);
        let re = out.relowered.expect("fallback must produce a re-lowered program");
        for p in &re.partitions {
            assert_eq!(p.target, "CPU", "all work must land on the host");
        }
        for p in &out.report.partitions {
            assert_eq!(p.target, "Xeon E-2176G");
            assert_eq!(p.dma.dma_bytes, 0, "host execution needs no DMA");
        }
    }

    #[test]
    fn forced_outage_without_target_map_is_a_structured_error() {
        let s = soc();
        let (compiled, _) = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        let cfg = ChaosConfig::off().with_down("DECO");
        let err = s.run_chaos(&compiled, &HashMap::new(), &cfg, None).unwrap_err();
        assert!(
            matches!(err, SocError::FallbackUnavailable { ref target, .. } if target == "DECO"),
            "got {err:?}"
        );
    }
}
