//! The multi-acceleration SoC (paper §V.A.3, "Multi-acceleration").
//!
//! "All accelerators are cascaded as a single System On Chip, comprised of
//! memory and a host. A light-weight manager executes on the host, ensuring
//! data dependencies between different accelerators and initiating DMA
//! transfers between DRAM and local accelerator memory."
//!
//! [`Soc::run`] executes one invocation of a compiled multi-domain program:
//! each partition runs on its backend (or on the host), every `load`/
//! `store` fragment becomes a DMA transfer, and the host manager adds its
//! own dispatch overhead. Kernels of an end-to-end application are
//! data-dependent (sense → perceive → act), so partitions execute
//! sequentially — which is precisely why Amdahl's law bites when only some
//! domains are accelerated (paper Fig. 10-12).

use crate::backend::{Backend, DmaModel};
use crate::cpu::Cpu;
use crate::model::{PerfEstimate, WorkloadHints};
use pm_lower::{CompiledProgram, FragmentKind};
use pmlang::Domain;
use std::collections::HashMap;

/// Per-partition result within a SoC run.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Target name that executed the partition.
    pub target: String,
    /// The partition's domain (`None` = host glue).
    pub domain: Option<Domain>,
    /// Compute estimate.
    pub compute: PerfEstimate,
    /// DMA estimate for this partition's transfers.
    pub dma: PerfEstimate,
}

/// The end-to-end account of one program invocation on the SoC.
#[derive(Debug, Clone)]
pub struct SocReport {
    /// Per-partition breakdown.
    pub partitions: Vec<PartitionReport>,
    /// Total wall-clock/energy for the invocation.
    pub total: PerfEstimate,
    /// Share of total time spent in communication (DMA).
    pub comm_fraction: f64,
}

/// A host plus a set of cascaded accelerator backends.
pub struct Soc {
    backends: Vec<Box<dyn Backend>>,
    host: Cpu,
    dma: DmaModel,
    /// Energy per DMA byte (interconnect + DRAM access), joules.
    dma_energy_per_byte: f64,
    /// Host-manager power draw while orchestrating, watts.
    manager_power_w: f64,
}

impl std::fmt::Debug for Soc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Soc")
            .field("backends", &self.backends.iter().map(|b| b.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Soc {
    fn default() -> Self {
        Soc::new()
    }
}

impl Soc {
    /// Creates a SoC with only the host CPU.
    pub fn new() -> Self {
        Soc {
            backends: Vec::new(),
            host: Cpu::default(),
            dma: DmaModel::default(),
            dma_energy_per_byte: 5.0e-11, // 50 pJ/byte
            manager_power_w: 5.0,
        }
    }

    /// Attaches an accelerator backend (replacing any previous backend of
    /// the same name).
    pub fn attach(&mut self, backend: impl Backend + 'static) -> &mut Self {
        let name = backend.accel_spec().name;
        self.backends.retain(|b| b.accel_spec().name != name);
        self.backends.push(Box::new(backend));
        self
    }

    /// The first backend serving `domain`, if attached.
    pub fn backend(&self, domain: Domain) -> Option<&dyn Backend> {
        self.backends.iter().find(|b| b.domain() == domain).map(|b| b.as_ref())
    }

    /// The backend with the given target name, if attached.
    pub fn backend_by_name(&self, name: &str) -> Option<&dyn Backend> {
        self.backends.iter().find(|b| b.accel_spec().name == name).map(|b| b.as_ref())
    }

    /// The host CPU model.
    pub fn host(&self) -> &Cpu {
        &self.host
    }

    /// Estimates one invocation of `compiled`, with per-domain workload
    /// hints (sparse sizes etc.).
    pub fn run(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
    ) -> SocReport {
        self.run_inner(compiled, hints, false)
    }

    /// Like [`Soc::run`] but pricing each accelerated partition at its
    /// hand-optimized ("expert") implementation — the paper's Fig. 9/12
    /// optimal baseline. Host partitions are unchanged (the CPU baseline
    /// is already the native stack).
    pub fn run_expert(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
    ) -> SocReport {
        self.run_inner(compiled, hints, true)
    }

    fn run_inner(
        &self,
        compiled: &CompiledProgram,
        hints: &HashMap<Option<Domain>, WorkloadHints>,
        expert: bool,
    ) -> SocReport {
        let default_hints = WorkloadHints::default();
        // Per-partition estimates are pure functions of `(part, graph,
        // hints)`, so they run in parallel; totals are folded serially
        // below in partition order, keeping the report byte-identical to a
        // serial run.
        let estimate_partition = |part: &pm_lower::AccProgram| -> PartitionReport {
            let h = hints.get(&part.domain).unwrap_or(&default_hints);
            // The partition records which target its fragments were
            // compiled for; pick the matching backend, else the host (an
            // unaccelerated domain compiles against the host spec).
            let backend = self.backends.iter().find(|b| b.accel_spec().name == part.target);
            let (target, compute) = match backend {
                Some(backend) if expert => {
                    (backend.name().to_string(), backend.estimate_expert(part, &compiled.graph, h))
                }
                Some(backend) => {
                    (backend.name().to_string(), backend.estimate(part, &compiled.graph, h))
                }
                None => {
                    // Unaccelerated domains and host glue run on the CPU.
                    let mut est = self.host.estimate(part, &compiled.graph, h);
                    if expert {
                        // The hand-tuned reference is native C against the
                        // vendor libraries, ~15% tighter than the code the
                        // generic stack emits for the host.
                        est.seconds *= 0.85;
                        est.energy_j *= 0.85;
                        est.cycles = (est.cycles as f64 * 0.85) as u64;
                    }
                    (self.host.name().to_string(), est)
                }
            };
            // DMA transfers: only real when the partition runs on an
            // accelerator (host-resident data needs no DMA).
            let mut dma = PerfEstimate::default();
            if backend.is_some() {
                for frag in &part.fragments {
                    if frag.kind == FragmentKind::Compute {
                        continue;
                    }
                    // `param` and `state` data are resident in the
                    // accelerator's local memory (loaded once, amortized
                    // across the run) — this is precisely what PMLang's
                    // type modifiers tell the stack (paper §II.A). Only
                    // `input`/`output`/intermediate flows cross the DMA
                    // per invocation.
                    let resident = frag.inputs.iter().chain(&frag.outputs).all(|a| {
                        matches!(a.modifier, srdfg::Modifier::Param | srdfg::Modifier::State)
                    });
                    if resident {
                        continue;
                    }
                    let bytes = frag.bytes();
                    let secs = self.dma.transfer_seconds(bytes);
                    dma.seconds += secs;
                    dma.energy_j +=
                        bytes as f64 * self.dma_energy_per_byte + secs * self.manager_power_w;
                    dma.dma_bytes += bytes;
                }
            }
            PartitionReport { target, domain: part.domain, compute, dma }
        };

        let partitions: Vec<PartitionReport> = if compiled.partitions.len() > 1 {
            use rayon::prelude::*;
            compiled.partitions.par_iter().map(estimate_partition).collect()
        } else {
            compiled.partitions.iter().map(estimate_partition).collect()
        };

        let mut total = PerfEstimate::default();
        let mut dma_seconds = 0.0f64;
        for report in &partitions {
            total = total.then(&report.compute).then(&report.dma);
            dma_seconds += report.dma.seconds;
        }
        let comm_fraction = if total.seconds > 0.0 { dma_seconds / total.seconds } else { 0.0 };
        SocReport { partitions, total, comm_fraction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deco::Deco;
    use crate::tabla::Tabla;
    use pm_lower::{compile_program, lower, TargetMap};

    /// A two-domain pipeline: DSP filter feeding a DA classifier.
    fn compiled_two_domain(accelerate: &[Domain]) -> CompiledProgram {
        let src = "filt(input float x[1024], param float h[16], output float y[1009]) {
             index i[0:1008], k[0:15];
             y[i] = sum[k](h[k]*x[i+k]);
         }
         clas(input float f[1009], param float W[64][1009], param float v[64],
              output float c) {
             index i[0:1008], j[0:63];
             float hid[64];
             hid[j] = sigmoid(sum[i](W[j][i]*f[i]));
             c = sigmoid(sum[j](v[j]*hid[j]));
         }
         main(input float sig[1024], param float taps[16],
              param float W[64][1009], param float v[64], output float cls) {
             float feat[1009];
             DSP: filt(sig, taps, feat);
             DA: clas(feat, W, v, cls);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = Cpu::default().accel_spec();
        let mut targets = TargetMap::host_only(host);
        if accelerate.contains(&Domain::Dsp) {
            targets.set(Deco::default().accel_spec());
        }
        if accelerate.contains(&Domain::DataAnalytics) {
            targets.set(Tabla::default().accel_spec());
        }
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        compile_program(&g, &targets).unwrap()
    }

    fn soc() -> Soc {
        let mut s = Soc::new();
        s.attach(Deco::default());
        s.attach(Tabla::default());
        s
    }

    #[test]
    fn accelerating_both_beats_one() {
        let s = soc();
        let hints = HashMap::new();
        let none = s.run(&compiled_two_domain(&[]), &hints);
        let dsp_only = s.run(&compiled_two_domain(&[Domain::Dsp]), &hints);
        let both = s.run(&compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]), &hints);
        // Fully accelerated is fastest in energy (the paper's headline
        // cross-domain claim).
        assert!(both.total.energy_j < none.total.energy_j);
        assert!(both.total.energy_j < dsp_only.total.energy_j);
    }

    #[test]
    fn unaccelerated_partition_falls_back_to_host() {
        let s = soc();
        let report = s.run(&compiled_two_domain(&[Domain::Dsp]), &HashMap::new());
        let da =
            report.partitions.iter().find(|p| p.domain == Some(Domain::DataAnalytics)).unwrap();
        assert_eq!(da.target, "Xeon E-2176G");
        assert_eq!(da.dma.dma_bytes, 0, "host partitions need no DMA");
        let dsp = report.partitions.iter().find(|p| p.domain == Some(Domain::Dsp)).unwrap();
        assert_eq!(dsp.target, "DECO");
        assert!(dsp.dma.dma_bytes > 0);
    }

    #[test]
    fn expert_run_is_never_slower() {
        let s = soc();
        let compiled = compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]);
        let normal = s.run(&compiled, &HashMap::new());
        let expert = s.run_expert(&compiled, &HashMap::new());
        assert!(expert.total.seconds <= normal.total.seconds * 1.0001);
        assert!(expert.total.energy_j <= normal.total.energy_j * 1.0001);
    }

    #[test]
    fn resident_param_and_state_data_skip_dma() {
        // A kernel whose only large operand is a `param` weight matrix:
        // the per-invocation DMA must only move the small input/output.
        let src = "clas(input float x[64], param float W[256][64], output float y[256]) {
             index i[0:63], j[0:255];
             y[j] = sum[i](W[j][i]*x[i]);
         }
         main(input float x[64], param float W[256][64], output float y[256]) {
             DA: clas(x, W, y);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let mut targets = TargetMap::host_only(Cpu::default().accel_spec());
        targets.set(Tabla::default().accel_spec());
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        let compiled = compile_program(&g, &targets).unwrap();
        let s = soc();
        let report = s.run(&compiled, &HashMap::new());
        let da =
            report.partitions.iter().find(|p| p.domain == Some(Domain::DataAnalytics)).unwrap();
        // x (256 B) + y (1 KiB) cross the DMA; W (64 KiB) must not.
        assert!(da.dma.dma_bytes <= 2048, "moved {} bytes", da.dma.dma_bytes);
        assert!(da.dma.dma_bytes >= 256 + 1024, "moved {} bytes", da.dma.dma_bytes);
    }

    #[test]
    fn communication_fraction_is_reported() {
        let s = soc();
        let report =
            s.run(&compiled_two_domain(&[Domain::Dsp, Domain::DataAnalytics]), &HashMap::new());
        assert!(report.comm_fraction > 0.0 && report.comm_fraction < 1.0);
    }
}
