//! Typed fault model and the deterministic, seed-driven fault injector.
//!
//! The paper's SoC (§V.A.3) cascades accelerators behind a host manager;
//! a production runtime must assume any of those devices, or the DMA
//! fabric between them, can fail. This module defines the fault taxonomy
//! the resilient dispatch loop in [`crate::soc::Soc`] handles, and a
//! [`FaultPlan`] that injects those faults *deterministically*: the whole
//! schedule is a pure function of `(seed, profile, target, fragment,
//! attempt, invocation)`, so the same `--chaos-seed` always reproduces the
//! same run, bit for bit — no wall-clock, no global RNG.
//!
//! Time is virtual throughout ([`VirtualClock`]): backoff delays and
//! fragment deadlines are accounted in simulated nanoseconds, which keeps
//! retry tests exact and CI free of timing flakiness.

use pm_lower::FragmentKind;
use srdfg::Budget;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// How aggressively the injector perturbs a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosProfile {
    /// No faults — byte-identical to a run without the chaos layer.
    #[default]
    Off,
    /// Recoverable faults only: every injected fault clears within two
    /// retries, and no device goes down permanently. A dispatch loop with
    /// `max_retries >= 2` always completes without fallback.
    Transient,
    /// Faults are frequent, may persist past the retry budget, and whole
    /// devices can be down for the entire run — exercising the
    /// host-fallback re-lowering path.
    Hostile,
}

impl FromStr for ChaosProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ChaosProfile::Off),
            "transient" => Ok(ChaosProfile::Transient),
            "hostile" => Ok(ChaosProfile::Hostile),
            other => Err(format!(
                "unknown chaos profile `{other}` (expected off, transient, or hostile)"
            )),
        }
    }
}

impl fmt::Display for ChaosProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChaosProfile::Off => "off",
            ChaosProfile::Transient => "transient",
            ChaosProfile::Hostile => "hostile",
        })
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The accelerator aborted mid-fragment (compute fragments).
    AccelCrash,
    /// The fragment stalled past its dispatch deadline; the host manager
    /// gave up waiting after `fragment_deadline_ns` virtual nanoseconds.
    FragmentStall,
    /// A DMA transfer delivered corrupted data (load/store fragments);
    /// the transfer must be re-issued in full.
    DmaCorruption,
    /// A DMA transfer ended short of the descriptor length; the transfer
    /// must be re-issued in full.
    DmaTruncation,
    /// The device reported itself down. Transient downs (a device
    /// resetting) are retryable; persistent downs take the target out of
    /// the run and trigger host-fallback re-lowering.
    DeviceDown {
        /// Whether the outage outlasts any retry budget.
        persistent: bool,
    },
}

impl FaultKind {
    /// True for faults that re-issuing the fragment can clear.
    pub fn retryable(&self) -> bool {
        !matches!(self, FaultKind::DeviceDown { persistent: true })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::AccelCrash => f.write_str("accelerator crash"),
            FaultKind::FragmentStall => f.write_str("fragment stall past deadline"),
            FaultKind::DmaCorruption => f.write_str("DMA transfer corruption"),
            FaultKind::DmaTruncation => f.write_str("DMA transfer truncation"),
            FaultKind::DeviceDown { persistent: true } => f.write_str("device down (persistent)"),
            FaultKind::DeviceDown { persistent: false } => f.write_str("device down (transient)"),
        }
    }
}

/// One observed fault occurrence, as recorded in the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target the fragment was dispatched to.
    pub target: String,
    /// Fragment index within its partition's stream.
    pub fragment: usize,
    /// Fragment operation name (`load`, `store`, or the compute op).
    pub op: String,
    /// 1-based dispatch attempt the fault hit.
    pub attempt: u32,
    /// What went wrong.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: fragment {} (`{}`) attempt {}: {}",
            self.target, self.fragment, self.op, self.attempt, self.kind
        )
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DOWN: u64 = 0xD0;
const SALT_FAULT: u64 = 0xFA;

fn fnv64(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(PHI);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic fault injector: a pure function from
/// `(seed, profile, target, fragment, attempt)` to an optional fault.
///
/// Threaded through [`crate::backend::Backend::inject_fault`] so every
/// backend consults the same schedule keyed by its own name, and a custom
/// backend can override the default draw to model device-specific failure
/// modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-invocation stream (multi-invocation trajectories draw fresh
    /// transient faults each step; device-down draws stay pinned to the
    /// base seed so an outage is stable across the whole trajectory).
    inv: u64,
    profile: ChaosProfile,
}

impl FaultPlan {
    /// A plan for one seed and profile (invocation stream 0).
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        FaultPlan { seed, inv: 0, profile }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The chaos profile.
    pub fn profile(&self) -> ChaosProfile {
        self.profile
    }

    /// Derives the plan for invocation `k` of a trajectory: transient
    /// fault draws change, persistent device-down draws do not.
    pub fn for_invocation(&self, k: u64) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            inv: splitmix64(self.seed ^ k.wrapping_mul(PHI)),
            profile: self.profile,
        }
    }

    fn mix(&self, base: u64, target: &str, salt: u64) -> u64 {
        splitmix64(splitmix64(base ^ fnv64(target)) ^ salt)
    }

    /// Whether `target` is persistently down for this whole run
    /// (hostile profile only). Stable across invocations.
    pub fn device_down(&self, target: &str) -> bool {
        self.profile == ChaosProfile::Hostile
            && self.mix(self.seed, target, SALT_DOWN).is_multiple_of(4)
    }

    /// The fault (if any) injected into dispatch attempt `attempt`
    /// (1-based) of fragment `fragment` on `target`.
    ///
    /// Transient-profile faults always clear by attempt 3; hostile-profile
    /// faults may persist past any retry budget or report a persistent
    /// device-down, forcing the fallback path.
    pub fn fault_for(
        &self,
        target: &str,
        fragment: usize,
        kind: FragmentKind,
        attempt: u32,
    ) -> Option<FaultKind> {
        let (denom, persist_span) = match self.profile {
            ChaosProfile::Off => return None,
            ChaosProfile::Transient => (8, 2),
            ChaosProfile::Hostile => (3, 8),
        };
        let h = self.mix(
            self.seed ^ self.inv,
            target,
            SALT_FAULT ^ (fragment as u64).wrapping_mul(PHI),
        );
        if !h.is_multiple_of(denom) {
            return None;
        }
        if self.profile == ChaosProfile::Hostile && (h >> 48).is_multiple_of(16) {
            return Some(FaultKind::DeviceDown { persistent: true });
        }
        // Attempts 1..=persist fault, then the fragment goes through.
        let persist = 1 + ((h >> 8) % persist_span) as u32;
        if attempt > persist {
            return None;
        }
        Some(match kind {
            FragmentKind::Load | FragmentKind::Store => match (h >> 16) % 3 {
                0 => FaultKind::DmaCorruption,
                1 => FaultKind::DmaTruncation,
                _ => FaultKind::FragmentStall,
            },
            FragmentKind::Compute => match (h >> 16) % 3 {
                0 => FaultKind::AccelCrash,
                1 => FaultKind::FragmentStall,
                _ => FaultKind::DeviceDown { persistent: false },
            },
        })
    }
}

/// Exponential backoff between dispatch retries, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base_ns: u64,
    /// Multiplier applied per additional retry.
    pub multiplier: u32,
    /// Upper bound on any single delay.
    pub cap_ns: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 10 µs, doubling, capped at 10 ms.
        BackoffPolicy { base_ns: 10_000, multiplier: 2, cap_ns: 10_000_000 }
    }
}

impl BackoffPolicy {
    /// Delay before retry `retry` (1-based): `base * multiplier^(retry-1)`,
    /// saturating at the cap.
    pub fn delay_ns(&self, retry: u32) -> u64 {
        let mut d = self.base_ns;
        for _ in 1..retry {
            d = d.saturating_mul(self.multiplier as u64);
            if d >= self.cap_ns {
                return self.cap_ns;
            }
        }
        d.min(self.cap_ns)
    }
}

/// A monotonically advancing virtual clock (simulated nanoseconds).
///
/// All retry/backoff/deadline accounting runs on virtual time so chaos
/// runs are exactly reproducible and tests never race a wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    ns: u64,
}

impl VirtualClock {
    /// A clock at t=0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock.
    pub fn advance(&mut self, ns: u64) {
        self.ns = self.ns.saturating_add(ns);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns
    }
}

/// Everything the resilient dispatch loop needs to run one chaos
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The deterministic fault schedule.
    pub plan: FaultPlan,
    /// Retries allowed per fragment beyond the first attempt.
    pub max_retries: u32,
    /// Backoff schedule between retries.
    pub backoff: BackoffPolicy,
    /// How long (virtual ns) the host manager waits on a stalled fragment
    /// before declaring a [`FaultKind::FragmentStall`].
    pub fragment_deadline_ns: u64,
    /// Total virtual-time budget per fragment (attempts + backoff);
    /// exceeding it marks the device down even before the retry count is
    /// exhausted.
    pub fragment_budget_ns: u64,
    /// Targets forced persistently down regardless of the fault draw —
    /// the sentinel tests use this to kill every accelerator at once, and
    /// the serve pool uses it to steer traffic away from open breakers.
    pub force_down: BTreeSet<String>,
    /// Request-level cooperative-cancellation budget, charged per
    /// dispatch attempt and per invocation. Compares (and defaults to)
    /// unlimited, so existing chaos configs are unchanged.
    pub budget: Budget,
}

impl ChaosConfig {
    /// The no-chaos configuration: [`ChaosProfile::Off`], nothing forced
    /// down. Dispatch under this config is byte-identical to a plain run.
    pub fn off() -> Self {
        ChaosConfig::new(0, ChaosProfile::Off)
    }

    /// A configuration for one seed and profile with default retry
    /// parameters (3 retries, exponential backoff, 1 ms fragment
    /// deadline).
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        let max_retries = 3;
        let fragment_deadline_ns = 1_000_000;
        ChaosConfig {
            plan: FaultPlan::new(seed, profile),
            max_retries,
            backoff: BackoffPolicy::default(),
            fragment_deadline_ns,
            fragment_budget_ns: fragment_deadline_ns * (max_retries as u64 + 2),
            force_down: BTreeSet::new(),
            budget: Budget::unlimited(),
        }
    }

    /// Overrides the retry budget (rescaling the fragment budget to
    /// match).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self.fragment_budget_ns = self.fragment_deadline_ns.saturating_mul(max_retries as u64 + 2);
        self
    }

    /// Forces `target` persistently down.
    pub fn with_down(mut self, target: impl Into<String>) -> Self {
        self.force_down.insert(target.into());
        self
    }

    /// Attaches a request budget; dispatch unwinds with
    /// [`crate::SocError::BudgetExhausted`] when it runs out.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Derives the configuration for invocation `k` of a trajectory.
    pub fn for_invocation(&self, k: u64) -> ChaosConfig {
        ChaosConfig { plan: self.plan.for_invocation(k), ..self.clone() }
    }

    /// True when this configuration can never inject a fault.
    pub fn is_off(&self) -> bool {
        self.plan.profile() == ChaosProfile::Off && self.force_down.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parses_and_displays() {
        for p in [ChaosProfile::Off, ChaosProfile::Transient, ChaosProfile::Hostile] {
            assert_eq!(p.to_string().parse::<ChaosProfile>().unwrap(), p);
        }
        assert!("chaotic-evil".parse::<ChaosProfile>().is_err());
    }

    #[test]
    fn off_profile_never_faults() {
        let plan = FaultPlan::new(0xDEAD, ChaosProfile::Off);
        for frag in 0..512 {
            for attempt in 1..5 {
                assert_eq!(plan.fault_for("TABLA", frag, FragmentKind::Compute, attempt), None);
            }
        }
        assert!(!plan.device_down("TABLA"));
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7, ChaosProfile::Transient);
        let b = FaultPlan::new(7, ChaosProfile::Transient);
        let c = FaultPlan::new(8, ChaosProfile::Transient);
        let draw = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..256).map(|i| p.fault_for("DECO", i, FragmentKind::Load, 1)).collect()
        };
        assert_eq!(draw(&a), draw(&b), "same seed, same schedule");
        assert_ne!(draw(&a), draw(&c), "different seed, different schedule");
        assert!(draw(&a).iter().any(Option::is_some), "transient profile injects something");
    }

    #[test]
    fn transient_faults_always_clear_by_attempt_three() {
        let plan = FaultPlan::new(0xC0FFEE, ChaosProfile::Transient);
        for target in ["TABLA", "DECO", "RoboX", "Graphicionado", "TVM-VTA"] {
            for frag in 0..2048 {
                for kind in [FragmentKind::Compute, FragmentKind::Load, FragmentKind::Store] {
                    assert_eq!(plan.fault_for(target, frag, kind, 3), None);
                    assert_eq!(plan.fault_for(target, frag, kind, 4), None);
                    if let Some(f) = plan.fault_for(target, frag, kind, 1) {
                        assert!(f.retryable(), "transient fault {f} must be retryable");
                    }
                }
            }
            assert!(!plan.device_down(target), "transient profile never downs a device");
        }
    }

    #[test]
    fn hostile_profile_downs_some_device_somewhere() {
        // Not a probabilistic test: the draw is deterministic, we just pin
        // that the hostile profile actually exercises the outage path for
        // at least one of many seeds.
        let mut downs = 0;
        for seed in 0..32u64 {
            let plan = FaultPlan::new(seed, ChaosProfile::Hostile);
            for t in ["TABLA", "DECO", "RoboX", "Graphicionado", "TVM-VTA"] {
                downs += plan.device_down(t) as u32;
            }
        }
        assert!(downs > 0, "no device-down draw in 160 samples");
    }

    #[test]
    fn invocation_streams_differ_but_outages_are_stable() {
        let base = FaultPlan::new(42, ChaosProfile::Hostile);
        let k0 = base.for_invocation(0);
        let k1 = base.for_invocation(1);
        let draw = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..512).map(|i| p.fault_for("TABLA", i, FragmentKind::Compute, 1)).collect()
        };
        assert_ne!(draw(&k0), draw(&k1), "per-invocation fault streams must differ");
        for t in ["TABLA", "DECO", "RoboX"] {
            assert_eq!(k0.device_down(t), k1.device_down(t), "outages must be stable");
        }
    }

    #[test]
    fn backoff_schedule_doubles_then_caps() {
        let b = BackoffPolicy { base_ns: 100, multiplier: 2, cap_ns: 1000 };
        assert_eq!(b.delay_ns(1), 100);
        assert_eq!(b.delay_ns(2), 200);
        assert_eq!(b.delay_ns(3), 400);
        assert_eq!(b.delay_ns(4), 800);
        assert_eq!(b.delay_ns(5), 1000, "capped");
        assert_eq!(b.delay_ns(50), 1000, "stays capped without overflow");
    }

    #[test]
    fn virtual_clock_advances_and_saturates() {
        let mut c = VirtualClock::new();
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ns(), 12);
        c.advance(u64::MAX);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn config_defaults_and_overrides() {
        let off = ChaosConfig::off();
        assert!(off.is_off());
        let c = ChaosConfig::new(1, ChaosProfile::Transient).with_max_retries(5);
        assert!(!c.is_off());
        assert_eq!(c.max_retries, 5);
        assert_eq!(c.fragment_budget_ns, c.fragment_deadline_ns * 7);
        let d = ChaosConfig::off().with_down("TABLA");
        assert!(!d.is_off(), "forced outage counts as chaos");
    }
}
