//! The accelerator backend interface.
//!
//! A backend plays the role of the paper's "accelerator-provided compiler"
//! (§IV.C final step): it declares the operation granularity it accepts
//! (`Ot`, consumed by Algorithm 1), and turns the fragment stream Algorithm
//! 2 produced into an executable schedule with a cycle/energy account.
//! Functional results always come from executing the lowered srDFG itself,
//! so every backend is checked against the same ground truth.

use crate::fault::{FaultKind, FaultPlan};
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::SrDfg;

/// A simulated domain-specific accelerator (or general-purpose processor).
///
/// `Send + Sync` so the SoC can estimate independent partitions on worker
/// threads; backends are stateless cost models, so this costs nothing.
pub trait Backend: Send + Sync {
    /// Target name (matches the `AcceleratorSpec` name).
    fn name(&self) -> &'static str;

    /// The domain this backend serves.
    fn domain(&self) -> Domain;

    /// The operation-support contract consumed by the lowering algorithm.
    fn accel_spec(&self) -> AcceleratorSpec;

    /// Hardware parameters (clock, power).
    fn hw(&self) -> HwConfig;

    /// Estimates one invocation of this backend's partition. `graph` is
    /// the full lowered srDFG (fragments reference its nodes).
    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate;

    /// Estimates the *hand-optimized* ("optimal") implementation of the
    /// same kernel on this hardware — what an expert writing directly in
    /// the accelerator's native stack achieves (paper Fig. 9/12 baseline).
    /// Experts avoid the generic compilation overheads (schedule
    /// quantization, dispatch epilogues, imperfect tiling); the default is
    /// the compiled estimate itself.
    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        self.estimate(prog, graph, hints)
    }

    /// Consults the fault plan for dispatch attempt `attempt` (1-based) of
    /// fragment `fragment` on this backend. The default draws from the
    /// deterministic plan keyed by the backend's target name; a custom
    /// backend can override this to model device-specific failure modes
    /// (e.g. a DMA engine that never corrupts but often stalls).
    fn inject_fault(
        &self,
        plan: &FaultPlan,
        fragment: usize,
        kind: FragmentKind,
        attempt: u32,
    ) -> Option<FaultKind> {
        plan.fault_for(self.name(), fragment, kind, attempt)
    }
}

/// DMA transfer model between host DRAM and accelerator-local memory
/// (the paper's SoC cascades accelerators behind a host manager that
/// initiates DMA transfers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds (descriptor setup + interrupt).
    pub latency_s: f64,
}

impl Default for DmaModel {
    fn default() -> Self {
        // On-SoC DMA between DRAM and accelerator-local memory:
        // 16 GB/s sustained; descriptors are queued, so the per-transfer
        // overhead is small (150 ns).
        DmaModel { bandwidth: 1.6e10, latency_s: 1.5e-7 }
    }
}

impl DmaModel {
    /// Seconds to move `bytes` in one transfer.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_latency_dominates_small_transfers() {
        let dma = DmaModel::default();
        let small = dma.transfer_seconds(64);
        let big = dma.transfer_seconds(64 * 1024 * 1024);
        assert!(small < 3e-7);
        assert!(big > 4e-3);
    }
}
