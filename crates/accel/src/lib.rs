//! # pm-accel — simulated accelerator substrates for PolyMath
//!
//! The PolyMath paper evaluates on five physical accelerator targets plus
//! CPU/GPU baselines; none of that hardware is available here, so this
//! crate provides faithful simulator substitutes (see DESIGN.md §2 for the
//! substitution rationale):
//!
//! * [`tabla::Tabla`] — scalar-granularity dataflow ML accelerator
//!   (Data Analytics), with static level scheduling onto PE grids;
//! * [`deco::Deco`] — DSP-block FPGA overlay (DSP), with MAC fusion and
//!   stage-pipelined balanced DFGs;
//! * [`graphicionado::Graphicionado`] — vertex-program pipeline ASIC
//!   (Graph Analytics) streaming sparse edge lists;
//! * [`robox::Robox`] — macro-dataflow MPC accelerator (Robotics) with
//!   vector lanes and nonlinear units;
//! * [`vta::Vta`] — layer-granularity DNN core (Deep Learning) with a
//!   16×16 GEMM array;
//! * [`dnnweaver::DnnWeaver`] — an alternate template-based DL backend,
//!   demonstrating srDFG retargetability within one domain;
//! * [`hyperstreams::HyperStreams`] — the paper's Black-Scholes target:
//!   a spatially unrolled streaming pipeline, assigned per component via
//!   `TargetMap::set_override`;
//! * [`cpu::Cpu`] / [`gpu::Gpu`] — analytic roofline models of the Xeon
//!   E-2176G, Titan Xp and Jetson AGX Xavier baselines;
//! * [`soc::Soc`] — the multi-acceleration SoC: host manager + cascaded
//!   accelerators + DMA (paper §V.A.3).
//!
//! Every backend implements [`backend::Backend`]: it publishes the
//! operation set `Ot` the lowering algorithm checks against, and prices a
//! compiled partition in cycles/seconds/joules. Functional results always
//! come from executing the lowered srDFG, so simulators and the reference
//! interpreter can never disagree about values.
//!
//! The SoC runtime is fault-tolerant (DESIGN.md §10): [`fault`] defines a
//! typed fault model with a deterministic seed-driven injector, [`error`]
//! the structured [`SocError`] taxonomy that replaces panics on every
//! fallible path, and [`runtime`] the checkpoint/replay trajectory loop
//! with host-fallback re-lowering for downed devices.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod breaker;
pub mod classify;
pub mod cpu;
pub mod deco;
pub mod dnnweaver;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod graphicionado;
pub mod hyperstreams;
pub mod model;
pub mod pool;
pub mod robox;
pub mod runtime;
pub mod soc;
pub mod tabla;
pub mod vta;

pub use backend::{Backend, DmaModel};
pub use breaker::{BreakerBoard, BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
pub use classify::{profile, WorkProfile};
pub use cpu::Cpu;
pub use deco::Deco;
pub use dnnweaver::DnnWeaver;
pub use error::SocError;
pub use fault::{
    BackoffPolicy, ChaosConfig, ChaosProfile, FaultEvent, FaultKind, FaultPlan, VirtualClock,
};
pub use gpu::Gpu;
pub use graphicionado::Graphicionado;
pub use hyperstreams::HyperStreams;
pub use model::{HwConfig, PerfEstimate, WorkloadHints};
pub use pool::{PoolReport, ShardStats, SocPool};
pub use robox::Robox;
pub use runtime::{TrajectoryInputs, TrajectoryOutcome};
pub use soc::{ChaosOutcome, FallbackRecord, PartitionReport, Soc, SocReport};
pub use tabla::Tabla;
pub use vta::Vta;
