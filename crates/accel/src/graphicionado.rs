//! Graphicionado — a pipelined graph-analytics ASIC (Ham et al., MICRO
//! 2016; the paper's Graph Analytics target).
//!
//! Graphicionado executes *vertex programs* — Process/Reduce/Apply stages
//! over edge streams — on parallel pipelines backed by an on-chip
//! scratchpad for vertex properties (paper Fig. 6 shows PolyMath lowering
//! a PMLang vertex program to its pipeline-block IR). PolyMath therefore
//! stops lowering GA kernels at *group* granularity: the `reduce` over
//! incoming edges and the `apply` map stay whole, and this backend maps
//! them onto pipeline blocks.
//!
//! The PMLang formulation iterates over dense vertex×vertex index spaces,
//! but the hardware streams the actual (sparse) edge list; the workload
//! harness passes the real edge count via `WorkloadHints::effective_ops`.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::{NodeKind, SrDfg};

/// The Graphicionado backend (ASIC, 1 GHz, 64 MB eDRAM scratchpad).
#[derive(Debug, Clone)]
pub struct Graphicionado {
    /// Parallel processing streams (pipelines).
    pub streams: usize,
    /// Edges one stream processes per cycle (pipelined).
    pub edges_per_cycle_per_stream: f64,
    /// Vertex applies per cycle per stream.
    pub applies_per_cycle_per_stream: f64,
    /// On-chip eDRAM scratchpad for vertex properties (Table VI: 64 MB).
    /// Graphs whose property array exceeds it stream from DRAM at half
    /// throughput.
    pub scratchpad_bytes: u64,
}

impl Default for Graphicionado {
    fn default() -> Self {
        Graphicionado {
            streams: 8,
            // Sustained (not peak) per-stream rates: hash collisions and
            // destination conflicts keep achieved throughput below one
            // edge per cycle (the Graphicionado paper reports ~2-3 GTEPS).
            edges_per_cycle_per_stream: 0.35,
            applies_per_cycle_per_stream: 0.5,
            scratchpad_bytes: 64 * 1024 * 1024,
        }
    }
}

/// The pipeline-block program extracted from the partition (paper Fig. 6c).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineProgram {
    /// Number of Process/Reduce stages (edge-streaming blocks).
    pub reduce_blocks: usize,
    /// Number of Apply stages (vertex-streaming blocks).
    pub apply_blocks: usize,
    /// Vertices per iteration (from the reduce output space).
    pub vertices: u64,
    /// Dense edge-space size (vertices²-style bound from the program).
    pub dense_edges: u64,
}

impl Graphicionado {
    /// Extracts the Process/Reduce/Apply block structure from a lowered
    /// GA partition.
    pub fn pipeline_program(&self, prog: &AccProgram, graph: &SrDfg) -> PipelineProgram {
        let mut p = PipelineProgram::default();
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            let Some(id) = frag.node else { continue };
            match &graph.node(id).kind {
                NodeKind::Reduce(r) => {
                    p.reduce_blocks += 1;
                    p.vertices = p.vertices.max(srdfg::graph::space_size(&r.out_space) as u64);
                    p.dense_edges += (srdfg::graph::space_size(&r.out_space)
                        * srdfg::graph::space_size(&r.red_space))
                        as u64;
                }
                NodeKind::Map(m) => {
                    p.apply_blocks += 1;
                    p.vertices = p.vertices.max(srdfg::graph::space_size(&m.out_space) as u64);
                }
                _ => {}
            }
        }
        p
    }
}

/// The sparse edge count implied by a workload hint (dense edge space
/// scaled by the effective/dense op ratio).
fn effective_edges(p: &PipelineProgram, prog: &AccProgram, hints: &WorkloadHints) -> u64 {
    match hints.effective_ops {
        Some(eff) => {
            let dense = prog.compute_ops().max(1);
            ((p.dense_edges as f64) * (eff as f64 / dense as f64)).ceil() as u64
        }
        None => p.dense_edges,
    }
}

impl Backend for Graphicionado {
    fn name(&self) -> &'static str {
        "Graphicionado"
    }

    fn domain(&self) -> Domain {
        Domain::GraphAnalytics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "Graphicionado",
            Domain::GraphAnalytics,
            [
                // Group-granularity pipeline blocks: edge reduce + vertex apply.
                "sum",
                "min",
                "max",
                "prod",
                "any",
                "all",
                "argmin",
                "argmax",
                // Apply-stage elementwise ops over vertex properties.
                "map",
                "map.add",
                "map.sub",
                "map.mul",
                "map.select",
                "map.min2",
                "map.max2",
                "map.copy",
                "map.fill",
                "map.cmp.<",
                "map.cmp.<=",
                "map.cmp.>",
                "map.cmp.>=",
                "map.cmp.==",
                "map.cmp.!=",
                "map.cmp.&&",
                "map.cmp.||",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::graphicionado()
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let p = self.pipeline_program(prog, graph);
        // Real hardware streams the sparse edge list; explicit geometry
        // hints carry the paper-scale graph, the PMLang program itself the
        // scaled dense formulation.
        let edges = hints.edges.unwrap_or_else(|| effective_edges(&p, prog, hints));
        let vertices = hints.vertices.unwrap_or(p.vertices);
        // Vertex properties beyond the scratchpad spill to DRAM.
        let spill = if vertices * 8 > self.scratchpad_bytes { 1.5 } else { 1.0 };
        let edge_throughput = self.streams as f64 * self.edges_per_cycle_per_stream / spill;
        let apply_throughput = self.streams as f64 * self.applies_per_cycle_per_stream;
        let edge_cycles =
            (edges as f64 * p.reduce_blocks.max(1) as f64 / edge_throughput).ceil() as u64;
        let apply_cycles =
            (vertices as f64 * p.apply_blocks.max(1) as f64 / apply_throughput).ceil() as u64;
        let cycles = edge_cycles + apply_cycles + 128; // iteration epilogue
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        // A hand-written vertex program overlaps its reduce and apply
        // blocks perfectly and skips the per-iteration epilogue.
        let p = self.pipeline_program(prog, graph);
        let edges = hints.edges.unwrap_or_else(|| effective_edges(&p, prog, hints));
        let vertices = hints.vertices.unwrap_or(p.vertices);
        let spill = if vertices * 8 > self.scratchpad_bytes { 1.5 } else { 1.0 };
        let edge_throughput = self.streams as f64 * self.edges_per_cycle_per_stream / spill;
        let apply_throughput = self.streams as f64 * self.applies_per_cycle_per_stream;
        let cycles = ((edges as f64 / edge_throughput).max(vertices as f64 / apply_throughput))
            .ceil() as u64;
        let mut est = PerfEstimate::from_cycles(cycles.max(1), &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    /// BFS/SSSP-style vertex program over a dense weight matrix: one
    /// min-reduce over incident edges, one apply.
    fn sssp(vertices: usize) -> (SrDfg, TargetMap) {
        let src = format!(
            "reduction minr(a, b) = a < b ? a : b;
             main(input float e_w[{v}][{v}], state float dist[{v}], output float out[{v}]) {{
                 index u[0:{m}], v[0:{m}];
                 float cand[{v}];
                 cand[v] = min[u](dist[u] + e_w[u][v]);
                 dist[v] = cand[v] < dist[v] ? cand[v] : dist[v];
                 out[v] = dist[v];
             }}",
            v = vertices,
            m = vertices - 1
        );
        let prog = pmlang::parse(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        g.domain = Some(Domain::GraphAnalytics);
        let gacc = Graphicionado::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::GraphAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(gacc.accel_spec());
        lower(&mut g, &targets).unwrap();
        (g, targets)
    }

    #[test]
    fn extracts_pipeline_blocks() {
        let (g, targets) = sssp(16);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::GraphAnalytics)).unwrap();
        let gacc = Graphicionado::default();
        let p = gacc.pipeline_program(part, &g);
        assert!(p.reduce_blocks >= 1, "{p:?}");
        assert!(p.apply_blocks >= 1, "{p:?}");
        assert_eq!(p.vertices, 16);
        assert!(p.dense_edges >= 256);
    }

    #[test]
    fn sparse_hint_beats_dense_assumption() {
        let (g, targets) = sssp(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::GraphAnalytics)).unwrap();
        let gacc = Graphicionado::default();
        let dense = gacc.estimate(part, &g, &WorkloadHints::default());
        let sparse = gacc.estimate(
            part,
            &g,
            &WorkloadHints { effective_ops: Some(1024), ..Default::default() },
        );
        assert!(sparse.cycles < dense.cycles);
    }

    #[test]
    fn more_streams_go_faster() {
        let (g, targets) = sssp(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::GraphAnalytics)).unwrap();
        let one = Graphicionado { streams: 1, ..Default::default() };
        let eight = Graphicionado::default();
        let hints = WorkloadHints { effective_ops: Some(100_000), ..Default::default() };
        assert!(eight.estimate(part, &g, &hints).cycles < one.estimate(part, &g, &hints).cycles);
    }
}
