//! TVM-VTA — the Versatile Tensor Accelerator (Moreau et al., IEEE Micro
//! 2019; the paper's Deep Learning target).
//!
//! VTA is a layer-granularity DNN accelerator: a decoupled
//! load / compute / store pipeline around a 16×16 GEMM core and a vector
//! ALU, driven by a CISC-style instruction stream. PolyMath lowers DL
//! graphs only to *layer* granularity — `conv2d`, `matmul`, pooling,
//! activation maps — and "offers direct conversion of srDFG to the TVM
//! nodes" (paper §V.B.1). VTA is deliberately a *low-power edge* design,
//! which is why the paper reports it **slower** than a Xeon or Titan Xp on
//! ResNet/MobileNet while still winning on energy.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::{NodeKind, SrDfg};

/// The VTA backend (FPGA bitstream on the KCU1500, 150 MHz).
#[derive(Debug, Clone)]
pub struct Vta {
    /// GEMM core dimensions (`gemm_rows × gemm_cols` MACs per cycle).
    pub gemm_rows: usize,
    /// GEMM core columns.
    pub gemm_cols: usize,
    /// Vector-ALU lanes.
    pub alu_lanes: usize,
    /// Bytes the load/store modules move per cycle.
    pub io_bytes_per_cycle: u64,
    /// Fixed per-layer instruction overhead, in cycles.
    pub layer_overhead: u64,
    /// Achieved fraction of peak on well-shaped layers (load/compute
    /// imbalance, tile edges, dependency stalls — VTA publications report
    /// roughly half of peak sustained).
    pub efficiency: f64,
}

impl Default for Vta {
    fn default() -> Self {
        Vta {
            gemm_rows: 16,
            gemm_cols: 16,
            alu_lanes: 16,
            io_bytes_per_cycle: 16,
            layer_overhead: 256,
            efficiency: 0.45,
        }
    }
}

impl Vta {
    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.gemm_rows * self.gemm_cols) as u64
    }

    /// GEMM-core utilization for a reduction layer: the reduction feeds
    /// the MAC rows channel-by-channel and the output channels fill the
    /// columns, so small channel counts leave the array idle (e.g. a
    /// 3-input-channel first conv layer fills 3 of 16 rows).
    pub fn gemm_utilization(&self, out_channels: u64, in_channels: u64) -> f64 {
        let row_fill = (in_channels as f64 / self.gemm_rows as f64).min(1.0);
        let col_fill = (out_channels as f64 / self.gemm_cols as f64).min(1.0);
        (row_fill * col_fill).max(1.0 / self.macs_per_cycle() as f64)
    }

    fn fragment_cycles(&self, frag: &pm_lower::Fragment, graph: &SrDfg) -> u64 {
        let Some(id) = frag.node else { return 0 };
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Reduce(r) => {
                let out = srdfg::graph::space_size(&r.out_space) as u64;
                let red = srdfg::graph::space_size(&r.red_space) as u64;
                match node.name.as_str() {
                    "conv2d" | "matmul" | "matvec" | "dot" => {
                        let macs = out * red;
                        // The leading axes carry the channel dimensions:
                        // out_space[0] = output channels / rows,
                        // red_space[0] = input channels / reduce dim.
                        let oc = r.out_space.first().map_or(out, |a| a.size() as u64);
                        let ic = r.red_space.first().map_or(red, |a| a.size() as u64);
                        let util = self.gemm_utilization(oc, ic) * self.efficiency;
                        ((macs as f64) / (self.macs_per_cycle() as f64 * util)).ceil() as u64
                    }
                    // Pooling and other reductions run on the vector ALU.
                    _ => (out * red).div_ceil(self.alu_lanes as u64),
                }
            }
            NodeKind::Map(m) => {
                let points = srdfg::graph::space_size(&m.out_space) as u64;
                (points * m.kernel.compute_op_count().max(1)).div_ceil(self.alu_lanes as u64)
            }
            _ => 0,
        }
    }
}

impl Backend for Vta {
    fn name(&self) -> &'static str {
        "TVM-VTA"
    }

    fn domain(&self) -> Domain {
        Domain::DeepLearning
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "TVM-VTA",
            Domain::DeepLearning,
            [
                // Layer granularity (coarse DNN layers, paper §V.A.3).
                "conv2d",
                "matmul",
                "matvec",
                "dot",
                "pool",
                "sum",
                "max",
                "min",
                "argmax",
                "argmin",
                // Vector-ALU maps (activation, scale/shift, residual add).
                "map",
                "map.add",
                "map.sub",
                "map.mul",
                "map.relu",
                "map.max2",
                "map.min2",
                "map.copy",
                "map.fill",
                "map.select",
                "map.sigmoid",
                "map.tanh",
                "map.exp",
                "map.div",
                "map.cmp.<",
                "map.cmp.>",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::kcu1500("TVM-VTA")
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, _hints: &WorkloadHints) -> PerfEstimate {
        let mut compute = 0u64;
        let mut layers = 0u64;
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            compute += self.fragment_cycles(frag, graph);
            layers += 1;
        }
        // Load/store modules are decoupled but tile traffic still bounds
        // the pipeline when compute is thin.
        let io_cycles = prog.dma_bytes().div_ceil(self.io_bytes_per_cycle);
        let cycles = compute.max(io_cycles) + layers * self.layer_overhead;
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    // PolyMath converts srDFGs directly to TVM nodes, so the compiled
    // schedule *is* the hand-optimized one (paper §V.B.1: "PolyMath does
    // not contribute any overhead specifically for deep learning
    // acceleration"); the default expert estimate (= compiled) applies.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    /// A conv → relu → dense micro-CNN.
    fn micro_cnn(channels: usize, size: usize) -> (SrDfg, TargetMap) {
        let o = size - 2; // valid 3×3 conv
        let src = format!(
            "main(input float img[{ch}][{s}][{s}],
                  param float w[{ch}][{ch}][3][3],
                  param float fc[10][{ch}],
                  output float logits[10]) {{
                 index oc[0:{chm}], ic[0:{chm}], i[0:{om}], j[0:{om}],
                       kh[0:2], kw[0:2], t[0:9], c2[0:{chm}];
                 float conv[{ch}][{o}][{o}], act[{ch}][{o}][{o}], pooled[{ch}];
                 conv[oc][i][j] = sum[ic][kh][kw](w[oc][ic][kh][kw]*img[ic][i+kh][j+kw]);
                 act[oc][i][j] = relu(conv[oc][i][j]);
                 pooled[oc] = max[i][j](act[oc][i][j]);
                 logits[t] = sum[c2](fc[t][c2]*pooled[c2]);
             }}",
            ch = channels,
            chm = channels - 1,
            s = size,
            o = o,
            om = o - 1,
        );
        let prog = pmlang::parse(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        g.domain = Some(Domain::DeepLearning);
        let vta = Vta::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DeepLearning);
        let mut targets = TargetMap::host_only(host);
        targets.set(vta.accel_spec());
        lower(&mut g, &targets).unwrap();
        (g, targets)
    }

    #[test]
    fn cnn_stays_at_layer_granularity() {
        let (g, targets) = micro_cnn(8, 8);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::DeepLearning)).unwrap();
        let ops: Vec<_> = part
            .fragments
            .iter()
            .filter(|f| f.kind == FragmentKind::Compute)
            .map(|f| f.op.clone())
            .collect();
        assert!(ops.iter().any(|o| o == "conv2d"), "{ops:?}");
        assert!(ops.iter().any(|o| o == "map.relu"), "{ops:?}");
        assert!(ops.iter().any(|o| o == "matvec"), "{ops:?}");
        assert!(!ops.iter().any(|o| o == "unpack"), "{ops:?}");
    }

    #[test]
    fn small_channel_convs_underutilize_gemm() {
        let vta = Vta::default();
        // 3 input channels fill 3/16 rows; 16 channels fill the array.
        let low = vta.gemm_utilization(64, 3);
        let high = vta.gemm_utilization(64, 16);
        assert!(low < high);
        assert_eq!(high, 1.0);
    }

    #[test]
    fn bigger_images_take_longer() {
        let vta = Vta::default();
        let mut last = 0u64;
        for s in [6, 10, 18] {
            let (g, targets) = micro_cnn(8, s);
            let compiled = compile_program(&g, &targets).unwrap();
            let part = compiled.partition(Some(Domain::DeepLearning)).unwrap();
            let est = vta.estimate(part, &g, &WorkloadHints::default());
            assert!(est.cycles > last, "s={s}");
            last = est.cycles;
        }
    }

    #[test]
    fn functional_equivalence_of_lowered_cnn() {
        use std::collections::HashMap;
        let (g, _) = micro_cnn(4, 6);
        // Execute the lowered layer-granularity graph and compare with the
        // unlowered original.
        let prog_src_graph = g.clone();
        let mut rng = 0u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut t = |shape: Vec<usize>| {
            let n: usize = shape.iter().product();
            srdfg::Tensor::from_vec(pmlang::DType::Float, shape, (0..n).map(|_| next()).collect())
                .unwrap()
        };
        let feeds = HashMap::from([
            ("img".to_string(), t(vec![4, 6, 6])),
            ("w".to_string(), t(vec![4, 4, 3, 3])),
            ("fc".to_string(), t(vec![10, 4])),
        ]);
        let out = srdfg::Machine::new(prog_src_graph).invoke(&feeds).unwrap();
        assert_eq!(out["logits"].shape(), &[10]);
        // Logits are finite and non-degenerate.
        let logits = out["logits"].as_real_slice().unwrap();
        assert!(logits.iter().all(|v| v.is_finite()));
        assert!(logits.iter().any(|v| v.abs() > 1e-9));
    }
}
