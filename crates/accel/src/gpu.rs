//! Analytic models of the baseline GPUs — Titan Xp (3840 CUDA cores,
//! 1.5 GHz, 250 W) and Jetson AGX Xavier (512 cores, 1.3 GHz, 30 W) —
//! running the paper's native GPU stacks (cuBLAS, Enterprise, cuFFT,
//! NVBLAS, TensorFlow; Table V).
//!
//! The model combines a per-class throughput roofline with two effects
//! that drive the paper's results: **kernel-launch overhead** (dominant
//! for the small control/analytics kernels, which is why MobileRobot or
//! ElecUse underutilize a Titan Xp) and an **occupancy ramp** — a kernel
//! only approaches peak throughput when it exposes far more parallel work
//! than the GPU has lanes.

use crate::backend::Backend;
use crate::classify::{profile, WorkProfile};
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec};
use pmlang::Domain;
use srdfg::SrDfg;

/// An analytic GPU model.
#[derive(Debug, Clone)]
pub struct Gpu {
    /// Hardware identity (clock, power).
    pub hw: HwConfig,
    /// Peak dense throughput (FLOP/s).
    pub peak_dense_flops: f64,
    /// Peak streaming/vector throughput (bandwidth-bound FLOP/s).
    pub peak_streaming_flops: f64,
    /// Throughput on irregular/divergent reductions.
    pub irregular_flops: f64,
    /// Scalar (serialized dataflow) throughput.
    pub scalar_flops: f64,
    /// DRAM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Kernel-launch + driver overhead per kernel, seconds.
    pub launch_overhead_s: f64,
    /// Parallel work (scalar ops per kernel) needed to reach half of peak.
    pub occupancy_knee: f64,
}

impl Gpu {
    /// The Titan Xp discrete GPU.
    pub fn titan_xp() -> Self {
        Gpu {
            hw: HwConfig::titan_xp(),
            peak_dense_flops: 1.05e13,    // ~10.5 TFLOP/s fp32
            peak_streaming_flops: 1.3e11, // bound by 547 GB/s
            irregular_flops: 2.0e10,
            scalar_flops: 1.0e9,
            mem_bandwidth: 5.47e11,
            launch_overhead_s: 8.0e-6,
            occupancy_knee: 2.0e6,
        }
    }

    /// The Jetson AGX Xavier embedded GPU.
    pub fn jetson_xavier() -> Self {
        Gpu {
            hw: HwConfig::jetson_xavier(),
            peak_dense_flops: 1.3e12,     // ~1.3 TFLOP/s fp32
            peak_streaming_flops: 3.0e10, // bound by 137 GB/s
            irregular_flops: 6.0e9,
            scalar_flops: 4.0e8,
            mem_bandwidth: 1.37e11,
            launch_overhead_s: 1.2e-5,
            occupancy_knee: 2.5e5,
        }
    }

    /// Occupancy factor in (0, 1]: fraction of peak achieved for a kernel
    /// exposing `work` parallel scalar ops.
    fn occupancy(&self, work: f64) -> f64 {
        (work / (work + self.occupancy_knee)).max(1.0e-4)
    }

    /// Seconds for one invocation of a profiled partition.
    pub fn seconds_for(&self, p: &WorkProfile, hints: &WorkloadHints) -> f64 {
        let mut dense = p.dense_ops as f64;
        // GPU special-function units evaluate transcendentals at vector
        // rate, so they fold into the streaming class.
        let mut streaming = p.streaming_ops as f64 + p.vector_ops as f64 + p.nonlinear_ops as f64;
        let mut irregular = p.irregular_ops as f64;
        if let Some(eff) = hints.effective_ops {
            let total = p.total_ops().max(1) as f64;
            let ratio = eff as f64 / total;
            dense *= ratio;
            streaming *= ratio;
            irregular *= ratio;
        }
        let kernels = p.kernels.max(1) as f64;
        // The native stack fuses `batch` logical invocations per launch:
        // more parallel work per kernel (occupancy) and amortized launches.
        let batch = hints.gpu_batch.unwrap_or(1).max(1) as f64;
        let per_kernel_work = (dense + streaming + irregular) / kernels * batch;
        let occ = self.occupancy(per_kernel_work);
        let compute = dense / (self.peak_dense_flops * occ)
            + streaming / (self.peak_streaming_flops * occ)
            + irregular / (self.irregular_flops * occ)
            + p.scalar_ops as f64 / self.scalar_flops;
        let bytes = hints.effective_bytes.unwrap_or(p.touched_bytes.max(p.boundary_bytes)) as f64;
        let memory = bytes / self.mem_bandwidth;
        compute.max(memory) + kernels * self.launch_overhead_s / batch
    }
}

impl Backend for Gpu {
    fn name(&self) -> &'static str {
        if self.hw.name.contains("Titan") {
            "Titan Xp"
        } else {
            "Jetson Xavier"
        }
    }

    fn domain(&self) -> Domain {
        Domain::DeepLearning
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::general_purpose(self.hw.name, Domain::DeepLearning)
    }

    fn hw(&self) -> HwConfig {
        self.hw.clone()
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let p = profile(prog, graph);
        let seconds = self.seconds_for(&p, hints);
        PerfEstimate {
            cycles: (seconds * self.hw.freq_hz) as u64,
            seconds,
            energy_j: seconds * self.hw.power_w,
            dma_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, TargetMap};

    fn estimates(src: &str) -> (PerfEstimate, PerfEstimate, PerfEstimate) {
        let prog = pmlang::parse(src).unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let targets = TargetMap::host_only(crate::cpu::Cpu::default().accel_spec());
        let compiled = compile_program(&g, &targets).unwrap();
        let part = &compiled.partitions[0];
        let h = WorkloadHints::default();
        (
            crate::cpu::Cpu::default().estimate(part, &g, &h),
            Gpu::titan_xp().estimate(part, &g, &h),
            Gpu::jetson_xavier().estimate(part, &g, &h),
        )
    }

    #[test]
    fn titan_wins_big_dense_kernels() {
        let (cpu, titan, _) = estimates(
            "main(input float A[256][256], input float B[256][256], output float C[256][256]) {
                 index i[0:255], j[0:255], k[0:255];
                 C[i][j] = sum[k](A[i][k]*B[k][j]);
             }",
        );
        assert!(titan.seconds < cpu.seconds, "titan {} vs cpu {}", titan.seconds, cpu.seconds);
    }

    #[test]
    fn launch_overhead_hurts_tiny_kernels() {
        let (cpu, titan, _) = estimates(
            "main(input float x[16], output float y[16]) {
                 index i[0:15];
                 y[i] = x[i] * 2.0 + 1.0;
             }",
        );
        // A 16-element kernel is dominated by the 8 µs launch; the CPU
        // finishes in nanoseconds.
        assert!(titan.seconds > cpu.seconds * 10.0);
    }

    #[test]
    fn jetson_slower_but_lower_energy_than_titan_on_small_kernels() {
        let (_, titan, jetson) = estimates(
            "main(input float x[4096], output float y) {
                 index i[0:4095];
                 y = sum[i](x[i]*x[i]);
             }",
        );
        // Small kernel: both launch-bound; Jetson burns far less power.
        assert!(jetson.energy_j < titan.energy_j);
    }

    #[test]
    fn batching_amortizes_launches_and_raises_occupancy() {
        let prog = pmlang::parse(
            "main(input float blk[8][8], param float ck[8][8], output float out[8][8]) {
                 index u[0:7], v[0:7], x[0:7], y[0:7];
                 out[u][v] = sum[x][y](blk[x][y]*ck[u][x]*ck[v][y]);
             }",
        )
        .unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let targets = TargetMap::host_only(crate::cpu::Cpu::default().accel_spec());
        let compiled = compile_program(&g, &targets).unwrap();
        let part = &compiled.partitions[0];
        let gpu = Gpu::titan_xp();
        let unbatched = gpu.estimate(part, &g, &WorkloadHints::default());
        let batched =
            gpu.estimate(part, &g, &WorkloadHints { gpu_batch: Some(16384), ..Default::default() });
        // A whole-image launch is orders of magnitude cheaper per block.
        assert!(
            batched.seconds * 100.0 < unbatched.seconds,
            "batched {} vs {}",
            batched.seconds,
            unbatched.seconds
        );
    }

    #[test]
    fn occupancy_ramp_is_monotone() {
        let g = Gpu::titan_xp();
        assert!(g.occupancy(1e3) < g.occupancy(1e6));
        assert!(g.occupancy(1e9) > 0.99);
    }
}
