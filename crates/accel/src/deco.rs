//! DECO — a DSP-block based FPGA accelerator overlay (Jain et al., FCCM
//! 2016; the paper's DSP-domain target).
//!
//! DECO composes the FPGA's hard DSP48 blocks into a low-overhead overlay:
//! each block executes a (pipelined) multiply-accumulate per cycle, and the
//! kernel's dataflow graph is mapped stage-by-stage onto the block array.
//! DECO "requires specific topologies for their graph-based IR, i.e.
//! balanced DFGs, because they rely on stage-based computation" (paper
//! §V.B.1) — which is exactly what the srDFG's balanced adder-tree
//! expansion provides.
//!
//! The scheduler here fuses `mul → add` pairs into single DSP ops (the
//! block's hard MAC path), levels the remaining graph, and pipelines
//! stages: after the fill latency, each stage streams one wave per cycle.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::{BinOp, Domain};
use srdfg::{Modifier, NodeId, NodeKind, ScalarKind, SrDfg};
use std::collections::{HashMap, HashSet};

/// The DECO backend (FPGA overlay on the KCU1500, 150 MHz).
#[derive(Debug, Clone)]
pub struct Deco {
    /// Available DSP blocks in the overlay.
    pub dsp_blocks: usize,
    /// Bytes streamed in/out per cycle.
    pub stream_bytes_per_cycle: u64,
}

impl Default for Deco {
    fn default() -> Self {
        Deco { dsp_blocks: 256, stream_bytes_per_cycle: 64 }
    }
}

/// A stage-mapped schedule.
#[derive(Debug, Clone, Default)]
pub struct DecoSchedule {
    /// Effective DSP operations per pipeline stage (after MAC fusion).
    pub stage_ops: Vec<usize>,
    /// Number of `mul→add` pairs fused into single DSP MACs.
    pub fused_macs: usize,
    /// Bytes streamed per invocation.
    pub streamed_bytes: u64,
}

impl DecoSchedule {
    /// Cycles on `blocks` DSP blocks: stages issue `ceil(ops/blocks)`
    /// waves; the pipeline adds one fill cycle per stage.
    pub fn cycles(&self, blocks: usize) -> u64 {
        let mut cycles = self.stage_ops.len() as u64; // pipeline fill
        for &ops in &self.stage_ops {
            cycles += ops.div_ceil(blocks) as u64;
        }
        cycles.max(1)
    }
}

impl Deco {
    /// Builds the stage schedule with MAC fusion.
    pub fn schedule(&self, prog: &AccProgram, graph: &SrDfg) -> DecoSchedule {
        let mine: HashMap<NodeId, &ScalarKind> = prog
            .fragments
            .iter()
            .filter(|f| f.kind == FragmentKind::Compute)
            .filter_map(|f| f.node)
            .filter_map(|id| match &graph.node(id).kind {
                NodeKind::Scalar(k) => Some((id, k.get())),
                _ => None,
            })
            .collect();

        // MAC fusion: a mul whose single consumer is an add absorbs into
        // that add's DSP block (DSP48 computes a·b + c, so each add can
        // host at most one multiplier).
        let mut fused: HashSet<NodeId> = HashSet::new();
        let mut host_add_taken: HashSet<NodeId> = HashSet::new();
        let mut mul_ids: Vec<NodeId> = mine
            .iter()
            .filter(|(_, k)| matches!(k, ScalarKind::Bin(BinOp::Mul)))
            .map(|(&id, _)| id)
            .collect();
        mul_ids.sort();
        for id in mul_ids {
            let node = graph.node(id);
            let out = node.outputs[0];
            let consumers = &graph.edge(out).consumers;
            if consumers.len() == 1 {
                let (c, _) = consumers[0];
                if matches!(mine.get(&c), Some(ScalarKind::Bin(BinOp::Add)))
                    && host_add_taken.insert(c)
                {
                    fused.insert(id);
                }
            }
        }

        // Level the unfused ops (a fused mul inherits its add's level).
        let mut level: HashMap<NodeId, usize> = HashMap::new();
        let mut sched = DecoSchedule { fused_macs: fused.len(), ..Default::default() };
        for id in graph.topo_order() {
            if !mine.contains_key(&id) {
                continue;
            }
            let node = graph.node(id);
            let mut l = 0usize;
            for &e in &node.inputs {
                if let Some((p, _)) = graph.edge(e).producer {
                    if mine.contains_key(&p) {
                        // A fused producer shares our stage.
                        let bump = usize::from(!fused.contains(&p));
                        l = l.max(level[&p] + bump);
                    }
                }
            }
            level.insert(id, l);
            if fused.contains(&id) {
                continue; // accounted within its consumer's MAC
            }
            if sched.stage_ops.len() <= l {
                sched.stage_ops.resize(l + 1, 0);
            }
            sched.stage_ops[l] += 1;
        }

        for frag in &prog.fragments {
            if frag.kind == FragmentKind::Compute {
                continue;
            }
            for a in frag.inputs.iter().chain(&frag.outputs) {
                if matches!(a.modifier(), Modifier::Input | Modifier::Output | Modifier::Temp) {
                    let per = if a.dtype() == pmlang::DType::Complex { 8 } else { 4 };
                    sched.streamed_bytes += a.shape().iter().product::<usize>() as u64 * per;
                }
            }
        }
        sched
    }
}

impl Backend for Deco {
    fn name(&self) -> &'static str {
        "DECO"
    }

    fn domain(&self) -> Domain {
        Domain::Dsp
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "DECO",
            Domain::Dsp,
            [
                // DSP-block primitive ops (single-op granularity, paper §V.A.3).
                // `mod`/`floor` are index-manipulation ops the overlay's
                // address generators provide (butterfly indexing).
                "add", "sub", "mul", "div", "mod", "floor", "neg", "select", "const", "cmp.==",
                "cmp.!=", "cmp.<", "cmp.<=", "cmp.>", "cmp.>=",
                // CORDIC-style units for transcendental factors.
                "sin", "cos", "sqrt", "abs", "complex", "creal", "cimag", "min2", "max2",
                // Marshalling.
                "unpack", "pack",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::kcu1500("DECO")
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let sched = self.schedule(prog, graph);
        let mut compute_cycles = sched.cycles(self.dsp_blocks);
        compute_cycles =
            ((compute_cycles as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream_cycles = sched.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        // Small per-invocation control cost: back-to-back kernels stream
        // through the pipelined overlay, so fill is amortized.
        let cycles = compute_cycles.max(stream_cycles) + 8;
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        // An expert DECO mapping keeps every DSP block busy each cycle:
        // total fused work over the block count plus pipeline depth.
        let sched = self.schedule(prog, graph);
        let total: u64 = sched.stage_ops.iter().map(|&o| o as u64).sum();
        let mut compute = total.div_ceil(self.dsp_blocks as u64) + sched.stage_ops.len() as u64;
        compute = ((compute as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream = sched.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        let mut est = PerfEstimate::from_cycles(compute.max(stream).max(1), &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    /// A small dot-product-with-scale DSP kernel (complex-free so every op
    /// maps onto DSP blocks).
    fn fir(taps: usize) -> (SrDfg, TargetMap) {
        let src = format!(
            "main(input float x[{n}], param float h[{n}], output float y) {{
                 index i[0:{m}];
                 y = sum[i](h[i]*x[i]);
             }}",
            n = taps,
            m = taps - 1
        );
        let prog = pmlang::parse(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        g.domain = Some(Domain::Dsp);
        let deco = Deco::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::Dsp);
        let mut targets = TargetMap::host_only(host);
        targets.set(deco.accel_spec());
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        (g, targets)
    }

    #[test]
    fn fuses_macs_in_dot_product() {
        let (g, targets) = fir(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::Dsp)).unwrap();
        let sched = Deco::default().schedule(part, &g);
        // Every mul feeds exactly one adder-tree add — but only the 32
        // first-level adds have mul operands; those muls all fuse.
        assert!(sched.fused_macs >= 32, "fused {}", sched.fused_macs);
        // Balanced adder tree: log2(64) stages.
        assert!(sched.stage_ops.len() >= 6, "stages {}", sched.stage_ops.len());
    }

    #[test]
    fn pipeline_cycles_scale_with_taps() {
        let deco = Deco::default();
        let mut last = 0u64;
        for taps in [64, 512, 2048] {
            let (g, targets) = fir(taps);
            let compiled = compile_program(&g, &targets).unwrap();
            let part = compiled.partition(Some(Domain::Dsp)).unwrap();
            let est = deco.estimate(part, &g, &WorkloadHints::default());
            assert!(est.cycles > last, "taps={taps}");
            last = est.cycles;
        }
    }

    #[test]
    fn params_do_not_stream() {
        let (g, targets) = fir(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::Dsp)).unwrap();
        let sched = Deco::default().schedule(part, &g);
        // Streams x (256B) and y (4B) but not the 256B of taps.
        assert!(sched.streamed_bytes <= 300, "streamed {}", sched.streamed_bytes);
    }
}
