//! TABLA — template-based dataflow accelerator for statistical ML
//! (Mahajan et al., HPCA 2016; the paper's Data Analytics target).
//!
//! TABLA executes a *scalar-granularity* dataflow graph on a grid of
//! processing units (PUs), each containing processing engines (PEs) with a
//! simple ALU plus shared nonlinear units. PolyMath therefore lowers DA
//! kernels all the way to scalar ops (adder trees, multipliers, sigmoid
//! lookups), and this backend statically schedules that fabric:
//! level-by-level list scheduling with a PE resource bound, multi-cycle
//! latencies for expensive ops, and cross-PU communication overhead.
//!
//! Data placement follows the type modifiers (paper §II.A): `input`/
//! `output` values stream through FIFOs every invocation; `state` (the
//! model) and `param` values are pinned in on-chip buffers and cost nothing
//! per invocation — exactly why PMLang exposes those modifiers.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::{Domain, ScalarFunc};
use srdfg::{Modifier, NodeId, NodeKind, ScalarKind, SrDfg};
use std::collections::HashMap;

/// The TABLA backend (FPGA bitstream on the KCU1500, 150 MHz).
#[derive(Debug, Clone)]
pub struct Tabla {
    /// Processing units.
    pub pus: usize,
    /// Processing engines per PU.
    pub pes_per_pu: usize,
    /// Bytes the input FIFOs deliver per cycle.
    pub stream_bytes_per_cycle: u64,
}

impl Default for Tabla {
    fn default() -> Self {
        // A mid-size TABLA instantiation on the KCU1500: 16 PUs × 8 PEs
        // (the template scales with the FPGA's DSP budget).
        Tabla { pus: 16, pes_per_pu: 8, stream_bytes_per_cycle: 64 }
    }
}

/// A static schedule: operations per dataflow level.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// `(ops, max latency)` per ASAP level.
    pub levels: Vec<(usize, u64)>,
    /// Total scheduled operations.
    pub total_ops: usize,
    /// Input/output bytes streamed per invocation.
    pub streamed_bytes: u64,
}

impl Schedule {
    /// Cycles the schedule needs on `pes` engines: each level issues
    /// `ceil(ops/pes)` waves, and the level's deepest op adds its
    /// pipeline latency.
    pub fn cycles(&self, pes: usize) -> u64 {
        let mut cycles = 0u64;
        for &(ops, latency) in &self.levels {
            if ops == 0 {
                continue;
            }
            cycles += ops.div_ceil(pes) as u64 + latency.saturating_sub(1);
        }
        cycles.max(1)
    }
}

/// ALU latency of a scalar operation, in cycles.
fn op_latency(kind: &ScalarKind) -> u64 {
    match kind {
        ScalarKind::Bin(op) => match op {
            pmlang::BinOp::Mul => 2,
            pmlang::BinOp::Div | pmlang::BinOp::Pow | pmlang::BinOp::Mod => 4,
            _ => 1,
        },
        ScalarKind::Func(f) => match f {
            // Nonlinear units are lookup-table based, 4-cycle pipelined.
            _ if f.is_nonlinear() => 4,
            ScalarFunc::Min2 | ScalarFunc::Max2 | ScalarFunc::Abs | ScalarFunc::Sign => 1,
            _ => 2,
        },
        ScalarKind::Un(_) | ScalarKind::Select | ScalarKind::Const(_) => 1,
    }
}

impl Tabla {
    /// Total processing engines.
    pub fn pes(&self) -> usize {
        self.pus * self.pes_per_pu
    }

    /// Builds the static level schedule for this backend's partition.
    pub fn schedule(&self, prog: &AccProgram, graph: &SrDfg) -> Schedule {
        // ASAP levels over the partition's scalar nodes.
        let mine: HashMap<NodeId, &ScalarKind> = prog
            .fragments
            .iter()
            .filter(|f| f.kind == FragmentKind::Compute)
            .filter_map(|f| f.node)
            .filter_map(|id| match &graph.node(id).kind {
                NodeKind::Scalar(k) => Some((id, k.get())),
                _ => None,
            })
            .collect();
        let mut level: HashMap<NodeId, usize> = HashMap::new();
        let mut sched = Schedule::default();
        for id in graph.topo_order() {
            let Some(kind) = mine.get(&id) else { continue };
            let node = graph.node(id);
            let mut l = 0usize;
            for &e in &node.inputs {
                if let Some((p, _)) = graph.edge(e).producer {
                    if mine.contains_key(&p) {
                        l = l.max(level[&p] + 1);
                    }
                }
            }
            level.insert(id, l);
            if sched.levels.len() <= l {
                sched.levels.resize(l + 1, (0, 0));
            }
            sched.levels[l].0 += 1;
            sched.levels[l].1 = sched.levels[l].1.max(op_latency(kind));
            sched.total_ops += 1;
        }
        // Streaming bytes: input/output flows cross the FIFOs every
        // invocation; state/param stay resident on-chip.
        for frag in &prog.fragments {
            if frag.kind == FragmentKind::Compute {
                continue;
            }
            for a in frag.inputs.iter().chain(&frag.outputs) {
                if matches!(a.modifier(), Modifier::Input | Modifier::Output | Modifier::Temp) {
                    let per = if a.dtype() == pmlang::DType::Complex { 8 } else { 4 };
                    sched.streamed_bytes += a.shape().iter().product::<usize>() as u64 * per;
                }
            }
        }
        sched
    }
}

impl Backend for Tabla {
    fn name(&self) -> &'static str {
        "TABLA"
    }

    fn domain(&self) -> Domain {
        Domain::DataAnalytics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "TABLA",
            Domain::DataAnalytics,
            [
                // Scalar ALU ops.
                "add", "sub", "mul", "div", "mod", "pow", "neg", "not", "select", "const", "cmp.==",
                "cmp.!=", "cmp.<", "cmp.<=", "cmp.>", "cmp.>=", "cmp.&&", "cmp.||", "or", "and",
                // Nonlinear units.
                "sigmoid", "gaussian", "exp", "ln", "sqrt", "tanh", "relu", "abs", "sign", "min2",
                "max2", "erf", "phi", "floor", "ceil",
                // Group comparators (argmin/argmax trees exist in TABLA's
                // template library for k-means style models).
                "argmin", "argmax", "max", "min", // Marshalling.
                "unpack", "pack",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::kcu1500("TABLA")
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let sched = self.schedule(prog, graph);
        let mut compute_cycles = sched.cycles(self.pes());
        // Arg-reductions that stayed at group granularity run on the
        // comparator tree: size/PEs cycles each.
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            if matches!(frag.op.as_str(), "argmin" | "argmax" | "max" | "min") {
                compute_cycles += (frag.ops / self.pes() as u64).max(1);
            }
        }
        // Sparse workloads: scale compute by the effective/dense ratio.
        compute_cycles =
            ((compute_cycles as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream_cycles = sched.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        // Streaming overlaps compute; the slower of the two dominates.
        let cycles = compute_cycles.max(stream_cycles) + 32; // control epilogue
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        // An expert TABLA template packs ops with no per-level waste: the
        // bound is total work over the PE count plus the dataflow depth.
        let sched = self.schedule(prog, graph);
        let mut compute =
            (sched.total_ops as u64).div_ceil(self.pes() as u64) + sched.levels.len() as u64;
        compute = ((compute as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let stream = sched.streamed_bytes.div_ceil(self.stream_bytes_per_cycle);
        let mut est = PerfEstimate::from_cycles(compute.max(stream).max(1), &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    fn logistic_regression(features: usize) -> (SrDfg, TargetMap) {
        let src = format!(
            "main(input float x[{n}], state float w[{n}], input float label, output float y) {{
                 index i[0:{m}];
                 float mu;
                 y = sigmoid(sum[i](w[i]*x[i]));
                 mu = (y - label) * 0.1;
                 w[i] = w[i] - mu * x[i];
             }}",
            n = features,
            m = features - 1
        );
        let prog = pmlang::parse(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        g.domain = Some(Domain::DataAnalytics);
        let tabla = Tabla::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(tabla.accel_spec());
        lower(&mut g, &targets).unwrap();
        pm_passes::Pass::run(&pm_passes::ElideMarshalling, &mut g);
        (g, targets)
    }

    #[test]
    fn schedules_logistic_regression() {
        let (g, targets) = logistic_regression(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::DataAnalytics)).unwrap();
        let tabla = Tabla::default();
        let sched = tabla.schedule(part, &g);
        // Dot product of 64 → 64 muls + 63 adds + sigmoid + update ops.
        assert!(sched.total_ops > 190, "got {}", sched.total_ops);
        // The adder tree gives a logarithmic level count.
        assert!(sched.levels.len() >= 7, "levels {}", sched.levels.len());
        let est = tabla.estimate(part, &g, &WorkloadHints::default());
        assert!(est.cycles > 0);
        assert!(est.seconds > 0.0 && est.energy_j > 0.0);
    }

    #[test]
    fn more_pes_never_slower() {
        let (g, targets) = logistic_regression(128);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::DataAnalytics)).unwrap();
        let small = Tabla { pus: 2, pes_per_pu: 4, ..Tabla::default() };
        let big = Tabla { pus: 8, pes_per_pu: 8, ..Tabla::default() };
        let sched_small = small.schedule(part, &g);
        let sched_big = big.schedule(part, &g);
        assert!(sched_big.cycles(big.pes()) <= sched_small.cycles(small.pes()));
    }

    #[test]
    fn state_does_not_stream() {
        let (g, targets) = logistic_regression(64);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::DataAnalytics)).unwrap();
        let sched = Tabla::default().schedule(part, &g);
        // Streams x (64×4B), label, y — NOT the 64-element weight state.
        assert!(sched.streamed_bytes < 64 * 4 * 2 + 64, "streamed {}", sched.streamed_bytes);
    }

    #[test]
    fn bigger_models_take_longer() {
        let t = Tabla::default();
        let mut last = 0u64;
        for n in [32, 128, 512] {
            let (g, targets) = logistic_regression(n);
            let compiled = compile_program(&g, &targets).unwrap();
            let part = compiled.partition(Some(Domain::DataAnalytics)).unwrap();
            let est = t.estimate(part, &g, &WorkloadHints::default());
            assert!(est.cycles > last, "n={n}: {} !> {last}", est.cycles);
            last = est.cycles;
        }
    }
}
