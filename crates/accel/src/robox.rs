//! RoboX — an end-to-end programmable accelerator for autonomous-control
//! (MPC) workloads (Sacks et al., ISCA 2018; the paper's Robotics target).
//!
//! RoboX's hierarchy "begins at the System level, followed by finer
//! grained Task computations all the way down to varying operation
//! granularities in its macro dataflow graph, such as Vector, Scalar, and
//! Group operations" (paper §IV.C). PolyMath therefore lowers RBT kernels
//! to *group/vector* granularity: matrix-vector products, vector
//! elementwise ops, and nonlinear evaluations stay whole, and this backend
//! schedules them onto vector lanes plus a nonlinear function unit.

use crate::backend::Backend;
use crate::model::{HwConfig, PerfEstimate, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use srdfg::{NodeKind, SrDfg};

/// The RoboX backend (ASIC, 1 GHz).
#[derive(Debug, Clone)]
pub struct Robox {
    /// MAC/ALU vector lanes.
    pub lanes: usize,
    /// Parallel nonlinear (CORDIC/LUT) units.
    pub nonlinear_units: usize,
}

impl Default for Robox {
    fn default() -> Self {
        Robox { lanes: 16, nonlinear_units: 8 }
    }
}

impl Robox {
    /// Cycles for one fragment on the vector datapath.
    fn fragment_cycles(&self, frag: &pm_lower::Fragment, graph: &SrDfg) -> u64 {
        let Some(id) = frag.node else { return 0 };
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Reduce(r) => {
                // MACs across lanes plus a log-depth lane-combine.
                let points = (srdfg::graph::space_size(&r.out_space)
                    * srdfg::graph::space_size(&r.red_space)) as u64;
                let per_elem = r.body.compute_op_count().max(1);
                let mac_cycles = (points * per_elem).div_ceil(self.lanes as u64);
                let combine = (self.lanes as f64).log2().ceil() as u64;
                mac_cycles + combine
            }
            NodeKind::Map(m) => {
                let points = srdfg::graph::space_size(&m.out_space) as u64;
                let ops = m.kernel.compute_op_count().max(1);
                // Nonlinear kernels go through the slower function units.
                let nonlinear = m.kernel.has_nonlinear();
                if nonlinear {
                    // Pipelined CORDIC/LUT units evaluate one
                    // transcendental per cycle each.
                    (points * ops).div_ceil(self.nonlinear_units as u64)
                } else {
                    (points * ops).div_ceil(self.lanes as u64)
                }
            }
            NodeKind::Scalar(_) => 1,
            _ => 0,
        }
    }
}

impl Backend for Robox {
    fn name(&self) -> &'static str {
        "RoboX"
    }

    fn domain(&self) -> Domain {
        Domain::Robotics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        AcceleratorSpec::new(
            "RoboX",
            Domain::Robotics,
            [
                // Group operations of the macro dataflow graph.
                "matvec",
                "matmul",
                "dot",
                "sum",
                "prod",
                "max",
                "min",
                "argmax",
                "argmin",
                // Vector operations (elementwise maps, incl. compound ones).
                "map",
                "map.add",
                "map.sub",
                "map.mul",
                "map.div",
                "map.neg",
                "map.select",
                "map.copy",
                "map.fill",
                "map.cmp.<",
                "map.cmp.<=",
                "map.cmp.>",
                "map.cmp.>=",
                "map.cmp.==",
                "map.cmp.!=",
                "map.min2",
                "map.max2",
                "map.abs",
                // Nonlinear vector evaluations for dynamics models.
                "map.sin",
                "map.cos",
                "map.tan",
                "map.sqrt",
                "map.exp",
                "map.pow",
                // Scalar glue.
                "add",
                "sub",
                "mul",
                "div",
                "select",
                "const",
            ],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig::robox()
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, hints: &WorkloadHints) -> PerfEstimate {
        let mut cycles = 0u64;
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            cycles += self.fragment_cycles(frag, graph);
        }
        cycles = ((cycles as f64) * hints.effective_scale(prog.compute_ops())).ceil() as u64;
        let cycles = cycles + 64; // task dispatch overhead
        let mut est = PerfEstimate::from_cycles(cycles, &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }

    fn estimate_expert(
        &self,
        prog: &AccProgram,
        graph: &SrDfg,
        hints: &WorkloadHints,
    ) -> PerfEstimate {
        // RoboX's native stack exploits its task-level data semantics
        // (penalties, constraints, time-varying references — which PMLang's
        // generic modifiers cannot express, paper §V.B.1): no per-task
        // dispatch and ~20% tighter schedules from macro-DFG fusion.
        let compiled = self.estimate(prog, graph, hints);
        let cycles = ((compiled.cycles.saturating_sub(64)) as f64 * 0.8).ceil() as u64;
        let mut est = PerfEstimate::from_cycles(cycles.max(1), &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, lower, TargetMap};

    /// The paper's MobileRobot MPC structure at small scale.
    fn mpc(horizon: usize) -> (SrDfg, TargetMap) {
        let c = 3 * horizon; // predicted states
        let b = 2 * horizon; // control sequence
        let src = format!(
            "main(input float pos[3], state float ctrl_mdl[{b}],
                  param float P[{c}][3], param float H[{c}][{b}],
                  param float pos_ref[{c}], param float HQ_g[{b}][{c}],
                  param float R_g[{b}][{b}], output float ctrl_sgnl[2]) {{
                 index i[0:2], j[0:{bm}], k[0:{cm}], s[0:1];
                 float pred[{c}], err[{c}], pg[{b}], hg[{b}], g[{b}];
                 pred[k] = sum[i](P[k][i]*pos[i]);
                 pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
                 err[k] = pos_ref[k] - pred[k];
                 pg[j] = sum[k](HQ_g[j][k]*err[k]);
                 hg[j] = sum[k: k < {b}](R_g[j][k]*ctrl_mdl[k]);
                 g[j] = pg[j] + hg[j];
                 ctrl_mdl[j] = ctrl_mdl[j] - 0.01 * g[j];
                 ctrl_sgnl[s] = ctrl_mdl[s];
             }}",
            b = b,
            c = c,
            bm = b - 1,
            cm = c - 1,
        );
        let prog = pmlang::parse(&src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        g.domain = Some(Domain::Robotics);
        let rb = Robox::default();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::Robotics);
        let mut targets = TargetMap::host_only(host);
        targets.set(rb.accel_spec());
        lower(&mut g, &targets).unwrap();
        (g, targets)
    }

    #[test]
    fn mpc_lowers_to_group_granularity() {
        let (g, targets) = mpc(8);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::Robotics)).unwrap();
        // Matrix-vector products must stay whole (no scalar explosion).
        assert!(
            part.fragments.iter().any(|f| f.op == "matvec" || f.op == "sum"),
            "ops: {:?}",
            part.fragments.iter().map(|f| f.op.clone()).collect::<Vec<_>>()
        );
        assert!(part.fragments.iter().all(|f| f.op != "unpack"));
    }

    #[test]
    fn longer_horizons_cost_more() {
        let rb = Robox::default();
        let mut last = 0u64;
        for h in [4, 16, 64] {
            let (g, targets) = mpc(h);
            let compiled = compile_program(&g, &targets).unwrap();
            let part = compiled.partition(Some(Domain::Robotics)).unwrap();
            let est = rb.estimate(part, &g, &WorkloadHints::default());
            assert!(est.cycles > last, "h={h}");
            last = est.cycles;
        }
    }

    #[test]
    fn more_lanes_help_dense_kernels() {
        let (g, targets) = mpc(32);
        let compiled = compile_program(&g, &targets).unwrap();
        let part = compiled.partition(Some(Domain::Robotics)).unwrap();
        let narrow = Robox { lanes: 4, ..Default::default() };
        let wide = Robox { lanes: 32, ..Default::default() };
        let h = WorkloadHints::default();
        assert!(wide.estimate(part, &g, &h).cycles < narrow.estimate(part, &g, &h).cycles);
    }
}
