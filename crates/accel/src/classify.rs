//! Work classification shared by the general-purpose CPU/GPU models.
//!
//! An analytic processor model needs to know *what kind* of work a program
//! performs, because achieved throughput on a Xeon or a GPU varies by
//! orders of magnitude between cache-blocked dense linear algebra,
//! streaming vector code, and branchy scalar code. This module buckets a
//! compiled partition's operations into those classes (recursing into
//! component sub-graphs).

use pm_lower::{AccProgram, FragmentKind};
use srdfg::{Node, NodeKind, Pattern, SrDfg};

/// Scalar-op totals per work class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkProfile {
    /// Cache-blocked dense kernels (matmul, conv2d): near-peak SIMD.
    pub dense_ops: u64,
    /// Streaming, memory-bound linear algebra (matvec, dot).
    pub streaming_ops: u64,
    /// Elementwise vector maps.
    pub vector_ops: u64,
    /// Generic reductions (conditionals, custom combiners, arg-reductions).
    pub irregular_ops: u64,
    /// Individual scalar operations (fully unrolled dataflow nodes).
    pub scalar_ops: u64,
    /// Transcendental-heavy elementwise work (sin/cos/exp/ln/Φ …), which
    /// general-purpose cores evaluate through slow libm paths.
    pub nonlinear_ops: u64,
    /// Number of distinct operations (≈ kernels / loop nests).
    pub kernels: u64,
    /// Bytes crossing the partition boundary (loads + stores).
    pub boundary_bytes: u64,
    /// Bytes the kernels touch (operand + result tensor volumes), the
    /// memory-roofline input for the CPU/GPU models.
    pub touched_bytes: u64,
}

impl WorkProfile {
    /// Total classified scalar operations.
    pub fn total_ops(&self) -> u64 {
        self.dense_ops
            + self.streaming_ops
            + self.vector_ops
            + self.irregular_ops
            + self.scalar_ops
            + self.nonlinear_ops
    }
}

/// Profiles one compiled partition.
pub fn profile(prog: &AccProgram, graph: &SrDfg) -> WorkProfile {
    let mut p = WorkProfile::default();
    for frag in &prog.fragments {
        match frag.kind {
            FragmentKind::Load | FragmentKind::Store => {
                p.boundary_bytes += frag.bytes();
            }
            FragmentKind::Compute => {
                if let Some(id) = frag.node {
                    classify_node(graph, graph.node(id), &mut p);
                }
            }
        }
    }
    p
}

/// Adds one node's work (recursing into components) to the profile.
pub fn classify_node(graph: &SrDfg, node: &Node, p: &mut WorkProfile) {
    if matches!(node.kind, NodeKind::Map(_) | NodeKind::Reduce(_)) {
        for &e in node.inputs.iter().chain(&node.outputs) {
            p.touched_bytes += graph.edge(e).meta.bytes();
        }
    }
    match &node.kind {
        NodeKind::Component(sub) => {
            for (_, inner) in sub.iter_nodes() {
                classify_node(sub, inner, p);
            }
        }
        NodeKind::Reduce(r) => {
            p.kernels += 1;
            let ops = srdfg::graph::node_op_count(node);
            // Short reduction dimensions defeat SIMD (rank-16 SGD updates
            // and 3-state dynamics run as scalar code on a CPU).
            let short_red = srdfg::graph::space_size(&r.red_space) < 32;
            match node.pattern {
                Some(Pattern::MatMul) | Some(Pattern::Conv2d) => p.dense_ops += ops,
                Some(Pattern::MatVec) | Some(Pattern::Dot) | Some(Pattern::Pool) if !short_red => {
                    p.streaming_ops += ops
                }
                Some(_) => p.irregular_ops += ops,
                None => {
                    // Pure-product unconditioned sums vectorize; compound
                    // bodies, conditionals, custom combiners and
                    // arg-reductions fall back to scalar-ish code.
                    let clean = r.cond.is_none()
                        && !short_red
                        && r.body.compute_op_count() <= 1
                        && matches!(
                            r.op,
                            srdfg::ReduceOp::Builtin(pmlang::BuiltinReduction::Sum)
                                | srdfg::ReduceOp::Builtin(pmlang::BuiltinReduction::Prod)
                                | srdfg::ReduceOp::Builtin(pmlang::BuiltinReduction::Max)
                                | srdfg::ReduceOp::Builtin(pmlang::BuiltinReduction::Min)
                        );
                    if clean {
                        p.streaming_ops += ops;
                    } else {
                        p.irregular_ops += ops;
                    }
                }
            }
        }
        NodeKind::Map(m) => {
            p.kernels += 1;
            if m.kernel.has_nonlinear() {
                p.nonlinear_ops += srdfg::graph::node_op_count(node);
            } else {
                p.vector_ops += srdfg::graph::node_op_count(node);
            }
        }
        NodeKind::Scalar(_) => {
            p.scalar_ops += 1;
        }
        NodeKind::ConstTensor(_)
        | NodeKind::Load
        | NodeKind::Store
        | NodeKind::Unpack
        | NodeKind::Pack => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lower::{compile_program, AcceleratorSpec, TargetMap};
    use pmlang::Domain;

    fn profile_src(src: &str) -> WorkProfile {
        let prog = pmlang::parse(src).unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let targets = TargetMap::host_only(host);
        let compiled = compile_program(&g, &targets).unwrap();
        profile(&compiled.partitions[0], &g)
    }

    #[test]
    fn matmul_is_dense() {
        let p = profile_src(
            "main(input float A[8][8], input float B[8][8], output float C[8][8]) {
                 index i[0:7], j[0:7], k[0:7];
                 C[i][j] = sum[k](A[i][k]*B[k][j]);
             }",
        );
        assert_eq!(p.dense_ops, 1024); // 8³ × (mul+add)
        assert_eq!(p.streaming_ops + p.vector_ops + p.irregular_ops, 0);
        assert_eq!(p.kernels, 1);
    }

    #[test]
    fn matvec_streams() {
        let p = profile_src(
            "main(input float A[64][64], input float x[64], output float y[64]) {
                 index i[0:63], j[0:63];
                 y[i] = sum[j](A[i][j]*x[j]);
             }",
        );
        assert!(p.streaming_ops > 0);
        assert_eq!(p.dense_ops, 0);
    }

    #[test]
    fn short_reductions_are_irregular() {
        // Rank-8 SGD-style dot products defeat SIMD on a CPU.
        let p = profile_src(
            "main(input float A[64][8], input float x[8], output float y[64]) {
                 index i[0:63], j[0:7];
                 y[i] = sum[j](A[i][j]*x[j]);
             }",
        );
        assert!(p.irregular_ops > 0);
        assert_eq!(p.streaming_ops, 0);
    }

    #[test]
    fn transcendental_maps_are_nonlinear() {
        let p = profile_src(
            "main(input float x[64], output float y[64]) {
                 index i[0:63];
                 y[i] = sin(x[i]) * 0.5;
             }",
        );
        assert!(p.nonlinear_ops > 0);
        assert_eq!(p.vector_ops, 0);
    }

    #[test]
    fn conditional_reduce_is_irregular() {
        let p = profile_src(
            "main(input float A[8][8], output float s) {
                 index i[0:7], j[0:7];
                 s = sum[i][j: j != i](A[i][j]);
             }",
        );
        assert!(p.irregular_ops > 0);
    }

    #[test]
    fn maps_are_vector_work_and_components_recurse() {
        let p = profile_src(
            "f(input float x[16], output float y[16]) { index i[0:15]; y[i] = x[i] * 2.0; }
             main(input float a[16], output float b[16]) {
                 index i[0:15];
                 float t[16];
                 f(a, t);
                 b[i] = t[i] + 1.0;
             }",
        );
        assert_eq!(p.vector_ops, 32);
        assert_eq!(p.kernels, 2);
    }
}
