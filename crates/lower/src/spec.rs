//! Accelerator operation-support specifications.
//!
//! The paper's Algorithm 1 lowers against a map `Om` from domain names to
//! the list `Ot` of operation names a domain's target accelerator
//! supports. [`AcceleratorSpec`] is one such `Ot` (plus expansion limits);
//! [`TargetMap`] is `Om`, with a default target for un-annotated nodes
//! (the SoC host).

use pmlang::Domain;
use srdfg::{ExpandOptions, Ident};
use std::collections::{BTreeSet, HashMap};

/// The operation-support contract of one accelerator target.
#[derive(Debug, Clone)]
pub struct AcceleratorSpec {
    /// Target name (e.g. `"TABLA"`).
    pub name: String,
    /// The domain this accelerator serves.
    pub domain: Domain,
    /// Operation names the target accepts (`Ot`): node names like `add`,
    /// `sum`, `matvec`, `conv2d`, `map`, `unpack`, …
    pub supported: BTreeSet<String>,
    /// When true, every operation is accepted (general-purpose hosts).
    pub supports_all: bool,
    /// Scalar-expansion limits used while lowering toward this target.
    pub expand: ExpandOptions,
}

impl AcceleratorSpec {
    /// Creates a spec from an operation-name list.
    pub fn new(
        name: impl Into<String>,
        domain: Domain,
        ops: impl IntoIterator<Item = &'static str>,
    ) -> Self {
        AcceleratorSpec {
            name: name.into(),
            domain,
            supported: ops.into_iter().map(str::to_string).collect(),
            supports_all: false,
            expand: ExpandOptions::default(),
        }
    }

    /// A spec accepting every operation (general-purpose processor).
    pub fn general_purpose(name: impl Into<String>, domain: Domain) -> Self {
        AcceleratorSpec {
            name: name.into(),
            domain,
            supported: BTreeSet::new(),
            supports_all: true,
            expand: ExpandOptions::default(),
        }
    }

    /// True if the target accepts operation `op` (`n.name ∈ Ot`).
    pub fn supports(&self, op: &str) -> bool {
        self.supports_all || self.supported.contains(op)
    }
}

/// Memoized `n.name ∈ Ot` resolution for whole-graph sweeps.
///
/// Template-instantiated nodes share their interned name allocations, so
/// a lowered fabric of 78k nodes asks only a handful of pointer-distinct
/// support questions. Keying on the `(spec, name-allocation)` address
/// pair turns the per-node operation-set walk into one integer hash
/// probe. Each entry keeps a clone of the `Ident` it answered for: the
/// clone pins the allocation, so its address can never be freed and
/// reused by a different name while the memo is alive (lowering drops
/// replaced nodes between rounds, so without the pin a stale answer
/// could alias a recycled address). The spec side needs no pin — callers
/// borrow the specs from a [`TargetMap`] they hold across the sweep.
#[derive(Debug, Default)]
pub struct SupportMemo {
    map: HashMap<(usize, usize), (Ident, bool), srdfg::FxBuildHasher>,
}

impl SupportMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`AcceleratorSpec::supports`] with memoization.
    pub fn supports(&mut self, spec: &AcceleratorSpec, name: &Ident) -> bool {
        if spec.supports_all {
            return true;
        }
        let key = (spec as *const AcceleratorSpec as usize, name.ptr_id());
        let (pinned, ok) =
            self.map.entry(key).or_insert_with(|| (name.clone(), spec.supports(name.as_str())));
        debug_assert_eq!(pinned, name, "SupportMemo address aliasing");
        *ok
    }
}

/// The paper's `Om`: which accelerator serves each domain, plus the host
/// target for nodes without a domain annotation.
#[derive(Debug, Clone)]
pub struct TargetMap {
    per_domain: HashMap<Domain, AcceleratorSpec>,
    /// Per-component target overrides (paper §V.A.3: OptionPricing runs
    /// logistic regression on TABLA and Black-Scholes on HyperStreams —
    /// two accelerators within one domain).
    overrides: HashMap<String, AcceleratorSpec>,
    host: AcceleratorSpec,
}

impl TargetMap {
    /// Creates a map with only a host target.
    pub fn host_only(host: AcceleratorSpec) -> Self {
        TargetMap { per_domain: HashMap::new(), overrides: HashMap::new(), host }
    }

    /// Assigns `spec` to every node descending from instantiations of the
    /// named component, overriding the domain default.
    pub fn set_override(
        &mut self,
        component: impl Into<String>,
        spec: AcceleratorSpec,
    ) -> &mut Self {
        self.overrides.insert(component.into(), spec);
        self
    }

    /// The override spec for a component name, if any.
    pub fn override_for(&self, component: &str) -> Option<&AcceleratorSpec> {
        self.overrides.get(component)
    }

    /// The spec a node resolves to: its explicit target assignment if one
    /// was stamped, else its domain's default, else the host.
    pub fn target_for(&self, node: &srdfg::Node, graph_domain: Option<Domain>) -> &AcceleratorSpec {
        if let Some(t) = &node.target {
            if let Some(spec) = self.overrides.values().find(|s| *t == s.name) {
                return spec;
            }
            if let Some(spec) = self.per_domain.values().find(|s| *t == s.name) {
                return spec;
            }
        }
        self.target(node.domain.or(graph_domain))
    }

    /// Assigns `spec` as the target for its domain.
    pub fn set(&mut self, spec: AcceleratorSpec) -> &mut Self {
        self.per_domain.insert(spec.domain, spec);
        self
    }

    /// The target serving `domain` (the host when unassigned or `None`).
    pub fn target(&self, domain: Option<Domain>) -> &AcceleratorSpec {
        domain.and_then(|d| self.per_domain.get(&d)).unwrap_or(&self.host)
    }

    /// The host target.
    pub fn host(&self) -> &AcceleratorSpec {
        &self.host
    }

    /// Domains with a dedicated (non-host) target.
    pub fn accelerated_domains(&self) -> Vec<Domain> {
        let mut v: Vec<Domain> = self.per_domain.keys().copied().collect();
        v.sort();
        v
    }

    /// Removes the dedicated target for `domain` (its nodes fall back to
    /// the host), returning the removed spec. Used by the end-to-end case
    /// study to sweep acceleration combinations (paper Fig. 10-12).
    pub fn unset(&mut self, domain: Domain) -> Option<AcceleratorSpec> {
        self.per_domain.remove(&domain)
    }

    /// A content fingerprint of the whole map: equal target assignments,
    /// overrides, and host ⇒ equal value, independent of `HashMap`
    /// iteration order. The serve program cache combines this with
    /// [`srdfg::graph_fingerprint`] to key compiled programs — the same
    /// source lowered against different maps yields different partitions,
    /// so the map must be part of the cache key.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        fn hash_spec<H: Hasher>(s: &AcceleratorSpec, h: &mut H) {
            s.name.hash(h);
            s.domain.hash(h);
            s.supports_all.hash(h);
            s.supported.len().hash(h);
            for op in &s.supported {
                op.hash(h);
            }
            s.expand.max_nodes.hash(h);
        }
        let mut h = srdfg::FxHasher::default();
        let mut domains: Vec<&Domain> = self.per_domain.keys().collect();
        domains.sort();
        domains.len().hash(&mut h);
        for d in domains {
            d.hash(&mut h);
            hash_spec(&self.per_domain[d], &mut h);
        }
        let mut components: Vec<&String> = self.overrides.keys().collect();
        components.sort();
        components.len().hash(&mut h);
        for c in components {
            c.hash(&mut h);
            hash_spec(&self.overrides[c], &mut h);
        }
        hash_spec(&self.host, &mut h);
        h.finish()
    }

    /// A copy of this map with every target named in `down` removed: their
    /// domains (and any component overrides pointing at them) fall back to
    /// the host. The resilient SoC runtime uses this to re-lower the
    /// fragments of a failed accelerator onto the host CPU. The host
    /// itself cannot be removed.
    pub fn without_targets<S: AsRef<str>>(&self, down: &[S]) -> TargetMap {
        let is_down = |name: &str| down.iter().any(|d| d.as_ref() == name);
        TargetMap {
            per_domain: self
                .per_domain
                .iter()
                .filter(|(_, s)| !is_down(&s.name))
                .map(|(d, s)| (*d, s.clone()))
                .collect(),
            overrides: self
                .overrides
                .iter()
                .filter(|(_, s)| !is_down(&s.name))
                .map(|(c, s)| (c.clone(), s.clone()))
                .collect(),
            host: self.host.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_lookup() {
        let spec = AcceleratorSpec::new("TABLA", Domain::DataAnalytics, ["add", "mul", "sum"]);
        assert!(spec.supports("add"));
        assert!(!spec.supports("conv2d"));
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        assert!(host.supports("anything"));
    }

    #[test]
    fn target_map_falls_back_to_host() {
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut map = TargetMap::host_only(host);
        map.set(AcceleratorSpec::new("DECO", Domain::Dsp, ["add", "mul"]));
        assert_eq!(map.target(Some(Domain::Dsp)).name, "DECO");
        assert_eq!(map.target(Some(Domain::Robotics)).name, "CPU");
        assert_eq!(map.target(None).name, "CPU");
        assert_eq!(map.accelerated_domains(), vec![Domain::Dsp]);
        assert!(map.unset(Domain::Dsp).is_some());
        assert_eq!(map.target(Some(Domain::Dsp)).name, "CPU");
    }
}
