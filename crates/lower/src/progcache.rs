//! Content-addressed cache of whole compiled programs.
//!
//! One layer above the [`srdfg::TemplateCache`]: where the template cache
//! memoizes *fragments of lowering work* (scalar expansions), this cache
//! memoizes the *entire compile* — a repeat submission of a structurally
//! identical program against the same target map skips Algorithm 1 and
//! Algorithm 2 outright and reuses the finished [`CompiledProgram`].
//! `pmc serve` consults it on every request, which is what turns the
//! compile-once/serve-many shape into actual served throughput.
//!
//! ## Keying scheme
//!
//! A compiled program is addressed by [`ProgramKey`], the pair of
//!
//! * [`srdfg::graph_fingerprint`] of the **post-midend, pre-lowering**
//!   srDFG — content hashes only, never arena ids, so equal source text
//!   keys equally in both the shared store and `PM_SRDFG_UNSHARED=1`
//!   modes and across processes;
//! * [`crate::TargetMap::fingerprint`] of the target map the compile ran
//!   against — the same graph lowered host-only vs. cross-domain yields
//!   different partitions, so the map must discriminate the key.
//!
//! Compiler *option* knobs that change the post-midend graph (optimize,
//! fuse) need no explicit key component: they are already reflected in
//! the graph fingerprint because it is taken after those passes run.
//!
//! Unlike [`TemplateKey`](srdfg::TemplateKey) there is no stored full key
//! for a confirming `==` — an srDFG compare would cost a graph walk per
//! lookup. The 64-bit pair (128 bits total) makes an accidental collision
//! vanishingly unlikely for a cache of this size; the fingerprint is also
//! deliberately deep (it recurses into component subgraphs and hashes
//! every kernel, shape, and constant), so "equal key, different program"
//! requires an adversarial input, which a simulation service does not
//! face.
//!
//! ## Invalidation
//!
//! Entries are immutable ([`Arc<CompiledProgram>`]) and self-contained,
//! so only **capacity** eviction exists: least-recently-used entries are
//! dropped past `capacity_units`, where an entry's units are its total
//! fragment count plus lowered-graph size (a proxy for bytes).

use crate::compile::CompiledProgram;
use srdfg::FxBuildHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Default capacity, in fragment+node units, of a [`ProgramCache`].
/// Every benchmark-family program compiled for the standard SoC fits
/// simultaneously with room to spare; memory stays bounded for a
/// long-lived serve process.
pub const DEFAULT_CAPACITY_UNITS: usize = 4_000_000;

/// Content-address of one compile: post-midend graph fingerprint plus
/// target-map fingerprint. See the module docs for the derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// [`srdfg::graph_fingerprint`] of the post-midend srDFG.
    pub graph: u64,
    /// [`crate::TargetMap::fingerprint`] of the map compiled against.
    pub targets: u64,
}

impl ProgramKey {
    /// Builds the key from a post-midend graph and the target map the
    /// compile will run against.
    pub fn new(graph: &srdfg::SrDfg, targets: &crate::TargetMap) -> ProgramKey {
        ProgramKey { graph: srdfg::graph_fingerprint(graph), targets: targets.fingerprint() }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = srdfg::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

#[derive(Debug)]
struct Entry {
    key: ProgramKey,
    program: Arc<CompiledProgram>,
    units: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry, FxBuildHasher>,
    units: usize,
    capacity_units: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

/// Counter snapshot of a [`ProgramCache`] (see [`ProgramCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Lookups that returned a compiled program.
    pub hits: u64,
    /// Lookups that found nothing (or collided with an unequal key).
    pub misses: u64,
    /// Programs stored.
    pub inserts: u64,
    /// Programs dropped for capacity (or replaced on collision).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Resident size in fragment+node units.
    pub units: usize,
    /// Configured capacity in the same units.
    pub capacity_units: usize,
}

impl ProgramCacheStats {
    /// Hit rate over the lookups these counters cover (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same cache
    /// (resident-size fields keep their current values).
    pub fn since(&self, earlier: &ProgramCacheStats) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
            units: self.units,
            capacity_units: self.capacity_units,
        }
    }
}

fn program_units(p: &CompiledProgram) -> usize {
    let fragments: usize = p.partitions.iter().map(|part| part.fragments.len()).sum();
    fragments + p.graph.node_count() + p.graph.edge_count()
}

/// Shared, thread-safe handle to a compiled-program cache. `Clone` is
/// cheap and aliases the same store — the serve loop holds one instance
/// shared by every shard's compiler.
#[derive(Debug, Clone)]
pub struct ProgramCache {
    inner: Arc<Mutex<Inner>>,
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramCache {
    /// A cache with [`DEFAULT_CAPACITY_UNITS`].
    pub fn new() -> ProgramCache {
        ProgramCache::with_capacity(DEFAULT_CAPACITY_UNITS)
    }

    /// A cache bounded to `capacity_units` of resident program size. A
    /// single program larger than the whole capacity is still admitted
    /// (alone), matching [`srdfg::TemplateCache`] semantics.
    pub fn with_capacity(capacity_units: usize) -> ProgramCache {
        ProgramCache { inner: Arc::new(Mutex::new(Inner { capacity_units, ..Inner::default() })) }
    }

    /// Looks up a compiled program, refreshing its LRU position on hit.
    pub fn lookup(&self, key: &ProgramKey) -> Option<Arc<CompiledProgram>> {
        let fp = key.fingerprint();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&fp) {
            Some(entry) if entry.key == *key => {
                entry.last_used = tick;
                let p = Arc::clone(&entry.program);
                inner.hits += 1;
                Some(p)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a compiled program. On fingerprint collision with an
    /// unequal key the newer program replaces the older one (counted as
    /// an eviction). Evicts least-recently-used entries while over
    /// capacity.
    pub fn insert(&self, key: ProgramKey, program: Arc<CompiledProgram>) {
        let fp = key.fingerprint();
        let units = program_units(&program);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(fp, Entry { key, program, units, last_used: tick }) {
            inner.units -= old.units;
            inner.evictions += 1;
        }
        inner.units += units;
        inner.inserts += 1;
        // LRU eviction; never evict the entry just inserted (it holds the
        // freshest tick), so an oversized program survives alone.
        while inner.units > inner.capacity_units && inner.map.len() > 1 {
            let (&fp_lru, _) = inner.map.iter().min_by_key(|(_, e)| e.last_used).expect("len > 1");
            let dropped = inner.map.remove(&fp_lru).expect("present");
            inner.units -= dropped.units;
            inner.evictions += 1;
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ProgramCacheStats {
        let inner = self.inner.lock().unwrap();
        ProgramCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            entries: inner.map.len(),
            units: inner.units,
            capacity_units: inner.capacity_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AcceleratorSpec, TargetMap};
    use pmlang::Domain;

    fn host_map() -> TargetMap {
        TargetMap::host_only(AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics))
    }

    fn compiled(src: &str) -> (ProgramKey, Arc<CompiledProgram>) {
        let (program, _) = pmlang::frontend(src).unwrap();
        let mut graph = srdfg::build(&program, &srdfg::Bindings::default()).unwrap();
        let targets = host_map();
        let key = ProgramKey::new(&graph, &targets);
        crate::lower(&mut graph, &targets).unwrap();
        (key, Arc::new(crate::compile_program(&graph, &targets).unwrap()))
    }

    const DOT4: &str = "main(input float x[4], output float y) {
         index i[0:3];
         y = sum[i](x[i]*x[i]);
     }";

    #[test]
    fn key_is_content_addressed() {
        let (program, _) = pmlang::frontend(DOT4).unwrap();
        let g1 = srdfg::build(&program, &srdfg::Bindings::default()).unwrap();
        let g2 = srdfg::build(&program, &srdfg::Bindings::default()).unwrap();
        let targets = host_map();
        assert_eq!(ProgramKey::new(&g1, &targets), ProgramKey::new(&g2, &targets));

        // A different target map must discriminate.
        let mut accel = host_map();
        accel.set(AcceleratorSpec::new("TABLA", Domain::DataAnalytics, ["add", "mul", "sum"]));
        assert_ne!(ProgramKey::new(&g1, &targets), ProgramKey::new(&g1, &accel));

        // Same-domain map built twice keys equally (HashMap order-free).
        let mut accel2 = host_map();
        accel2.set(AcceleratorSpec::new("TABLA", Domain::DataAnalytics, ["add", "mul", "sum"]));
        assert_eq!(ProgramKey::new(&g1, &accel), ProgramKey::new(&g1, &accel2));
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = ProgramCache::new();
        let (key, prog) = compiled(DOT4);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, Arc::clone(&prog));
        let hit = cache.lookup(&key).expect("warm lookup hits");
        assert!(Arc::ptr_eq(&hit, &prog), "hit returns the stored program, no clone");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let later = cache.stats().since(&s);
        assert_eq!((later.hits, later.misses), (0, 0));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let (k1, p1) = compiled(DOT4);
        let (k2, p2) = compiled(
            "main(input float x[8], output float y) {
                 index i[0:7];
                 y = sum[i](x[i]*x[i]);
             }",
        );
        let (k3, p3) = compiled(
            "main(input float x[4], output float y) {
                 index i[0:3];
                 y = sum[i](x[i]+x[i]);
             }",
        );
        let unit = program_units(&p1).max(program_units(&p2)).max(program_units(&p3));
        let cache = ProgramCache::with_capacity(unit * 2);
        cache.insert(k1, p1);
        cache.insert(k2, p2);
        assert!(cache.lookup(&k1).is_some(), "touch k1 so k2 is the LRU");
        cache.insert(k3, p3);
        assert!(cache.lookup(&k2).is_none(), "k2 was least recently used");
        assert!(cache.lookup(&k1).is_some());
        assert!(cache.lookup(&k3).is_some());
        let s = cache.stats();
        assert!(s.evictions >= 1);
        assert!(s.units <= s.capacity_units);
    }

    #[test]
    fn shared_handle_aliases_one_store() {
        let cache = ProgramCache::new();
        let alias = cache.clone();
        let (key, prog) = compiled(DOT4);
        cache.insert(key, prog);
        assert!(alias.lookup(&key).is_some());
        assert_eq!(alias.stats().inserts, 1);
    }
}
