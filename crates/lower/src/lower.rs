//! Algorithm 1 — srDFG lowering.
//!
//! ```text
//! function Lower(srdfg, Om)
//!     let (N, E) = srdfg.subDfg
//!     let Ot = Om[srdfg.domain]
//!     for each n ∈ N do
//!         if n.name ∉ Ot then
//!             let subDfg = Lower(n, Om)
//!             srdfg ← srdfg[n ↦ subDfg]
//!     return srdfg
//! ```
//!
//! Every node whose operation name the domain's target does not support is
//! replaced by its finer-granularity sub-srDFG ([`srdfg::refine`]) until
//! only supported operations remain. If an unsupported node cannot be
//! refined further, compilation fails for that accelerator — exactly the
//! paper's stated behaviour ("if the nodes in the srDFG cannot be lowered
//! to a specific hardware because of unsupported nodes, the compilation
//! fails for that accelerator").

use crate::spec::{SupportMemo, TargetMap};
use srdfg::budget::{Budget, BudgetExceeded};
use srdfg::expand::{refine_for_splice, scalar_expansion_eligible, RefineError};
use srdfg::template::{TemplateCache, TemplateKey};
use srdfg::{Consed, EdgeMeta, FxBuildHasher, SrDfg};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why lowering failed.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
    /// Set when the failure is a cooperative-cancellation unwind (the
    /// request's [`Budget`] ran out mid-lowering) rather than a real
    /// lowering defect. The serve layer maps this to a typed
    /// `deadline_exceeded` wire error instead of `compile`.
    pub budget: Option<BudgetExceeded>,
}

impl LowerError {
    /// A plain lowering failure.
    pub fn msg(message: impl Into<String>) -> Self {
        LowerError { message: message.into(), budget: None }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.budget {
            Some(b) => b.fmt(f),
            None => write!(f, "lowering failed: {}", self.message),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<RefineError> for LowerError {
    fn from(e: RefineError) -> Self {
        LowerError::msg(e.to_string())
    }
}

impl From<BudgetExceeded> for LowerError {
    fn from(e: BudgetExceeded) -> Self {
        LowerError { message: e.to_string(), budget: Some(e) }
    }
}

/// Lowers `graph` in place until every node's operation is supported by
/// its domain's target in `targets` (paper Algorithm 1, iterated because a
/// refinement may introduce nodes that need further refinement).
///
/// # Errors
///
/// Returns a [`LowerError`] when an unsupported node cannot be refined
/// (already at the finest granularity, too large to expand, or
/// data-dependent).
pub fn lower(graph: &mut SrDfg, targets: &TargetMap) -> Result<(), LowerError> {
    // Even without a caller-provided cache, a transient one dedups the
    // repeated expansions *within* this program (an FFT expands one
    // butterfly fabric per stage; they are structurally identical).
    lower_with(graph, targets, Some(&TemplateCache::new()))
}

/// How one pending refinement will be instantiated this round.
enum Plan {
    /// Expand live; for scalar expansions (`Some(key)`) the result is
    /// also stored in the cache as a template.
    Expand(Option<TemplateKey>),
    /// A cached template: instantiation is pure id-remapping.
    Hit(Arc<SrDfg>),
    /// Same key as an earlier `Expand` in this round — resolved from the
    /// cache after that expansion has been inserted (batch dedup).
    Deferred(TemplateKey),
}

/// [`lower`] with an explicit [`TemplateCache`] policy: `Some` threads a
/// (possibly shared, cross-program) cache through every scalar expansion;
/// `None` disables caching entirely. Both paths route refinements through
/// the same canonical-expansion + [`SrDfg::splice_template`] mechanism,
/// so their lowered graphs are byte-identical — the cache only decides
/// whether the expansion work is skipped.
pub fn lower_with(
    graph: &mut SrDfg,
    targets: &TargetMap,
    cache: Option<&TemplateCache>,
) -> Result<(), LowerError> {
    lower_budgeted(graph, targets, cache, &Budget::unlimited())
}

/// [`lower_with`] under a cooperative-cancellation [`Budget`]: the splice
/// loop charges one fuel unit per pending refinement at every round
/// boundary and unwinds with a budget-tagged [`LowerError`] the moment
/// the request's deadline or fuel runs out. Charges happen only at round
/// granularity — an in-flight round always completes, no thread is ever
/// killed — so a cancelled lowering leaves the template cache coherent.
///
/// # Errors
///
/// Everything [`lower_with`] returns, plus a [`LowerError`] carrying
/// [`LowerError::budget`] on cancellation.
pub fn lower_budgeted(
    graph: &mut SrDfg,
    targets: &TargetMap,
    cache: Option<&TemplateCache>,
    budget: &Budget,
) -> Result<(), LowerError> {
    budget.check("lower")?;
    stamp_overrides(graph, targets);
    // A node's support status depends only on its own fields, which never
    // change after creation, and splicing only *appends* node slots — so
    // after the first full scan, each later round needs to examine only
    // the nodes the previous round's splices created.
    let mut scan_from: u32 = 0;
    let mut memo = SupportMemo::new();
    // Refinements strictly reduce granularity, so this terminates; the
    // iteration bound is a defensive backstop.
    for _ in 0..64 {
        let slots_before = graph.node_slots() as u32;
        // Collect this round's unsupported nodes, then refine them all at
        // once (in parallel on multi-core hosts). Batching is equivalent to
        // the interleaved serial loop: `refine` reads only the node and its
        // edge metadata, and `splice` removes no node but the one it
        // replaces, so no pending refinement can observe another's splice.
        let mut pending = Vec::new();
        let mut labels = Vec::new();
        for id in graph.node_ids().filter(|id| id.0 >= scan_from).collect::<Vec<_>>() {
            let node = graph.node(id);
            let target = targets.target_for(node, graph.domain);
            if memo.supports(target, &node.name) {
                continue;
            }
            pending.push((id, target.expand));
            labels.push((node.name.clone(), node.domain, target.name.clone()));
        }
        if pending.is_empty() {
            return Ok(());
        }
        // One fuel unit per refinement this round: the charge total is a
        // pure function of the program, so fuel-driven cancellation is
        // deterministic (the chaos soak relies on this).
        budget.charge("lower", pending.len() as u64)?;
        scan_from = slots_before;

        // Plan each job against the cache: template hits skip expansion
        // entirely, and only the *first* job of each distinct key expands
        // (identical siblings defer to its inserted template).
        let mut plans: Vec<Plan> = Vec::with_capacity(pending.len());
        if let Some(cache) = cache {
            let mut first_of_fp: HashMap<u64, usize, FxBuildHasher> = HashMap::default();
            for (i, &(id, opts)) in pending.iter().enumerate() {
                let node = graph.node(id);
                if !scalar_expansion_eligible(node) {
                    // Not template-shaped (e.g. component flattening):
                    // the cache is never consulted, which a warm-run
                    // stats line reports as `bypassed` rather than as a
                    // miss.
                    cache.record_bypass();
                    plans.push(Plan::Expand(None));
                    continue;
                }
                let in_metas: Vec<Consed<EdgeMeta>> =
                    node.inputs.iter().map(|&e| graph.edge(e).meta.clone()).collect();
                let out_metas: Vec<Consed<EdgeMeta>> =
                    node.outputs.iter().map(|&e| graph.edge(e).meta.clone()).collect();
                let key = TemplateKey::new(node, &in_metas, &out_metas, &opts);
                if let Some(t) = cache.lookup(&key) {
                    plans.push(Plan::Hit(t));
                    continue;
                }
                match first_of_fp.entry(key.fingerprint()) {
                    std::collections::hash_map::Entry::Occupied(prev) if matches!(&plans[*prev.get()], Plan::Expand(Some(k)) if *k == key) =>
                    {
                        plans.push(Plan::Deferred(key));
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                        plans.push(Plan::Expand(Some(key)));
                    }
                    // Fingerprint collision with a different key: expand
                    // live without deduplication.
                    std::collections::hash_map::Entry::Occupied(_) => {
                        plans.push(Plan::Expand(Some(key)));
                    }
                }
            }
        } else {
            plans = pending.iter().map(|_| Plan::Expand(None)).collect();
        }

        // Expand the non-deduplicated jobs in parallel.
        use rayon::prelude::*;
        let expand_jobs: Vec<usize> = plans
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Plan::Expand(_)))
            .map(|(i, _)| i)
            .collect();
        let mut expanded: Vec<Option<Result<SrDfg, RefineError>>> =
            (0..pending.len()).map(|_| None).collect();
        for (i, sub) in expand_jobs
            .par_iter()
            .map(|&i| (i, refine_for_splice(graph, pending[i].0, &pending[i].1)))
            .collect::<Vec<_>>()
        {
            expanded[i] = Some(sub);
        }

        // Reserve the whole round's growth up front: each splice appends
        // its sub-graph's nodes/edges, and letting the tables double
        // mid-round re-copies the (multi-megabyte) graph repeatedly.
        let (mut add_nodes, mut add_edges) = (0usize, 0usize);
        for (i, plan) in plans.iter().enumerate() {
            let (n, e) = match plan {
                Plan::Expand(_) => match &expanded[i] {
                    Some(Ok(sub)) => (sub.node_slots(), sub.edge_count()),
                    _ => (0, 0),
                },
                Plan::Hit(t) => (t.node_slots(), t.edge_count()),
                Plan::Deferred(_) => (0, 0),
            };
            add_nodes += n;
            add_edges += e;
        }
        graph.reserve(add_nodes, add_edges);
        // Splice serially, in collection (deterministic id) order.
        for (i, plan) in plans.into_iter().enumerate() {
            let (id, opts) = pending[i];
            let refine_err = |e: RefineError| {
                let (name, domain, target) = &labels[i];
                LowerError::msg(format!(
                    "`{name}` (domain {domain:?}) is unsupported by {target} \
                     and cannot refine: {e}"
                ))
            };
            match plan {
                Plan::Expand(key) => {
                    let sub = expanded[i].take().expect("planned").map_err(refine_err)?;
                    match (cache, key) {
                        (Some(cache), Some(key)) => {
                            let template = Arc::new(sub);
                            cache.insert(key, Arc::clone(&template));
                            graph.splice_template(id, &template);
                        }
                        _ if scalar_expansion_eligible(graph.node(id)) => {
                            graph.splice_template(id, &sub)
                        }
                        _ => graph.splice(id, &sub),
                    }
                }
                Plan::Hit(template) => graph.splice_template(id, &template),
                Plan::Deferred(key) => {
                    // The leading expansion of this key was inserted above;
                    // a miss is only possible if capacity pressure evicted
                    // it within this very round — then expand live.
                    let cache = cache.expect("deferred implies cache");
                    match cache.lookup(&key) {
                        Some(t) => graph.splice_template(id, &t),
                        None => {
                            let sub = refine_for_splice(graph, id, &opts).map_err(refine_err)?;
                            graph.splice_template(id, &sub);
                        }
                    }
                }
            }
        }
    }
    Err(LowerError::msg("lowering did not converge"))
}

/// Stamps per-component target overrides onto component nodes (and,
/// recursively, their bodies) so the assignment survives splicing.
fn stamp_overrides(graph: &mut SrDfg, targets: &TargetMap) {
    let ids: Vec<_> = graph.node_ids().collect();
    for id in ids {
        let name = graph.node(id).name.clone();
        if let Some(spec) = targets.override_for(&name) {
            let target: srdfg::Ident = spec.name.as_str().into();
            stamp_node(graph, id, &target);
        } else if let srdfg::NodeKind::Component(_) = &graph.node(id).kind {
            // Recurse into nested components.
            let srdfg::NodeKind::Component(sub) = &mut graph.node_mut(id).kind else {
                unreachable!()
            };
            let mut inner = std::mem::replace(sub.as_mut(), SrDfg::new(""));
            stamp_overrides(&mut inner, targets);
            if let srdfg::NodeKind::Component(slot) = &mut graph.node_mut(id).kind {
                **slot = inner;
            }
        }
    }
}

/// Marks a node and (for components) its whole body with a target name.
fn stamp_node(graph: &mut SrDfg, id: srdfg::NodeId, target: &srdfg::Ident) {
    graph.node_mut(id).target = Some(target.clone());
    if let srdfg::NodeKind::Component(sub) = &mut graph.node_mut(id).kind {
        let mut inner = std::mem::replace(sub.as_mut(), SrDfg::new(""));
        let ids: Vec<_> = inner.node_ids().collect();
        for nid in ids {
            stamp_node(&mut inner, nid, target);
        }
        if let srdfg::NodeKind::Component(slot) = &mut graph.node_mut(id).kind {
            **slot = inner;
        }
    }
}

/// Checks (without mutating) whether every node is supported already.
pub fn fully_lowered(graph: &SrDfg, targets: &TargetMap) -> bool {
    let mut memo = SupportMemo::new();
    graph
        .iter_nodes()
        .all(|(_, node)| memo.supports(targets.target_for(node, graph.domain), &node.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;
    use pmlang::Domain;
    use srdfg::{Bindings, Machine, NodeKind, Tensor};
    use std::collections::HashMap;

    const MATVEC_SRC: &str = "mvmul(input float A[m][n], input float B[n], output float C[m]) {
         index i[0:n-1], j[0:m-1];
         C[j] = sum[i](A[j][i]*B[i]);
     }
     main(input float W[2][3], input float x[3], output float y[2]) {
         DA: mvmul(W, x, y);
     }";

    fn build_graph(src: &str) -> SrDfg {
        let prog = pmlang::parse(src).unwrap();
        pmlang::check(&prog).unwrap();
        srdfg::build(&prog, &Bindings::default()).unwrap()
    }

    fn feeds() -> HashMap<String, Tensor> {
        HashMap::from([
            (
                "W".to_string(),
                Tensor::from_vec(pmlang::DType::Float, vec![2, 3], vec![1., 2., 3., 4., 5., 6.])
                    .unwrap(),
            ),
            (
                "x".to_string(),
                Tensor::from_vec(pmlang::DType::Float, vec![3], vec![1., 1., 1.]).unwrap(),
            ),
        ])
    }

    #[test]
    fn lowering_to_group_granularity() {
        // Target supports tensor-level matvec: nothing to do but flatten
        // the component wrapper.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new("GROUPY", Domain::DataAnalytics, ["matvec"]));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        assert!(g.iter_nodes().all(|(_, n)| !matches!(n.kind, NodeKind::Component(_))));
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn lowering_to_scalar_granularity() {
        // TABLA-style target: only scalar ops + marshalling.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "SCALARY",
            Domain::DataAnalytics,
            ["add", "sub", "mul", "div", "const", "unpack", "pack"],
        ));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        // All compute is now scalar nodes.
        let scalar = g.iter_nodes().filter(|(_, n)| matches!(n.kind, NodeKind::Scalar(_))).count();
        assert!(scalar >= 10, "expected an expanded mul/add fabric, got {scalar}");
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn intermediate_granularity_stops_early() {
        // Target supports group `sum` and elementwise `mul`: lowering stops
        // at the decomposed level rather than expanding to scalars.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "ROBOXY",
            Domain::DataAnalytics,
            ["sum", "map.mul", "map"],
        ));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        let kinds: Vec<_> = g
            .iter_nodes()
            .map(|(_, n)| (n.name.clone(), matches!(n.kind, NodeKind::Reduce(_))))
            .collect();
        assert!(kinds.iter().any(|(n, is_red)| n == "sum" && *is_red), "{kinds:?}");
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn unsupported_scalar_fails_compilation() {
        // Program needs sigmoid; target has no sigmoid unit.
        let mut g = build_graph(
            "main(input float x[2], output float y[2]) { index i[0:1]; y[i] = sigmoid(x[i]); }",
        );
        // Force everything to the DA accelerator by annotating via graph
        // domain (main has no annotation; set graph-level domain).
        g.domain = Some(Domain::DataAnalytics);
        let host = AcceleratorSpec::new("HOSTLESS", Domain::DataAnalytics, []);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "NOSIG",
            Domain::DataAnalytics,
            ["add", "mul", "unpack", "pack", "const"],
        ));
        let err = lower(&mut g, &targets).unwrap_err();
        assert!(err.message.contains("sigmoid"), "{err}");
    }

    #[test]
    fn host_handles_unannotated_glue() {
        let mut g = build_graph(
            "f(input float x[2], output float y[2]) { index i[0:1]; y[i] = x[i] * 2.0; }
             main(input float a[2], output float b[2]) {
                 index i[0:1];
                 float t[2];
                 DSP: f(a, t);
                 b[i] = t[i] + 1.0;
             }",
        );
        let host = AcceleratorSpec::general_purpose("CPU", Domain::Dsp);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "DECOISH",
            Domain::Dsp,
            ["mul", "add", "const", "unpack", "pack"],
        ));
        lower(&mut g, &targets).unwrap();
        // The DSP component was flattened; the glue map stayed tensor-level
        // under the host.
        assert!(g
            .iter_nodes()
            .any(|(_, n)| n.domain.is_none() && matches!(n.kind, NodeKind::Map(_))));
        assert!(fully_lowered(&g, &targets));
    }
}
