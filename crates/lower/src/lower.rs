//! Algorithm 1 — srDFG lowering.
//!
//! ```text
//! function Lower(srdfg, Om)
//!     let (N, E) = srdfg.subDfg
//!     let Ot = Om[srdfg.domain]
//!     for each n ∈ N do
//!         if n.name ∉ Ot then
//!             let subDfg = Lower(n, Om)
//!             srdfg ← srdfg[n ↦ subDfg]
//!     return srdfg
//! ```
//!
//! Every node whose operation name the domain's target does not support is
//! replaced by its finer-granularity sub-srDFG ([`srdfg::refine`]) until
//! only supported operations remain. If an unsupported node cannot be
//! refined further, compilation fails for that accelerator — exactly the
//! paper's stated behaviour ("if the nodes in the srDFG cannot be lowered
//! to a specific hardware because of unsupported nodes, the compilation
//! fails for that accelerator").

use crate::spec::TargetMap;
use srdfg::expand::{refine_many, RefineError};
use srdfg::SrDfg;
use std::fmt;

/// Why lowering failed.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

impl From<RefineError> for LowerError {
    fn from(e: RefineError) -> Self {
        LowerError { message: e.to_string() }
    }
}

/// Lowers `graph` in place until every node's operation is supported by
/// its domain's target in `targets` (paper Algorithm 1, iterated because a
/// refinement may introduce nodes that need further refinement).
///
/// # Errors
///
/// Returns a [`LowerError`] when an unsupported node cannot be refined
/// (already at the finest granularity, too large to expand, or
/// data-dependent).
pub fn lower(graph: &mut SrDfg, targets: &TargetMap) -> Result<(), LowerError> {
    stamp_overrides(graph, targets);
    // Refinements strictly reduce granularity, so this terminates; the
    // iteration bound is a defensive backstop.
    for _ in 0..64 {
        // Collect this round's unsupported nodes, then refine them all at
        // once (in parallel on multi-core hosts). Batching is equivalent to
        // the interleaved serial loop: `refine` reads only the node and its
        // edge metadata, and `splice` removes no node but the one it
        // replaces, so no pending refinement can observe another's splice.
        let mut pending = Vec::new();
        let mut labels = Vec::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let node = graph.node(id);
            let target = targets.target_for(node, graph.domain);
            if target.supports(&node.name) {
                continue;
            }
            pending.push((id, target.expand));
            labels.push((node.name.clone(), node.domain, target.name.clone()));
        }
        if pending.is_empty() {
            return Ok(());
        }
        let subs = refine_many(graph, &pending);
        // Splice serially, in collection (deterministic id) order.
        for ((sub, &(id, _)), (name, domain, target)) in subs.into_iter().zip(&pending).zip(&labels)
        {
            let sub = sub.map_err(|e| LowerError {
                message: format!(
                    "`{name}` (domain {domain:?}) is unsupported by {target} and cannot refine: {e}"
                ),
            })?;
            graph.splice(id, &sub);
        }
    }
    Err(LowerError { message: "lowering did not converge".into() })
}

/// Stamps per-component target overrides onto component nodes (and,
/// recursively, their bodies) so the assignment survives splicing.
fn stamp_overrides(graph: &mut SrDfg, targets: &TargetMap) {
    let ids: Vec<_> = graph.node_ids().collect();
    for id in ids {
        let name = graph.node(id).name.clone();
        if let Some(spec) = targets.override_for(&name) {
            let target = spec.name.clone();
            stamp_node(graph, id, &target);
        } else if let srdfg::NodeKind::Component(_) = &graph.node(id).kind {
            // Recurse into nested components.
            let srdfg::NodeKind::Component(sub) = &mut graph.node_mut(id).kind else {
                unreachable!()
            };
            let mut inner = std::mem::replace(sub.as_mut(), SrDfg::new(""));
            stamp_overrides(&mut inner, targets);
            if let srdfg::NodeKind::Component(slot) = &mut graph.node_mut(id).kind {
                **slot = inner;
            }
        }
    }
}

/// Marks a node and (for components) its whole body with a target name.
fn stamp_node(graph: &mut SrDfg, id: srdfg::NodeId, target: &str) {
    graph.node_mut(id).target = Some(target.to_string());
    if let srdfg::NodeKind::Component(sub) = &mut graph.node_mut(id).kind {
        let mut inner = std::mem::replace(sub.as_mut(), SrDfg::new(""));
        let ids: Vec<_> = inner.node_ids().collect();
        for nid in ids {
            stamp_node(&mut inner, nid, target);
        }
        if let srdfg::NodeKind::Component(slot) = &mut graph.node_mut(id).kind {
            **slot = inner;
        }
    }
}

/// Checks (without mutating) whether every node is supported already.
pub fn fully_lowered(graph: &SrDfg, targets: &TargetMap) -> bool {
    graph.iter_nodes().all(|(_, node)| targets.target_for(node, graph.domain).supports(&node.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;
    use pmlang::Domain;
    use srdfg::{Bindings, Machine, NodeKind, Tensor};
    use std::collections::HashMap;

    const MATVEC_SRC: &str = "mvmul(input float A[m][n], input float B[n], output float C[m]) {
         index i[0:n-1], j[0:m-1];
         C[j] = sum[i](A[j][i]*B[i]);
     }
     main(input float W[2][3], input float x[3], output float y[2]) {
         DA: mvmul(W, x, y);
     }";

    fn build_graph(src: &str) -> SrDfg {
        let prog = pmlang::parse(src).unwrap();
        pmlang::check(&prog).unwrap();
        srdfg::build(&prog, &Bindings::default()).unwrap()
    }

    fn feeds() -> HashMap<String, Tensor> {
        HashMap::from([
            (
                "W".to_string(),
                Tensor::from_vec(pmlang::DType::Float, vec![2, 3], vec![1., 2., 3., 4., 5., 6.])
                    .unwrap(),
            ),
            (
                "x".to_string(),
                Tensor::from_vec(pmlang::DType::Float, vec![3], vec![1., 1., 1.]).unwrap(),
            ),
        ])
    }

    #[test]
    fn lowering_to_group_granularity() {
        // Target supports tensor-level matvec: nothing to do but flatten
        // the component wrapper.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new("GROUPY", Domain::DataAnalytics, ["matvec"]));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        assert!(g.iter_nodes().all(|(_, n)| !matches!(n.kind, NodeKind::Component(_))));
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn lowering_to_scalar_granularity() {
        // TABLA-style target: only scalar ops + marshalling.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "SCALARY",
            Domain::DataAnalytics,
            ["add", "sub", "mul", "div", "const", "unpack", "pack"],
        ));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        // All compute is now scalar nodes.
        let scalar = g.iter_nodes().filter(|(_, n)| matches!(n.kind, NodeKind::Scalar(_))).count();
        assert!(scalar >= 10, "expected an expanded mul/add fabric, got {scalar}");
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn intermediate_granularity_stops_early() {
        // Target supports group `sum` and elementwise `mul`: lowering stops
        // at the decomposed level rather than expanding to scalars.
        let mut g = build_graph(MATVEC_SRC);
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "ROBOXY",
            Domain::DataAnalytics,
            ["sum", "map.mul", "map"],
        ));
        lower(&mut g, &targets).unwrap();
        assert!(fully_lowered(&g, &targets));
        let kinds: Vec<_> = g
            .iter_nodes()
            .map(|(_, n)| (n.name.clone(), matches!(n.kind, NodeKind::Reduce(_))))
            .collect();
        assert!(kinds.iter().any(|(n, is_red)| n == "sum" && *is_red), "{kinds:?}");
        let out = Machine::new(g).invoke(&feeds()).unwrap();
        assert_eq!(out["y"].as_real_slice().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn unsupported_scalar_fails_compilation() {
        // Program needs sigmoid; target has no sigmoid unit.
        let mut g = build_graph(
            "main(input float x[2], output float y[2]) { index i[0:1]; y[i] = sigmoid(x[i]); }",
        );
        // Force everything to the DA accelerator by annotating via graph
        // domain (main has no annotation; set graph-level domain).
        g.domain = Some(Domain::DataAnalytics);
        let host = AcceleratorSpec::new("HOSTLESS", Domain::DataAnalytics, []);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "NOSIG",
            Domain::DataAnalytics,
            ["add", "mul", "unpack", "pack", "const"],
        ));
        let err = lower(&mut g, &targets).unwrap_err();
        assert!(err.message.contains("sigmoid"), "{err}");
    }

    #[test]
    fn host_handles_unannotated_glue() {
        let mut g = build_graph(
            "f(input float x[2], output float y[2]) { index i[0:1]; y[i] = x[i] * 2.0; }
             main(input float a[2], output float b[2]) {
                 index i[0:1];
                 float t[2];
                 DSP: f(a, t);
                 b[i] = t[i] + 1.0;
             }",
        );
        let host = AcceleratorSpec::general_purpose("CPU", Domain::Dsp);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "DECOISH",
            Domain::Dsp,
            ["mul", "add", "const", "unpack", "pack"],
        ));
        lower(&mut g, &targets).unwrap();
        // The DSP component was flattened; the glue map stayed tensor-level
        // under the host.
        assert!(g
            .iter_nodes()
            .any(|(_, n)| n.domain.is_none() && matches!(n.kind, NodeKind::Map(_))));
        assert!(fully_lowered(&g, &targets));
    }
}
