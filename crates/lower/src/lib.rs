//! # pm-lower — srDFG lowering and accelerator-IR compilation
//!
//! Implements the two compilation algorithms of the PolyMath paper
//! ("A Computational Stack for Cross-Domain Acceleration", HPCA 2021):
//!
//! * **Algorithm 1** ([`fn@lower`]) — recursively replaces srDFG nodes whose
//!   operation the domain's target accelerator does not support with their
//!   finer-granularity sub-srDFGs, until every node is a supported
//!   accelerator operation;
//! * **Algorithm 2** ([`compile::compile_program`]) — translates each node
//!   of the lowered graph into an accelerator-IR fragment, inserting
//!   `load`/`store` fragments at domain boundaries and accumulating one
//!   program per target.
//!
//! Target capabilities are declared with [`AcceleratorSpec`] (`Ot`) and
//! collected in a [`TargetMap`] (`Om`).
//!
//! ## Example
//!
//! ```
//! use pm_lower::{lower, compile_program, AcceleratorSpec, TargetMap};
//! use pmlang::Domain;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (program, _) = pmlang::frontend(
//!     "main(input float x[4], output float y) {
//!          index i[0:3];
//!          y = sum[i](x[i]*x[i]);
//!      }",
//! )?;
//! let mut graph = srdfg::build(&program, &srdfg::Bindings::default())?;
//! let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
//! let targets = TargetMap::host_only(host);
//! lower(&mut graph, &targets)?;
//! let compiled = compile_program(&graph, &targets)?;
//! assert_eq!(compiled.partitions.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod fallback;
pub mod lower;
pub mod progcache;
pub mod spec;

pub use compile::{
    compile_program, compile_program_budgeted, compile_program_serial, compile_program_shared,
    AccProgram, ArgInfo, CompiledProgram, Fragment, FragmentKind,
};
pub use fallback::{relower_without, relower_without_cached};
pub use lower::{fully_lowered, lower, lower_budgeted, lower_with, LowerError};
pub use progcache::{ProgramCache, ProgramCacheStats, ProgramKey};
pub use spec::{AcceleratorSpec, SupportMemo, TargetMap};
