//! Host-fallback re-lowering — the degraded path of the resilient SoC.
//!
//! When the runtime marks an accelerator persistently down, its fragments
//! must keep executing somewhere. The host is general-purpose
//! (`supports_all`), so Algorithm 1 can always re-assign the downed
//! target's nodes to it: [`relower_without`] strips the downed targets
//! from the [`TargetMap`], clears any per-node target stamps that point at
//! them, re-runs [`lower`] (a no-op refinement-wise, since an
//! already-lowered graph has no unsupported operations for a
//! general-purpose host) and re-runs Algorithm 2 to produce a new
//! partitioning in which the downed targets' work lands on the host.
//!
//! The graph's nodes and edges are untouched — only target metadata
//! changes — so the re-lowered program computes bit-identical results to
//! the original, which is exactly what lets the fuzzer hold degraded runs
//! to the same oracle.

use crate::compile::{compile_program_shared, CompiledProgram};
use crate::lower::{lower_with, LowerError};
use crate::spec::TargetMap;
use srdfg::template::TemplateCache;
use std::sync::Arc;

/// Re-lowers `compiled` with every target named in `down` removed from
/// `targets`; their fragments are re-assigned (via Algorithm 1 + 2) to
/// whatever the reduced map resolves to — ultimately the host.
///
/// Passing the host's own name in `down` has no effect: the host is the
/// fallback of last resort and cannot be removed.
///
/// # Errors
///
/// Returns a [`LowerError`] if re-lowering or re-compilation fails — which
/// can only happen if the reduced map still contains a non-general-purpose
/// target that cannot absorb the orphaned nodes.
pub fn relower_without(
    compiled: &CompiledProgram,
    targets: &TargetMap,
    down: &[String],
) -> Result<CompiledProgram, LowerError> {
    relower_without_cached(compiled, targets, down, None)
}

/// [`relower_without`] with the compiler's [`TemplateCache`] threaded
/// through: when the reduced target map forces any further refinement
/// (a non-general-purpose target absorbing the downed target's nodes at
/// a finer granularity), those expansions hit the same templates the
/// original compilation populated instead of re-expanding under fault-
/// recovery latency pressure. The cached and uncached paths produce
/// byte-identical graphs, so the degraded run still holds to the same
/// oracle.
pub fn relower_without_cached(
    compiled: &CompiledProgram,
    targets: &TargetMap,
    down: &[String],
    cache: Option<&TemplateCache>,
) -> Result<CompiledProgram, LowerError> {
    let host_name = targets.host().name.clone();
    let down: Vec<&String> = down.iter().filter(|d| **d != host_name).collect();
    let reduced = targets.without_targets(&down);
    let mut graph = (*compiled.graph).clone();
    // Clear stamped per-node assignments pointing at downed targets so
    // those nodes re-resolve through the reduced map (domain default, now
    // the host).
    let ids: Vec<srdfg::NodeId> = graph.node_ids().collect();
    for id in ids {
        let stamped_down = match &graph.node(id).target {
            Some(t) => down.iter().any(|d| t == d.as_str()),
            None => false,
        };
        if stamped_down {
            graph.node_mut(id).target = None;
        }
    }
    lower_with(&mut graph, &reduced, cache)?;
    compile_program_shared(Arc::new(graph), &reduced, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::lower::lower;
    use crate::spec::AcceleratorSpec;
    use pmlang::Domain;
    use std::collections::HashMap;

    fn two_domain_compiled() -> (CompiledProgram, TargetMap) {
        let src = "filt(input float x[8], param float h[4], output float y[5]) {
             index i[0:4], k[0:3];
             y[i] = sum[k](h[k]*x[i+k]);
         }
         clas(input float f[5], param float v[5], output float c) {
             index i[0:4];
             c = sigmoid(sum[i](v[i]*f[i]));
         }
         main(input float sig[8], param float taps[4], param float v[5],
              output float cls) {
             float feat[5];
             DSP: filt(sig, taps, feat);
             DA: clas(feat, v, cls);
         }";
        let prog = pmlang::parse(src).unwrap();
        let mut g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut targets = TargetMap::host_only(host);
        targets.set(AcceleratorSpec::new(
            "DECO",
            Domain::Dsp,
            [
                "add", "sub", "mul", "sum", "shift", "const", "pack", "unpack", "load", "store",
                "read", "write",
            ],
        ));
        targets.set(AcceleratorSpec::new(
            "TABLA",
            Domain::DataAnalytics,
            [
                "add", "sub", "mul", "sum", "sigmoid", "const", "pack", "unpack", "load", "store",
                "read", "write",
            ],
        ));
        lower(&mut g, &targets).unwrap();
        (compile_program(&g, &targets).unwrap(), targets)
    }

    fn execute(compiled: &CompiledProgram) -> HashMap<String, srdfg::Tensor> {
        use pmlang::DType;
        let t = |shape: Vec<usize>, data: Vec<f64>| {
            srdfg::Tensor::from_vec(DType::Float, shape, data).unwrap()
        };
        let mut m = srdfg::Machine::new((*compiled.graph).clone());
        let mut feeds = HashMap::new();
        feeds.insert("sig".to_string(), t(vec![8], (0..8).map(|i| i as f64 * 0.25).collect()));
        feeds.insert("taps".to_string(), t(vec![4], vec![0.5, -0.25, 0.125, 1.0]));
        feeds.insert("v".to_string(), t(vec![5], vec![1.0, -1.0, 0.5, 0.25, 2.0]));
        m.invoke(&feeds).unwrap()
    }

    #[test]
    fn relower_moves_downed_target_to_host() {
        let (compiled, targets) = two_domain_compiled();
        assert!(compiled.partitions.iter().any(|p| p.target == "DECO"));
        let re = relower_without(&compiled, &targets, &["DECO".to_string()]).unwrap();
        assert!(
            !re.partitions.iter().any(|p| p.target == "DECO"),
            "downed target must receive no fragments"
        );
        assert!(re.partitions.iter().any(|p| p.target == "CPU"), "host must absorb the work");
        assert!(re.partitions.iter().any(|p| p.target == "TABLA"), "healthy targets stay");
    }

    #[test]
    fn relower_all_targets_is_host_only() {
        let (compiled, targets) = two_domain_compiled();
        let down = vec!["DECO".to_string(), "TABLA".to_string()];
        let re = relower_without(&compiled, &targets, &down).unwrap();
        for p in &re.partitions {
            assert_eq!(p.target, "CPU", "everything must land on the host");
        }
    }

    #[test]
    fn relower_preserves_functional_results_exactly() {
        let (compiled, targets) = two_domain_compiled();
        let before = execute(&compiled);
        let re = relower_without(&compiled, &targets, &["DECO".to_string()]).unwrap();
        let after = execute(&re);
        assert_eq!(before.len(), after.len());
        for (name, t) in &before {
            assert_eq!(Some(t), after.get(name), "output `{name}` changed under fallback");
        }
    }

    #[test]
    fn host_cannot_be_taken_down() {
        let (compiled, targets) = two_domain_compiled();
        let re = relower_without(&compiled, &targets, &["CPU".to_string()]).unwrap();
        assert_eq!(re.partitions.len(), compiled.partitions.len());
    }

    #[test]
    fn relower_is_deterministic() {
        let (compiled, targets) = two_domain_compiled();
        let a = relower_without(&compiled, &targets, &["TABLA".to_string()]).unwrap();
        let b = relower_without(&compiled, &targets, &["TABLA".to_string()]).unwrap();
        assert_eq!(a.partitions, b.partitions);
    }
}
