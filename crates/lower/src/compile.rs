//! Algorithm 2 — compilation from a lowered srDFG to accelerator IR.
//!
//! ```text
//! function CompileProgram(srdfg, AccSpec)
//!     let πd ← ∅ for d ∈ Domains
//!     for each n ∈ N do
//!         let (+d, md) = AccSpec[n.domain]
//!         let t = md[n.name]
//!         πd = πd + t(srdfg, n)
//!         for each in_edge ∈ n: if n.domain ≠ in_edge.src.domain then
//!             πd = πd + t_load(in_edge, n)
//!         for each out_edge ∈ n: if n.domain ≠ out_edge.dst.domain then
//!             πd = πd + t_store(n, out_edge)
//!     return πd1, …, πdn
//! ```
//!
//! Translation here produces a target-neutral [`Fragment`] per node — the
//! operation name, typed/shaped argument descriptors derived from edge
//! metadata (the paper's five argument-assignment steps), and the scalar-op
//! count — accumulated into one [`AccProgram`] per target. `load`/`store`
//! fragments are inserted wherever a value crosses a domain boundary; the
//! accelerator backends (crate `pm-accel`) play the role of the
//! "accelerator-provided compilers" that turn each fragment stream into an
//! executable schedule.

use crate::lower::{fully_lowered, LowerError};
use crate::spec::TargetMap;
use pmlang::{DType, Domain};
use srdfg::{EdgeId, Modifier, NodeId, SrDfg};
use std::collections::HashMap;

/// A typed, shaped argument of a fragment (derived from edge metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct ArgInfo {
    /// Source-level name.
    pub name: String,
    /// Element type (already converted to the accelerator's type system by
    /// the backend; kept source-typed here).
    pub dtype: DType,
    /// Type modifier — drives FIFO vs. on-chip placement (paper §II.A).
    pub modifier: Modifier,
    /// Concrete shape.
    pub shape: Vec<usize>,
    /// The underlying graph edge.
    pub edge: EdgeId,
}

/// What a fragment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentKind {
    /// An accelerator compute operation.
    Compute,
    /// A DMA load from another domain (or from the host).
    Load,
    /// A DMA store toward another domain (or the host).
    Store,
}

/// One accelerator-IR fragment: a basic operator and its arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Accelerator operation name.
    pub op: String,
    /// Kind of fragment.
    pub kind: FragmentKind,
    /// The originating graph node (compute fragments).
    pub node: Option<NodeId>,
    /// Input arguments.
    pub inputs: Vec<ArgInfo>,
    /// Output arguments.
    pub outputs: Vec<ArgInfo>,
    /// Scalar operations this fragment performs (cost-model basis).
    pub ops: u64,
}

impl Fragment {
    /// Bytes moved by a load/store fragment.
    pub fn bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(&self.outputs)
            .map(|a| {
                let per = if a.dtype == DType::Complex { 8 } else { 4 };
                a.shape.iter().product::<usize>() as u64 * per
            })
            .sum()
    }
}

/// The accumulated IR `πd` for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct AccProgram {
    /// Target accelerator name.
    pub target: String,
    /// Primary domain this partition serves (`None` = host glue; a domain
    /// can spread over several targets under per-component overrides).
    pub domain: Option<Domain>,
    /// Fragment stream in dependency (topological) order.
    pub fragments: Vec<Fragment>,
}

impl AccProgram {
    /// Total compute scalar-ops in this partition.
    pub fn compute_ops(&self) -> u64 {
        self.fragments.iter().filter(|f| f.kind == FragmentKind::Compute).map(|f| f.ops).sum()
    }

    /// Total DMA bytes (loads + stores).
    pub fn dma_bytes(&self) -> u64 {
        self.fragments.iter().filter(|f| f.kind != FragmentKind::Compute).map(Fragment::bytes).sum()
    }
}

/// A fully compiled program: the lowered graph plus per-target IR.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The lowered srDFG (functional ground truth; backends execute it).
    pub graph: SrDfg,
    /// One partition per target that received at least one fragment.
    pub partitions: Vec<AccProgram>,
}

impl CompiledProgram {
    /// The first partition for `domain`, if any fragments landed there.
    pub fn partition(&self, domain: Option<Domain>) -> Option<&AccProgram> {
        self.partitions.iter().find(|p| p.domain == domain)
    }

    /// The partition compiled for a specific target name.
    pub fn partition_by_target(&self, target: &str) -> Option<&AccProgram> {
        self.partitions.iter().find(|p| p.target == target)
    }
}

/// Runs Algorithm 2 over a lowered graph, building the per-target
/// partitions in parallel when more than one target received nodes.
///
/// Each partition is produced by the same pure builder the serial path
/// uses over the same precomputed topological order, so the result is
/// byte-identical to [`compile_program_serial`] regardless of thread
/// count.
///
/// # Errors
///
/// Returns a [`LowerError`] if the graph still contains operations its
/// targets do not support (run [`crate::lower::lower`] first).
pub fn compile_program(graph: &SrDfg, targets: &TargetMap) -> Result<CompiledProgram, LowerError> {
    compile_partitions(graph, targets, true)
}

/// [`compile_program`] with parallelism disabled (one partition at a
/// time). Exists so tests and benchmarks can assert the determinism
/// guarantee; results are always identical to the parallel path.
pub fn compile_program_serial(
    graph: &SrDfg,
    targets: &TargetMap,
) -> Result<CompiledProgram, LowerError> {
    compile_partitions(graph, targets, false)
}

fn compile_partitions(
    graph: &SrDfg,
    targets: &TargetMap,
    parallel: bool,
) -> Result<CompiledProgram, LowerError> {
    if !fully_lowered(graph, targets) {
        return Err(LowerError {
            message: "graph contains unsupported operations; lower it first".into(),
        });
    }
    let order = graph.topo_order();
    // Resolve every node's target once up front; the per-partition builders
    // share this read-only assignment (partitions can reach hundreds of
    // thousands of fragments, so resolution must not repeat per edge).
    let assign: HashMap<NodeId, &str> = order
        .iter()
        .map(|&id| (id, targets.target_for(graph.node(id), graph.domain).name.as_str()))
        .collect();
    // The host target name (host partitions never pay DMA).
    let host_name = targets.host().name.as_str();

    // Distinct targets in first-touch (topological) order; a partition's
    // domain is the domain of its first node (the paper's πd, one per
    // accelerator — a domain can host two accelerators under overrides).
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut target_list: Vec<(&str, Option<Domain>)> = Vec::new();
    for &id in &order {
        let t = assign[&id];
        if seen.insert(t) {
            let node = graph.node(id);
            target_list.push((t, node.domain.or(graph.domain)));
        }
    }

    let build = |&(target, domain): &(&str, Option<Domain>)| -> AccProgram {
        build_partition(graph, &order, &assign, host_name, target, domain)
    };
    let mut parts: Vec<AccProgram> = if parallel && target_list.len() > 1 {
        use rayon::prelude::*;
        target_list.par_iter().map(build).collect()
    } else {
        target_list.iter().map(build).collect()
    };
    parts.sort_by_key(|p| (p.domain, p.target.clone()));
    Ok(CompiledProgram { graph: graph.clone(), partitions: parts })
}

/// Builds the fragment stream `πd` for one target: a pure function of the
/// graph, the shared topological order, and the node→target assignment —
/// safe to run concurrently with other targets' builds.
fn build_partition(
    graph: &SrDfg,
    order: &[NodeId],
    assign: &HashMap<NodeId, &str>,
    host_name: &str,
    target: &str,
    domain: Option<Domain>,
) -> AccProgram {
    let arg_info = |e: EdgeId| -> ArgInfo {
        let meta = &graph.edge(e).meta;
        ArgInfo {
            name: meta.name.clone(),
            dtype: meta.dtype,
            modifier: meta.modifier,
            shape: meta.shape.clone(),
            edge: e,
        }
    };
    let mut fragments = Vec::new();
    // A value is DMA-loaded once per destination accelerator, however many
    // nodes consume it there.
    let mut loaded: std::collections::HashSet<EdgeId> = std::collections::HashSet::new();
    for &id in order {
        if assign[&id] != target {
            continue;
        }
        let node = graph.node(id);

        // t_load for operands produced on another accelerator (or fed by
        // the host through the graph boundary).
        for &e in &node.inputs {
            let src_target = match graph.edge(e).producer {
                Some((p, _)) => assign[&p],
                None => host_name, // boundary input: host memory
            };
            if src_target != target && loaded.insert(e) {
                fragments.push(Fragment {
                    op: "load".into(),
                    kind: FragmentKind::Load,
                    node: None,
                    inputs: vec![arg_info(e)],
                    outputs: vec![],
                    ops: 0,
                });
            }
        }

        // t(srdfg, n): the compute fragment.
        fragments.push(Fragment {
            op: node.name.clone(),
            kind: FragmentKind::Compute,
            node: Some(id),
            inputs: node.inputs.iter().map(|&e| arg_info(e)).collect(),
            outputs: node.outputs.iter().map(|&e| arg_info(e)).collect(),
            ops: srdfg::graph::node_op_count(node),
        });

        // t_store for results consumed on another accelerator (or leaving
        // through the graph boundary toward the host).
        for &e in &node.outputs {
            let edge = graph.edge(e);
            let crosses = edge.consumers.iter().any(|&(c, _)| assign[&c] != target)
                || (graph.boundary_outputs.contains(&e) && target != host_name);
            if crosses {
                fragments.push(Fragment {
                    op: "store".into(),
                    kind: FragmentKind::Store,
                    node: None,
                    inputs: vec![],
                    outputs: vec![arg_info(e)],
                    ops: 0,
                });
            }
        }
    }
    AccProgram { target: target.to_string(), domain, fragments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::spec::AcceleratorSpec;

    fn two_domain_graph() -> SrDfg {
        let prog = pmlang::parse(
            "filt(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i] * 0.5; }
             clas(input float x[4], param float w[4], output float y) {
                 index i[0:3];
                 y = sigmoid(sum[i](w[i]*x[i]));
             }
             main(input float sig[4], param float w[4], output float cls) {
                 float filtered[4];
                 DSP: filt(sig, filtered);
                 DA: clas(filtered, w, cls);
             }",
        )
        .unwrap();
        srdfg::build(&prog, &srdfg::Bindings::default()).unwrap()
    }

    fn targets() -> TargetMap {
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut t = TargetMap::host_only(host);
        t.set(AcceleratorSpec::new(
            "DECO",
            Domain::Dsp,
            ["add", "sub", "mul", "const", "unpack", "pack"],
        ));
        t.set(AcceleratorSpec::new(
            "TABLA",
            Domain::DataAnalytics,
            ["add", "sub", "mul", "sigmoid", "const", "unpack", "pack"],
        ));
        t
    }

    #[test]
    fn partitions_by_domain_with_dma() {
        let mut g = two_domain_graph();
        let t = targets();
        lower(&mut g, &t).unwrap();
        let compiled = compile_program(&g, &t).unwrap();

        let dsp = compiled.partition(Some(Domain::Dsp)).expect("dsp partition");
        let da = compiled.partition(Some(Domain::DataAnalytics)).expect("da partition");
        assert_eq!(dsp.target, "DECO");
        assert_eq!(da.target, "TABLA");
        assert!(dsp.compute_ops() > 0);
        assert!(da.compute_ops() > 0);

        // The DSP partition loads the host input and stores toward DA.
        assert!(dsp.fragments.iter().any(|f| f.kind == FragmentKind::Load));
        assert!(dsp.fragments.iter().any(|f| f.kind == FragmentKind::Store));
        // The DA partition loads the filtered vector and the host param,
        // then stores the classification to the host.
        assert!(da.fragments.iter().filter(|f| f.kind == FragmentKind::Load).count() >= 2);
        assert!(da.fragments.iter().any(|f| f.kind == FragmentKind::Store));
        assert!(dsp.dma_bytes() > 0);
    }

    #[test]
    fn rejects_unlowered_graph() {
        let g = two_domain_graph();
        let t = targets();
        assert!(compile_program(&g, &t).is_err());
    }

    #[test]
    fn single_domain_program_has_one_accel_partition() {
        let prog = pmlang::parse(
            "main(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i] + 1.0; }",
        )
        .unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let t = TargetMap::host_only(host);
        let compiled = compile_program(&g, &t).unwrap();
        assert_eq!(compiled.partitions.len(), 1);
        assert_eq!(compiled.partitions[0].target, "CPU");
        // Host partition needs no DMA fragments.
        assert_eq!(compiled.partitions[0].dma_bytes(), 0);
    }

    #[test]
    fn fragment_args_carry_modifiers_and_shapes() {
        let prog = pmlang::parse(
            "main(input float x[4], state float s[4], output float y[4]) {
                 index i[0:3];
                 s[i] = s[i] + x[i];
                 y[i] = s[i];
             }",
        )
        .unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let t = TargetMap::host_only(host);
        let compiled = compile_program(&g, &t).unwrap();
        let frags = &compiled.partitions[0].fragments;
        let add = frags.iter().find(|f| f.op == "map.add").expect("add fragment");
        assert!(add.inputs.iter().any(|a| a.modifier == Modifier::State && a.shape == vec![4]));
    }
}
