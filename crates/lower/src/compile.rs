//! Algorithm 2 — compilation from a lowered srDFG to accelerator IR.
//!
//! ```text
//! function CompileProgram(srdfg, AccSpec)
//!     let πd ← ∅ for d ∈ Domains
//!     for each n ∈ N do
//!         let (+d, md) = AccSpec[n.domain]
//!         let t = md[n.name]
//!         πd = πd + t(srdfg, n)
//!         for each in_edge ∈ n: if n.domain ≠ in_edge.src.domain then
//!             πd = πd + t_load(in_edge, n)
//!         for each out_edge ∈ n: if n.domain ≠ out_edge.dst.domain then
//!             πd = πd + t_store(n, out_edge)
//!     return πd1, …, πdn
//! ```
//!
//! Translation here produces a target-neutral [`Fragment`] per node — the
//! operation name, typed/shaped argument descriptors derived from edge
//! metadata (the paper's five argument-assignment steps), and the scalar-op
//! count — accumulated into one [`AccProgram`] per target. `load`/`store`
//! fragments are inserted wherever a value crosses a domain boundary; the
//! accelerator backends (crate `pm-accel`) play the role of the
//! "accelerator-provided compilers" that turn each fragment stream into an
//! executable schedule.

use crate::lower::{fully_lowered, LowerError};
use crate::spec::TargetMap;
use pmlang::{DType, Domain};
use srdfg::budget::Budget;
use srdfg::{Consed, EdgeId, EdgeMeta, Ident, Modifier, NodeId, SrDfg};
use std::sync::Arc;

/// A typed, shaped argument of a fragment: a handle on the interned edge
/// metadata plus the edge itself. Building one is two refcount bumps —
/// fragments share the graph's metadata records instead of re-copying
/// name strings and shape vectors per argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgInfo {
    /// Interned `(name, type, type-modifier, shape)` metadata of the edge.
    pub meta: Consed<EdgeMeta>,
    /// The underlying graph edge.
    pub edge: EdgeId,
}

impl ArgInfo {
    /// Source-level name of the value.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.meta.dtype
    }

    /// Type modifier.
    pub fn modifier(&self) -> Modifier {
        self.meta.modifier
    }

    /// Concrete shape (empty = scalar).
    pub fn shape(&self) -> &[usize] {
        &self.meta.shape
    }

    /// Number of elements the argument carries.
    pub fn volume(&self) -> usize {
        self.meta.shape.iter().product()
    }
}

/// What a fragment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentKind {
    /// An accelerator compute operation.
    Compute,
    /// A DMA load from another domain (or from the host).
    Load,
    /// A DMA store toward another domain (or the host).
    Store,
}

/// One accelerator-IR fragment: a basic operator and its arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Accelerator operation name (shared handle; compute fragments alias
    /// their node's name, DMA fragments a per-compile `load`/`store`).
    pub op: Ident,
    /// Kind of fragment.
    pub kind: FragmentKind,
    /// The originating graph node (compute fragments).
    pub node: Option<NodeId>,
    /// Input arguments.
    pub inputs: Vec<ArgInfo>,
    /// Output arguments.
    pub outputs: Vec<ArgInfo>,
    /// Scalar operations this fragment performs (cost-model basis).
    pub ops: u64,
}

impl Fragment {
    /// Bytes moved by a load/store fragment.
    pub fn bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(&self.outputs)
            .map(|a| {
                let per = if a.dtype() == DType::Complex { 8 } else { 4 };
                a.volume() as u64 * per
            })
            .sum()
    }
}

/// The accumulated IR `πd` for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct AccProgram {
    /// Target accelerator name.
    pub target: String,
    /// Primary domain this partition serves (`None` = host glue; a domain
    /// can spread over several targets under per-component overrides).
    pub domain: Option<Domain>,
    /// Fragment stream in dependency (topological) order.
    pub fragments: Vec<Fragment>,
}

impl AccProgram {
    /// Total compute scalar-ops in this partition.
    pub fn compute_ops(&self) -> u64 {
        self.fragments.iter().filter(|f| f.kind == FragmentKind::Compute).map(|f| f.ops).sum()
    }

    /// Total DMA bytes (loads + stores).
    pub fn dma_bytes(&self) -> u64 {
        self.fragments.iter().filter(|f| f.kind != FragmentKind::Compute).map(Fragment::bytes).sum()
    }
}

/// A fully compiled program: the lowered graph plus per-target IR.
///
/// The graph is held behind an [`Arc`]: a lowered srDFG can run to
/// hundreds of thousands of nodes, and cloning it into every compiled
/// artifact (and again into every runtime machine) used to dominate the
/// `compile` stage. Readers deref transparently; the rare consumer that
/// needs an owned mutable graph (fallback re-lowering) clones explicitly.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The lowered srDFG (functional ground truth; backends execute it).
    pub graph: Arc<SrDfg>,
    /// One partition per target that received at least one fragment.
    pub partitions: Vec<AccProgram>,
}

impl CompiledProgram {
    /// The first partition for `domain`, if any fragments landed there.
    pub fn partition(&self, domain: Option<Domain>) -> Option<&AccProgram> {
        self.partitions.iter().find(|p| p.domain == domain)
    }

    /// The partition compiled for a specific target name.
    pub fn partition_by_target(&self, target: &str) -> Option<&AccProgram> {
        self.partitions.iter().find(|p| p.target == target)
    }
}

/// Runs Algorithm 2 over a lowered graph, building the per-target
/// partitions in parallel when more than one target received nodes.
///
/// Each partition is produced by the same pure builder the serial path
/// uses over the same precomputed topological order, so the result is
/// byte-identical to [`compile_program_serial`] regardless of thread
/// count.
///
/// # Errors
///
/// Returns a [`LowerError`] if the graph still contains operations its
/// targets do not support (run [`crate::lower::lower`] first).
pub fn compile_program(graph: &SrDfg, targets: &TargetMap) -> Result<CompiledProgram, LowerError> {
    compile_partitions(&Arc::new(graph.clone()), targets, true, &Budget::unlimited())
}

/// [`compile_program`] with parallelism disabled (one fragment chunk at a
/// time). Exists so tests and benchmarks can assert the determinism
/// guarantee; results are always identical to the parallel path.
pub fn compile_program_serial(
    graph: &SrDfg,
    targets: &TargetMap,
) -> Result<CompiledProgram, LowerError> {
    compile_partitions(&Arc::new(graph.clone()), targets, false, &Budget::unlimited())
}

/// [`compile_program`] over an already-shared graph: no graph clone at
/// all — the compiled artifact aliases the caller's [`Arc`]. This is the
/// entry the [`polymath` compiler] driver uses after lowering.
pub fn compile_program_shared(
    graph: Arc<SrDfg>,
    targets: &TargetMap,
    parallel: bool,
) -> Result<CompiledProgram, LowerError> {
    compile_partitions(&graph, targets, parallel, &Budget::unlimited())
}

/// [`compile_program_shared`] under a cooperative-cancellation
/// [`Budget`]: an expired request is turned away at entry (one fuel unit
/// per graph node) before any fragment is built, with a budget-tagged
/// [`LowerError`].
///
/// # Errors
///
/// Everything [`compile_program_shared`] returns, plus a [`LowerError`]
/// carrying [`LowerError::budget`] on cancellation.
pub fn compile_program_budgeted(
    graph: Arc<SrDfg>,
    targets: &TargetMap,
    parallel: bool,
    budget: &Budget,
) -> Result<CompiledProgram, LowerError> {
    compile_partitions(&graph, targets, parallel, budget)
}

/// One size-binned slice of a partition's node list — the unit of
/// parallelism. Fragments of a node are a pure function of the shared
/// pre-pass plan, so chunk boundaries (and thus thread count) cannot
/// change the concatenated result.
struct Chunk {
    ti: usize,
    lo: usize,
    hi: usize,
}

fn compile_partitions(
    graph: &Arc<SrDfg>,
    targets: &TargetMap,
    parallel: bool,
    budget: &Budget,
) -> Result<CompiledProgram, LowerError> {
    if !fully_lowered(graph, targets) {
        return Err(LowerError::msg("graph contains unsupported operations; lower it first"));
    }
    // One fuel unit per node: Algorithm 2 is a single sweep, so the entry
    // charge both prices the work about to happen and turns an expired
    // request away before any fragment is built.
    budget.charge("compile", graph.node_slots() as u64)?;
    let order = graph.topo_order();
    let n_nodes = graph.node_slots();
    let n_edges = graph.edge_count();

    // Resolve every node's target once up front, as a dense index table
    // (node raw id → index into `tlist`); the fragment builders share this
    // read-only assignment, and integer comparisons replace the string
    // hashing that used to dominate per-edge work. `tlist` keeps
    // first-touch (topological) order; a partition's domain is the domain
    // of its first node (the paper's πd, one per accelerator — a domain
    // can host two accelerators under overrides).
    let mut tlist: Vec<(&str, Option<Domain>)> = Vec::new();
    let mut assign: Vec<u32> = vec![u32::MAX; n_nodes];
    for &id in &order {
        let node = graph.node(id);
        let name = targets.target_for(node, graph.domain).name.as_str();
        let ti = match tlist.iter().position(|&(t, _)| t == name) {
            Some(i) => i,
            None => {
                tlist.push((name, node.domain.or(graph.domain)));
                tlist.len() - 1
            }
        };
        assign[id.0 as usize] = ti as u32;
    }
    // The host target's index (host partitions never pay DMA); boundary
    // inputs are sourced from host memory. u32::MAX when the host received
    // no nodes — then unequal to every real index, as it must be.
    let host_name = targets.host().name.as_str();
    let host_ti: u32 =
        tlist.iter().position(|&(t, _)| t == host_name).map_or(u32::MAX, |i| i as u32);

    let mut is_boundary_out = vec![false; n_edges];
    for e in &graph.boundary_outputs {
        is_boundary_out[e.0 as usize] = true;
    }

    // Pre-pass: one serial sweep computes, per node, the DMA loads that
    // precede its compute fragment (a value is loaded once per destination
    // accelerator, by its first consumer there — this ordering decision is
    // what forced the old builder to re-walk the whole graph per target)
    // and the stores that follow it, plus a fragment-count weight for
    // chunk binning.
    let mut pre_loads: Vec<Vec<EdgeId>> = vec![Vec::new(); n_nodes];
    let mut post_stores: Vec<Vec<EdgeId>> = vec![Vec::new(); n_nodes];
    let mut node_w: Vec<u32> = vec![0; n_nodes];
    let mut loaded = vec![false; tlist.len() * n_edges];
    let mut weight: Vec<u64> = vec![0; tlist.len()];
    let mut nodes_of: Vec<Vec<NodeId>> = vec![Vec::new(); tlist.len()];
    for &id in &order {
        let ni = id.0 as usize;
        let ti = assign[ni];
        let node = graph.node(id);
        let mut w = (1 + node.inputs.len() + node.outputs.len()) as u32;
        for &e in &node.inputs {
            let src_ti = match graph.edge(e).producer {
                Some((p, _)) => assign[p.0 as usize],
                None => host_ti, // boundary input: host memory
            };
            if src_ti != ti {
                let slot = ti as usize * n_edges + e.0 as usize;
                if !loaded[slot] {
                    loaded[slot] = true;
                    pre_loads[ni].push(e);
                    w += 2;
                }
            }
        }
        for &e in &node.outputs {
            let edge = graph.edge(e);
            let crosses = edge.consumers.iter().any(|&(c, _)| assign[c.0 as usize] != ti)
                || (is_boundary_out[e.0 as usize] && ti != host_ti);
            if crosses {
                post_stores[ni].push(e);
                w += 2;
            }
        }
        node_w[ni] = w;
        weight[ti as usize] += u64::from(w);
        nodes_of[ti as usize].push(id);
    }

    // Size-binned chunks: split each partition's node list so every chunk
    // carries roughly equal fragment weight. This moves the rayon grain
    // from whole-partitions (useless for single-accelerator programs) to
    // fragments, while a floor keeps tiny graphs in one chunk.
    let threads = rayon::current_num_threads().max(1);
    let mut chunks: Vec<Chunk> = Vec::new();
    for (ti, nodes) in nodes_of.iter().enumerate() {
        let per_chunk = (weight[ti] / (threads as u64 * 4)).max(2048);
        let mut lo = 0usize;
        let mut acc = 0u64;
        for (i, &id) in nodes.iter().enumerate() {
            acc += u64::from(node_w[id.0 as usize]);
            if acc >= per_chunk {
                chunks.push(Chunk { ti, lo, hi: i + 1 });
                lo = i + 1;
                acc = 0;
            }
        }
        if lo < nodes.len() {
            chunks.push(Chunk { ti, lo, hi: nodes.len() });
        }
    }

    let arg_info = |e: EdgeId| -> ArgInfo { ArgInfo { meta: graph.edge(e).meta.clone(), edge: e } };
    let load_op: Ident = "load".into();
    let store_op: Ident = "store".into();
    let build_chunk = |c: &Chunk| -> Vec<Fragment> {
        let cap: usize = nodes_of[c.ti][c.lo..c.hi]
            .iter()
            .map(|id| {
                let ni = id.0 as usize;
                1 + pre_loads[ni].len() + post_stores[ni].len()
            })
            .sum();
        let mut fragments = Vec::with_capacity(cap);
        for &id in &nodes_of[c.ti][c.lo..c.hi] {
            let ni = id.0 as usize;
            let node = graph.node(id);
            // t_load for operands produced on another accelerator (or fed
            // by the host through the graph boundary).
            for &e in &pre_loads[ni] {
                fragments.push(Fragment {
                    op: load_op.clone(),
                    kind: FragmentKind::Load,
                    node: None,
                    inputs: vec![arg_info(e)],
                    outputs: vec![],
                    ops: 0,
                });
            }
            // t(srdfg, n): the compute fragment.
            fragments.push(Fragment {
                op: node.name.clone(),
                kind: FragmentKind::Compute,
                node: Some(id),
                inputs: node.inputs.iter().map(|&e| arg_info(e)).collect(),
                outputs: node.outputs.iter().map(|&e| arg_info(e)).collect(),
                ops: srdfg::graph::node_op_count(node),
            });
            // t_store for results consumed on another accelerator (or
            // leaving through the graph boundary toward the host).
            for &e in &post_stores[ni] {
                fragments.push(Fragment {
                    op: store_op.clone(),
                    kind: FragmentKind::Store,
                    node: None,
                    inputs: vec![],
                    outputs: vec![arg_info(e)],
                    ops: 0,
                });
            }
        }
        fragments
    };

    let chunk_frags: Vec<Vec<Fragment>> = if parallel && chunks.len() > 1 {
        use rayon::prelude::*;
        chunks.par_iter().map(build_chunk).collect()
    } else {
        chunks.iter().map(build_chunk).collect()
    };

    let mut parts: Vec<AccProgram> = tlist
        .iter()
        .map(|&(t, domain)| AccProgram { target: t.to_string(), domain, fragments: Vec::new() })
        .collect();
    // Exact-capacity reserve: a single-accelerator program concatenates
    // every chunk into one partition, and doubling-growth would re-copy
    // the whole fragment stream several times over.
    let mut part_len = vec![0usize; parts.len()];
    for (c, frags) in chunks.iter().zip(&chunk_frags) {
        part_len[c.ti] += frags.len();
    }
    for (p, n) in parts.iter_mut().zip(part_len) {
        p.fragments.reserve_exact(n);
    }
    for (c, frags) in chunks.iter().zip(chunk_frags) {
        parts[c.ti].fragments.extend(frags);
    }
    parts.sort_by_key(|p| (p.domain, p.target.clone()));
    Ok(CompiledProgram { graph: Arc::clone(graph), partitions: parts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::spec::AcceleratorSpec;

    fn two_domain_graph() -> SrDfg {
        let prog = pmlang::parse(
            "filt(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i] * 0.5; }
             clas(input float x[4], param float w[4], output float y) {
                 index i[0:3];
                 y = sigmoid(sum[i](w[i]*x[i]));
             }
             main(input float sig[4], param float w[4], output float cls) {
                 float filtered[4];
                 DSP: filt(sig, filtered);
                 DA: clas(filtered, w, cls);
             }",
        )
        .unwrap();
        srdfg::build(&prog, &srdfg::Bindings::default()).unwrap()
    }

    fn targets() -> TargetMap {
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let mut t = TargetMap::host_only(host);
        t.set(AcceleratorSpec::new(
            "DECO",
            Domain::Dsp,
            ["add", "sub", "mul", "const", "unpack", "pack"],
        ));
        t.set(AcceleratorSpec::new(
            "TABLA",
            Domain::DataAnalytics,
            ["add", "sub", "mul", "sigmoid", "const", "unpack", "pack"],
        ));
        t
    }

    #[test]
    fn partitions_by_domain_with_dma() {
        let mut g = two_domain_graph();
        let t = targets();
        lower(&mut g, &t).unwrap();
        let compiled = compile_program(&g, &t).unwrap();

        let dsp = compiled.partition(Some(Domain::Dsp)).expect("dsp partition");
        let da = compiled.partition(Some(Domain::DataAnalytics)).expect("da partition");
        assert_eq!(dsp.target, "DECO");
        assert_eq!(da.target, "TABLA");
        assert!(dsp.compute_ops() > 0);
        assert!(da.compute_ops() > 0);

        // The DSP partition loads the host input and stores toward DA.
        assert!(dsp.fragments.iter().any(|f| f.kind == FragmentKind::Load));
        assert!(dsp.fragments.iter().any(|f| f.kind == FragmentKind::Store));
        // The DA partition loads the filtered vector and the host param,
        // then stores the classification to the host.
        assert!(da.fragments.iter().filter(|f| f.kind == FragmentKind::Load).count() >= 2);
        assert!(da.fragments.iter().any(|f| f.kind == FragmentKind::Store));
        assert!(dsp.dma_bytes() > 0);
    }

    #[test]
    fn rejects_unlowered_graph() {
        let g = two_domain_graph();
        let t = targets();
        assert!(compile_program(&g, &t).is_err());
    }

    #[test]
    fn single_domain_program_has_one_accel_partition() {
        let prog = pmlang::parse(
            "main(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i] + 1.0; }",
        )
        .unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let t = TargetMap::host_only(host);
        let compiled = compile_program(&g, &t).unwrap();
        assert_eq!(compiled.partitions.len(), 1);
        assert_eq!(compiled.partitions[0].target, "CPU");
        // Host partition needs no DMA fragments.
        assert_eq!(compiled.partitions[0].dma_bytes(), 0);
    }

    #[test]
    fn fragment_args_carry_modifiers_and_shapes() {
        let prog = pmlang::parse(
            "main(input float x[4], state float s[4], output float y[4]) {
                 index i[0:3];
                 s[i] = s[i] + x[i];
                 y[i] = s[i];
             }",
        )
        .unwrap();
        let g = srdfg::build(&prog, &srdfg::Bindings::default()).unwrap();
        let host = AcceleratorSpec::general_purpose("CPU", Domain::DataAnalytics);
        let t = TargetMap::host_only(host);
        let compiled = compile_program(&g, &t).unwrap();
        let frags = &compiled.partitions[0].fragments;
        let add = frags.iter().find(|f| f.op == "map.add").expect("add fragment");
        assert!(add.inputs.iter().any(|a| a.modifier() == Modifier::State && a.shape() == [4]));
    }
}
