//! Pretty-printer: renders an AST back to PMLang source.
//!
//! The printer is precedence-aware (it inserts only the parentheses the
//! grammar needs) and round-trips: for any program `p`,
//! `parse(print(p))` succeeds and prints identically — pinned by the
//! `roundtrip` tests and used by tooling that rewrites programs.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for r in &prog.reductions {
        let _ =
            writeln!(out, "reduction {}({}, {}) = {};", r.name, r.acc, r.elem, print_expr(&r.body));
    }
    for c in &prog.components {
        out.push_str(&print_component(c));
    }
    out
}

/// Renders one component.
pub fn print_component(c: &Component) -> String {
    let mut out = String::new();
    let args: Vec<String> = c
        .args
        .iter()
        .map(|a| {
            let dims: String = a.dims.iter().map(|d| format!("[{}]", print_expr(d))).collect();
            format!("{} {} {}{}", a.modifier, a.dtype, a.name, dims)
        })
        .collect();
    let _ = writeln!(out, "{}({}) {{", c.name, args.join(", "));
    for stmt in &c.body {
        let _ = writeln!(out, "    {}", print_stmt(stmt));
    }
    out.push_str("}\n");
    out
}

/// Renders one statement (without trailing newline).
pub fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::IndexDecl { specs, .. } => {
            let parts: Vec<String> = specs
                .iter()
                .map(|s| format!("{}[{}:{}]", s.name, print_expr(&s.lo), print_expr(&s.hi)))
                .collect();
            format!("index {};", parts.join(", "))
        }
        Stmt::VarDecl { dtype, vars, .. } => {
            let parts: Vec<String> = vars
                .iter()
                .map(|(name, dims)| {
                    let dims: String =
                        dims.iter().map(|d| format!("[{}]", print_expr(d))).collect();
                    format!("{name}{dims}")
                })
                .collect();
            format!("{dtype} {};", parts.join(", "))
        }
        Stmt::Assign { domain, target, indices, value, .. } => {
            let prefix = domain.map(|d| format!("{}: ", d.keyword())).unwrap_or_default();
            let ix: String = indices.iter().map(|i| format!("[{}]", print_expr(i))).collect();
            format!("{prefix}{target}{ix} = {};", print_expr(value))
        }
        Stmt::Instantiate { domain, component, args, .. } => {
            let prefix = domain.map(|d| format!("{}: ", d.keyword())).unwrap_or_default();
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{prefix}{component}({});", args.join(", "))
        }
    }
}

/// Binding strength of each operator level (higher binds tighter).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        BinOp::Pow => 7,
    }
}

/// Renders an expression with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn print_prec(e: &Expr, parent: u8) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            // Keep the float/int distinction on reparse.
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        ExprKind::StrLit(s) => format!("{s:?}"),
        ExprKind::Var(name) => name.clone(),
        ExprKind::Access { name, indices } => {
            let ix: String = indices.iter().map(|i| format!("[{}]", print_expr(i))).collect();
            format!("{name}{ix}")
        }
        ExprKind::Unary { op, operand } => {
            let body = print_prec(operand, 8);
            let text = format!("{op}{body}");
            if parent > 7 {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let prec = precedence(*op);
            // Left-associative levels need the right child one notch
            // tighter; `^` is right-associative, so mirror it.
            let (lp, rp) = if *op == BinOp::Pow { (prec + 1, prec) } else { (prec, prec + 1) };
            let text = format!("{} {op} {}", print_prec(lhs, lp), print_prec(rhs, rp));
            if prec < parent {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::Ternary { cond, then, otherwise } => {
            let text = format!(
                "{} ? {} : {}",
                print_prec(cond, 1),
                print_expr(then),
                print_prec(otherwise, 0)
            );
            if parent > 0 {
                format!("({text})")
            } else {
                text
            }
        }
        ExprKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        ExprKind::Reduce { op, iters, body } => {
            let iters: String = iters
                .iter()
                .map(|it| match &it.cond {
                    Some(c) => format!("[{}: {}]", it.index, print_expr(c)),
                    None => format!("[{}]", it.index),
                })
                .collect();
            format!("{op}{iters}({})", print_expr(body))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// `print ∘ parse` is idempotent: printing, reparsing, and printing
    /// again yields the same text.
    fn assert_roundtrip(src: &str) {
        let prog = parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let printed = print_program(&prog);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = print_program(&reparsed);
        assert_eq!(printed, reprinted, "printer not a fixpoint");
        crate::sema::check(&reparsed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    }

    #[test]
    fn roundtrips_the_paper_mpc() {
        assert_roundtrip(
            "predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                                param float P[c][a], param float H[c][b],
                                output float pred[c]) {
                 index i[0:a-1], j[0:b-1], k[0:c-1];
                 pred[k] = sum[i](P[k][i]*pos[i]);
                 pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
             }
             main(input float pos[3], state float ctrl_mdl[20],
                  param float P[30][3], param float H[30][20],
                  output float sgnl[2]) {
                 index j[0:1];
                 float pred[30];
                 RBT: predict_trajectory(pos, ctrl_mdl, P, H, pred);
                 sgnl[j] = ctrl_mdl[10*j];
             }",
        );
    }

    #[test]
    fn roundtrips_reductions_and_conditionals() {
        assert_roundtrip(
            "reduction mn(a, b) = a < b ? a : b;
             main(input float A[4][4], output float res, output float m) {
                 index i[0:3], j[0:3];
                 res = sum[i][j: j != i](A[i][j]);
                 GA: m = mn[i](A[i][i]);
             }",
        );
    }

    #[test]
    fn precedence_parentheses_are_minimal_but_sufficient() {
        let cases = [
            ("y = a * (b + c);", "a * (b + c)"),
            ("y = a * b + c;", "a * b + c"),
            ("y = (a + b) * (c - d);", "(a + b) * (c - d)"),
            ("y = a - (b - c);", "a - (b - c)"),
            ("y = a - b - c;", "a - b - c"),
            ("y = 2.0 ^ b ^ c;", "2.0 ^ b ^ c"),
            ("y = (2.0 ^ b) ^ c;", "(2.0 ^ b) ^ c"),
            ("y = -(a + b);", "-(a + b)"),
            ("y = a < b && c > d ? a : b;", "a < b && c > d ? a : b"),
            ("y = (a > 0.0 ? a : b) * c;", "(a > 0.0 ? a : b) * c"),
        ];
        for (stmt_src, expect) in cases {
            let src = format!(
                "main(input float a, input float b, input float c, input float d,
                      output float y) {{ {stmt_src} }}"
            );
            let prog = parse(&src).unwrap();
            let crate::ast::Stmt::Assign { value, .. } = &prog.components[0].body[0] else {
                panic!()
            };
            assert_eq!(print_expr(value), expect, "for `{stmt_src}`");
            // And the rendering reparses to the same tree shape.
            assert_roundtrip(&src);
        }
    }

    #[test]
    fn float_literals_stay_floats() {
        let src = "main(input float x, output float y) { y = x * 2.0 + 3.5; }";
        let prog = parse(src).unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("2.0"), "{printed}");
        assert!(printed.contains("3.5"), "{printed}");
    }

    #[test]
    fn roundtrips_every_workload_source() {
        // Smoke: the printer handles real-sized generated programs too.
        let sources = [
            "main(input complex x[8], output complex X[8]) {
                 index i[0:7];
                 complex s0[8];
                 s0[i] = x[bitrev(i, 3)];
                 DSP: X[i] = s0[(i - i % 2) + (i % 1)]
                     + (1.0 - 2.0*floor((i % 2)/1.0))
                     * complex(cos(0.0 - 2.0*pi()*(i % 1)/2.0), sin(0.0)) * s0[i];
             }",
            "reduction mn(a, b) = a < b ? a : b;
             main(input float A[4], output float m) {
                 index i[0:3];
                 m = mn[i](A[i]);
             }",
        ];
        for src in sources {
            assert_roundtrip(src);
        }
    }
}
