//! Hand-written lexer for PMLang.
//!
//! PMLang's lexical grammar is a small C-like token set: identifiers,
//! integer/float/string literals, punctuation, and `//` line comments.

use crate::error::LexError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` into a token vector ending with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on unexpected characters, malformed numeric
/// literals, or unterminated string literals.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, span: Span::new(start, start, line, col) });
                return Ok(out);
            };
            let kind = match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'0'..=b'9' => self.number()?,
                b'"' => self.string()?,
                _ => self.punct()?,
            };
            out.push(Token { kind, span: Span::new(start, self.pos, line, col) });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()))
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                // A `.` is part of the number only when followed by a digit,
                // so ranges like `0:n` and member-free syntax stay unambiguous.
                b'.' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    // Exponent: `e`, optional sign, then digits.
                    let next = self.peek2();
                    let after_sign = self.bytes.get(self.pos + 2).copied();
                    let exp_ok = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => after_sign.is_some_and(|d| d.is_ascii_digit()),
                        _ => false,
                    };
                    if !exp_ok {
                        break;
                    }
                    is_float = true;
                    self.bump(); // e
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                    while self.peek().is_some_and(|d| d.is_ascii_digit()) {
                        self.bump();
                    }
                    break;
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>().map(TokenKind::Float).map_err(|_| LexError {
                message: format!("malformed float literal `{text}`"),
                span: Span::new(start, self.pos, line, col),
            })
        } else {
            text.parse::<i64>().map(TokenKind::Int).map_err(|_| LexError {
                message: format!("integer literal `{text}` out of range"),
                span: Span::new(start, self.pos, line, col),
            })
        }
    }

    fn string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Str(value)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    other => {
                        return Err(LexError {
                            message: format!(
                                "unknown escape sequence `\\{}`",
                                other.map(|c| c as char).unwrap_or(' ')
                            ),
                            span: Span::new(start, self.pos, line, col),
                        })
                    }
                },
                Some(c) => value.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        span: Span::new(start, self.pos, line, col),
                    })
                }
            }
        }
    }

    fn punct(&mut self) -> Result<TokenKind, LexError> {
        let (line, col) = (self.line, self.col);
        let start = self.pos;
        let c = self.bump().expect("punct called at end of input");
        let two = |lexer: &mut Lexer<'a>, kind: TokenKind| {
            lexer.bump();
            kind
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'?' => TokenKind::Question,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'^' => TokenKind::Caret,
            b'=' if self.peek() == Some(b'=') => two(self, TokenKind::EqEq),
            b'=' => TokenKind::Assign,
            b'!' if self.peek() == Some(b'=') => two(self, TokenKind::NotEq),
            b'!' => TokenKind::Not,
            b'<' if self.peek() == Some(b'=') => two(self, TokenKind::Le),
            b'<' => TokenKind::Lt,
            b'>' if self.peek() == Some(b'=') => two(self, TokenKind::Ge),
            b'>' => TokenKind::Gt,
            b'&' if self.peek() == Some(b'&') => two(self, TokenKind::AndAnd),
            b'|' if self.peek() == Some(b'|') => two(self, TokenKind::OrOr),
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    span: Span::new(start, self.pos, line, col),
                })
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_component_header() {
        use TokenKind::*;
        assert_eq!(
            kinds("mvmul(input float A[m][n])"),
            vec![
                Ident("mvmul".into()),
                LParen,
                Input,
                FloatTy,
                Ident("A".into()),
                LBracket,
                Ident("m".into()),
                RBracket,
                LBracket,
                Ident("n".into()),
                RBracket,
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_index_statement() {
        use TokenKind::*;
        assert_eq!(
            kinds("index i[0:n-1];"),
            vec![
                Index,
                Ident("i".into()),
                LBracket,
                Int(0),
                Colon,
                Ident("n".into()),
                Minus,
                Int(1),
                RBracket,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("3 2.5 1e3 1.5e-2"),
            vec![Int(3), Float(2.5), Float(1e3), Float(1.5e-2), Eof]
        );
    }

    #[test]
    fn range_colon_not_confused_with_float() {
        use TokenKind::*;
        assert_eq!(kinds("0:9"), vec![Int(0), Colon, Int(9), Eof]);
    }

    #[test]
    fn lexes_comparison_and_logic() {
        use TokenKind::*;
        assert_eq!(
            kinds("a == b != c <= d >= e && f || !g"),
            vec![
                Ident("a".into()),
                EqEq,
                Ident("b".into()),
                NotEq,
                Ident("c".into()),
                Le,
                Ident("d".into()),
                Ge,
                Ident("e".into()),
                AndAnd,
                Ident("f".into()),
                OrOr,
                Not,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        use TokenKind::*;
        assert_eq!(kinds("a // comment\nb"), vec![Ident("a".into()), Ident("b".into()), Eof]);
    }

    #[test]
    fn ternary_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("a < b ? a : b"),
            vec![
                Ident("a".into()),
                Lt,
                Ident("b".into()),
                Question,
                Ident("a".into()),
                Colon,
                Ident("b".into()),
                Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        use TokenKind::*;
        assert_eq!(kinds(r#""hi\n""#), vec![Str("hi\n".into()), Eof]);
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
    }

    #[test]
    fn rejects_unexpected_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'), "{}", err.message);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn keywords_are_not_identifiers() {
        use TokenKind::*;
        assert_eq!(kinds("input state param output"), vec![Input, State, Param, Output, Eof]);
    }

    #[test]
    fn single_ampersand_is_error() {
        assert!(lex("a & b").is_err());
    }
}
