//! # PMLang — the PolyMath Cross-Domain Language frontend
//!
//! PMLang is the high-level language of the PolyMath stack ("A Computational
//! Stack for Cross-Domain Acceleration", HPCA 2021). It encapsulates the
//! mathematical properties shared by Robotics, Graph Analytics, DSP, Data
//! Analytics, and Deep Learning: operations over multi-dimensional data with
//! index variables rather than loops, reusable *components* with
//! `input`/`output`/`state`/`param` type modifiers, built-in and custom group
//! reductions, and per-instantiation *domain annotations*.
//!
//! This crate provides the textual frontend: lexer, parser, AST, built-in
//! intrinsics, and semantic analysis. The sibling `srdfg` crate turns checked
//! programs into the simultaneous-recursive dataflow-graph IR.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), pmlang::FrontendError> {
//! let source = "
//!     mvmul(input float A[m][n], input float B[n], output float C[m]) {
//!         index i[0:n-1], j[0:m-1];
//!         C[j] = sum[i](A[j][i]*B[i]);
//!     }
//!     main(input float x[4], param float W[3][4], output float y[3]) {
//!         DA: mvmul(W, x, y);
//!     }
//! ";
//! let program = pmlang::parse(source)?;
//! let info = pmlang::check(&program)?;
//! assert_eq!(info.components["mvmul"].size_params, vec!["m", "n"]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod intrinsics;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{
    ArgDecl, BinOp, Component, DType, Domain, Expr, ExprKind, IndexSpec, Program, ReduceIter,
    ReductionDef, Stmt, TypeModifier, UnOp,
};
pub use error::{FrontendError, LexError, ParseError, SemaError};
pub use intrinsics::{BuiltinReduction, ScalarFunc};
pub use parser::parse;
pub use printer::print_program;
pub use sema::{check, ComponentInfo, ProgramInfo};
pub use span::Span;

/// Parses and semantically checks a PMLang program in one step.
///
/// # Errors
///
/// Returns a [`FrontendError`] wrapping the first lexical, syntactic, or
/// semantic problem found.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pmlang::FrontendError> {
/// let (program, info) =
///     pmlang::frontend("main(input float x, output float y) { y = 2.0 * x; }")?;
/// assert!(program.main().is_some());
/// assert!(info.components.contains_key("main"));
/// # Ok(())
/// # }
/// ```
pub fn frontend(source: &str) -> Result<(Program, ProgramInfo), FrontendError> {
    let program = parse(source)?;
    let info = check(&program)?;
    Ok((program, info))
}

#[cfg(test)]
mod tests {
    #[test]
    fn frontend_combines_parse_and_check() {
        let (prog, info) =
            super::frontend("main(input float x, output float y) { y = x + 1.0; }").unwrap();
        assert_eq!(prog.components.len(), 1);
        assert_eq!(info.components.len(), 1);
    }

    #[test]
    fn frontend_propagates_parse_errors() {
        assert!(matches!(super::frontend("main(").unwrap_err(), super::FrontendError::Parse(_)));
    }

    #[test]
    fn frontend_propagates_sema_errors() {
        assert!(matches!(
            super::frontend("main(input float x, output float y) { y = q; }").unwrap_err(),
            super::FrontendError::Sema(_)
        ));
    }
}
