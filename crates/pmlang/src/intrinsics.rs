//! Built-in scalar functions and group reductions of PMLang.
//!
//! The paper (§II.C) equips PMLang with nonlinear operations commonly used
//! across its five domains (sine/cosine for DSP and robotics, gaussian,
//! sigmoid/ReLU for learning, …) plus built-in group reductions (`sum`,
//! `prod`, `max`, …) and user-defined custom reductions.

use std::fmt;

/// A built-in scalar function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `ln(x)` — natural logarithm.
    Ln,
    /// `log2(x)`
    Log2,
    /// `abs(x)`
    Abs,
    /// `sigmoid(x)` = 1 / (1 + e^-x)
    Sigmoid,
    /// `relu(x)` = max(0, x)
    Relu,
    /// `tanh(x)`
    Tanh,
    /// `gaussian(x)` = e^(-x²/2) / √(2π) — the standard normal density.
    Gaussian,
    /// `erf(x)` — error function (Abramowitz–Stegun approximation).
    Erf,
    /// `phi(x)` — standard normal CDF, used by Black-Scholes.
    Phi,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `sign(x)` ∈ {-1, 0, 1}
    Sign,
    /// `pow(x, y)` = x^y
    Pow,
    /// `min2(x, y)` — binary minimum.
    Min2,
    /// `max2(x, y)` — binary maximum.
    Max2,
    /// `bitrev(i, bits)` — bit-reversal of integer `i` over `bits` bits
    /// (FFT index permutation).
    Bitrev,
    /// `complex(re, im)` — constructs a complex number.
    Complex,
    /// `creal(z)` — real part.
    CReal,
    /// `cimag(z)` — imaginary part.
    CImag,
    /// `pi()` — the constant π.
    Pi,
}

impl ScalarFunc {
    /// Looks up a built-in function by its PMLang name.
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        use ScalarFunc::*;
        Some(match name {
            "sin" => Sin,
            "cos" => Cos,
            "tan" => Tan,
            "sqrt" => Sqrt,
            "exp" => Exp,
            "ln" => Ln,
            "log2" => Log2,
            "abs" => Abs,
            "sigmoid" => Sigmoid,
            "relu" => Relu,
            "tanh" => Tanh,
            "gaussian" => Gaussian,
            "erf" => Erf,
            "phi" => Phi,
            "floor" => Floor,
            "ceil" => Ceil,
            "sign" => Sign,
            "pow" => Pow,
            "min2" => Min2,
            "max2" => Max2,
            "bitrev" => Bitrev,
            "complex" => Complex,
            "creal" => CReal,
            "cimag" => CImag,
            "pi" => Pi,
            _ => return None,
        })
    }

    /// The PMLang surface name.
    pub fn name(&self) -> &'static str {
        use ScalarFunc::*;
        match self {
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Sqrt => "sqrt",
            Exp => "exp",
            Ln => "ln",
            Log2 => "log2",
            Abs => "abs",
            Sigmoid => "sigmoid",
            Relu => "relu",
            Tanh => "tanh",
            Gaussian => "gaussian",
            Erf => "erf",
            Phi => "phi",
            Floor => "floor",
            Ceil => "ceil",
            Sign => "sign",
            Pow => "pow",
            Min2 => "min2",
            Max2 => "max2",
            Bitrev => "bitrev",
            Complex => "complex",
            CReal => "creal",
            CImag => "cimag",
            Pi => "pi",
        }
    }

    /// Number of arguments the function takes.
    pub fn arity(&self) -> usize {
        use ScalarFunc::*;
        match self {
            Pi => 0,
            Pow | Min2 | Max2 | Bitrev | Complex => 2,
            _ => 1,
        }
    }

    /// Evaluates the function on real arguments.
    ///
    /// Complex-valued builtins (`complex`, `creal`, `cimag`) are handled
    /// by the interpreter's value layer; this path treats their inputs as
    /// reals (`complex(re, im)` has no real-only meaning and returns `re`).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`.
    pub fn eval_real(&self, args: &[f64]) -> f64 {
        assert_eq!(args.len(), self.arity(), "{} expects {} args", self.name(), self.arity());
        use ScalarFunc::*;
        match self {
            Sin => args[0].sin(),
            Cos => args[0].cos(),
            Tan => args[0].tan(),
            Sqrt => args[0].sqrt(),
            Exp => args[0].exp(),
            Ln => args[0].ln(),
            Log2 => args[0].log2(),
            Abs => args[0].abs(),
            Sigmoid => 1.0 / (1.0 + (-args[0]).exp()),
            Relu => args[0].max(0.0),
            Tanh => args[0].tanh(),
            Gaussian => (-args[0] * args[0] / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt(),
            Erf => erf(args[0]),
            Phi => 0.5 * (1.0 + erf(args[0] / std::f64::consts::SQRT_2)),
            Floor => args[0].floor(),
            Ceil => args[0].ceil(),
            Sign => {
                if args[0] > 0.0 {
                    1.0
                } else if args[0] < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Pow => args[0].powf(args[1]),
            Min2 => args[0].min(args[1]),
            Max2 => args[0].max(args[1]),
            Bitrev => bitrev(args[0] as u64, args[1] as u32) as f64,
            Complex => args[0],
            CReal => args[0],
            CImag => 0.0,
            Pi => std::f64::consts::PI,
        }
    }

    /// True for functions a dedicated nonlinear unit would implement on an
    /// accelerator (used by accelerator operation tables).
    pub fn is_nonlinear(&self) -> bool {
        use ScalarFunc::*;
        matches!(
            self,
            Sin | Cos
                | Tan
                | Sqrt
                | Exp
                | Ln
                | Log2
                | Sigmoid
                | Relu
                | Tanh
                | Gaussian
                | Erf
                | Phi
                | Pow
        )
    }
}

impl fmt::Display for ScalarFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bit-reverses the low `bits` bits of `v` (FFT index permutation).
pub fn bitrev(v: u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    v.reverse_bits() >> (64 - bits)
}

/// Error function via the Abramowitz–Stegun 7.1.26 approximation
/// (max absolute error ≈ 1.5e-7, ample for our workloads).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A built-in group reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinReduction {
    /// `sum` — Σ
    Sum,
    /// `prod` — Π
    Prod,
    /// `max`
    Max,
    /// `min`
    Min,
    /// `argmax` — index (row-major position in the iteration space) of the max.
    Argmax,
    /// `argmin` — index of the min.
    Argmin,
    /// `any` — logical OR over `bin` values.
    Any,
    /// `all` — logical AND over `bin` values.
    All,
}

impl BuiltinReduction {
    /// Looks up a built-in reduction by name.
    pub fn by_name(name: &str) -> Option<BuiltinReduction> {
        use BuiltinReduction::*;
        Some(match name {
            "sum" => Sum,
            "prod" => Prod,
            "max" => Max,
            "min" => Min,
            "argmax" => Argmax,
            "argmin" => Argmin,
            "any" => Any,
            "all" => All,
            _ => return None,
        })
    }

    /// The PMLang surface name.
    pub fn name(&self) -> &'static str {
        use BuiltinReduction::*;
        match self {
            Sum => "sum",
            Prod => "prod",
            Max => "max",
            Min => "min",
            Argmax => "argmax",
            Argmin => "argmin",
            Any => "any",
            All => "all",
        }
    }

    /// The identity element for an empty iteration space.
    pub fn identity(&self) -> f64 {
        use BuiltinReduction::*;
        match self {
            Sum | Any => 0.0,
            Prod => 1.0,
            All => 1.0,
            Max | Argmax => f64::NEG_INFINITY,
            Min | Argmin => f64::INFINITY,
            // For arg-reductions the identity is the comparison seed; the
            // result index defaults to 0 on an empty space.
        }
    }

    /// Combines an accumulator with a new element (for non-arg reductions).
    pub fn combine(&self, acc: f64, elem: f64) -> f64 {
        use BuiltinReduction::*;
        match self {
            Sum => acc + elem,
            Prod => acc * elem,
            Max | Argmax => acc.max(elem),
            Min | Argmin => acc.min(elem),
            Any => {
                if acc != 0.0 || elem != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            All => {
                if acc != 0.0 && elem != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// True for `argmax`/`argmin`, which produce an index rather than a value.
    pub fn is_arg(&self) -> bool {
        matches!(self, BuiltinReduction::Argmax | BuiltinReduction::Argmin)
    }
}

impl fmt::Display for BuiltinReduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for f in [
            ScalarFunc::Sin,
            ScalarFunc::Sigmoid,
            ScalarFunc::Gaussian,
            ScalarFunc::Bitrev,
            ScalarFunc::Pi,
        ] {
            assert_eq!(ScalarFunc::by_name(f.name()), Some(f));
        }
        assert_eq!(ScalarFunc::by_name("fused_madd"), None);
        for r in [BuiltinReduction::Sum, BuiltinReduction::Argmin, BuiltinReduction::All] {
            assert_eq!(BuiltinReduction::by_name(r.name()), Some(r));
        }
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let s = |x: f64| ScalarFunc::Sigmoid.eval_real(&[x]);
        assert!(s(-50.0) < 1e-10);
        assert!((s(0.0) - 0.5).abs() < 1e-12);
        assert!(s(50.0) > 1.0 - 1e-10);
        assert!(s(1.0) > s(0.5));
    }

    #[test]
    fn gaussian_peak_at_zero() {
        let g = |x: f64| ScalarFunc::Gaussian.eval_real(&[x]);
        assert!((g(0.0) - 0.3989422804014327).abs() < 1e-12);
        assert!(g(0.0) > g(1.0));
        assert!((g(1.0) - g(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095030014).abs() < 1e-6);
    }

    #[test]
    fn phi_is_a_cdf() {
        let p = |x: f64| ScalarFunc::Phi.eval_real(&[x]);
        assert!((p(0.0) - 0.5).abs() < 1e-9);
        assert!(p(-6.0) < 1e-6);
        assert!(p(6.0) > 1.0 - 1e-6);
    }

    #[test]
    fn bitrev_examples() {
        assert_eq!(bitrev(0b001, 3), 0b100);
        assert_eq!(bitrev(0b110, 3), 0b011);
        assert_eq!(bitrev(1, 13), 1 << 12);
        assert_eq!(bitrev(0, 0), 0);
        // Involution: reversing twice is the identity.
        for v in 0..64u64 {
            assert_eq!(bitrev(bitrev(v, 6), 6), v);
        }
    }

    #[test]
    fn reduction_identities() {
        assert_eq!(BuiltinReduction::Sum.identity(), 0.0);
        assert_eq!(BuiltinReduction::Prod.identity(), 1.0);
        assert_eq!(BuiltinReduction::Max.identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn reduction_combines() {
        assert_eq!(BuiltinReduction::Sum.combine(3.0, 4.0), 7.0);
        assert_eq!(BuiltinReduction::Prod.combine(3.0, 4.0), 12.0);
        assert_eq!(BuiltinReduction::Max.combine(3.0, 4.0), 4.0);
        assert_eq!(BuiltinReduction::Min.combine(3.0, 4.0), 3.0);
        assert_eq!(BuiltinReduction::Any.combine(0.0, 0.0), 0.0);
        assert_eq!(BuiltinReduction::Any.combine(0.0, 2.0), 1.0);
        assert_eq!(BuiltinReduction::All.combine(1.0, 0.0), 0.0);
    }

    #[test]
    fn relu_and_friends() {
        assert_eq!(ScalarFunc::Relu.eval_real(&[-2.0]), 0.0);
        assert_eq!(ScalarFunc::Relu.eval_real(&[2.0]), 2.0);
        assert_eq!(ScalarFunc::Sign.eval_real(&[-3.5]), -1.0);
        assert_eq!(ScalarFunc::Sign.eval_real(&[0.0]), 0.0);
        assert_eq!(ScalarFunc::Min2.eval_real(&[1.0, 2.0]), 1.0);
        assert_eq!(ScalarFunc::Pow.eval_real(&[2.0, 10.0]), 1024.0);
        assert!((ScalarFunc::Pi.eval_real(&[]) - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_arity_panics() {
        ScalarFunc::Sin.eval_real(&[1.0, 2.0]);
    }
}
