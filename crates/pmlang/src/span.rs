//! Source locations and spans used for error reporting throughout the
//! PMLang frontend.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string, with the
/// 1-based line/column of its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// True for placeholder spans that do not point into real source text.
    pub fn is_synthetic(&self) -> bool {
        *self == Span::default()
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// Line/column information is taken from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Extracts the source text covered by this span.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_start() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(5, 9, 2, 2);
        let m = a.merge(b);
        assert_eq!((m.start, m.end), (0, 9));
        assert_eq!((m.line, m.col), (1, 1));
        let m2 = b.merge(a);
        assert_eq!((m2.start, m2.end), (0, 9));
        assert_eq!((m2.line, m2.col), (1, 1));
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        let s = Span::new(6, 11, 1, 7);
        assert_eq!(s.slice(src), "world");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        let s = Span::new(3, 100, 1, 4);
        assert_eq!(s.slice("abc"), "");
    }

    #[test]
    fn display_shows_line_col() {
        assert_eq!(Span::new(0, 1, 4, 7).to_string(), "4:7");
    }
}
