//! Token definitions for the PMLang lexer.

use crate::span::Span;
use std::fmt;

/// The lexical categories of PMLang.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier or keyword candidate, e.g. `mvmul`, `pos_ref`.
    Ident(String),
    /// An integer literal, e.g. `1024`.
    Int(i64),
    /// A floating-point literal, e.g. `0.5`, `1e-3`.
    Float(f64),
    /// A string literal, e.g. `"label"`.
    Str(String),

    // Keywords.
    /// `index`
    Index,
    /// `reduction`
    Reduction,
    /// Type modifier `input`.
    Input,
    /// Type modifier `output`.
    Output,
    /// Type modifier `state`.
    State,
    /// Type modifier `param`.
    Param,
    /// Data type `bin`.
    Bin,
    /// Data type `int`.
    IntTy,
    /// Data type `float`.
    FloatTy,
    /// Data type `str`.
    StrTy,
    /// Data type `complex`.
    ComplexTy,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a PMLang keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "index" => TokenKind::Index,
            "reduction" => TokenKind::Reduction,
            "input" => TokenKind::Input,
            "output" => TokenKind::Output,
            "state" => TokenKind::State,
            "param" => TokenKind::Param,
            "bin" => TokenKind::Bin,
            "int" => TokenKind::IntTy,
            "float" => TokenKind::FloatTy,
            "str" => TokenKind::StrTy,
            "complex" => TokenKind::ComplexTy,
            _ => return None,
        })
    }

    /// True if this token starts a type-modifier (`input`/`output`/`state`/`param`).
    pub fn is_modifier(&self) -> bool {
        matches!(self, TokenKind::Input | TokenKind::Output | TokenKind::State | TokenKind::Param)
    }

    /// True if this token names a data type.
    pub fn is_dtype(&self) -> bool {
        matches!(
            self,
            TokenKind::Bin
                | TokenKind::IntTy
                | TokenKind::FloatTy
                | TokenKind::StrTy
                | TokenKind::ComplexTy
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Int(v) => write!(f, "integer `{v}`"),
            Float(v) => write!(f, "float `{v}`"),
            Str(s) => write!(f, "string {s:?}"),
            Index => f.write_str("`index`"),
            Reduction => f.write_str("`reduction`"),
            Input => f.write_str("`input`"),
            Output => f.write_str("`output`"),
            State => f.write_str("`state`"),
            Param => f.write_str("`param`"),
            Bin => f.write_str("`bin`"),
            IntTy => f.write_str("`int`"),
            FloatTy => f.write_str("`float`"),
            StrTy => f.write_str("`str`"),
            ComplexTy => f.write_str("`complex`"),
            LParen => f.write_str("`(`"),
            RParen => f.write_str("`)`"),
            LBracket => f.write_str("`[`"),
            RBracket => f.write_str("`]`"),
            LBrace => f.write_str("`{`"),
            RBrace => f.write_str("`}`"),
            Comma => f.write_str("`,`"),
            Semi => f.write_str("`;`"),
            Colon => f.write_str("`:`"),
            Question => f.write_str("`?`"),
            Assign => f.write_str("`=`"),
            Plus => f.write_str("`+`"),
            Minus => f.write_str("`-`"),
            Star => f.write_str("`*`"),
            Slash => f.write_str("`/`"),
            Percent => f.write_str("`%`"),
            Caret => f.write_str("`^`"),
            EqEq => f.write_str("`==`"),
            NotEq => f.write_str("`!=`"),
            Lt => f.write_str("`<`"),
            Le => f.write_str("`<=`"),
            Gt => f.write_str("`>`"),
            Ge => f.write_str("`>=`"),
            AndAnd => f.write_str("`&&`"),
            OrOr => f.write_str("`||`"),
            Not => f.write_str("`!`"),
            Eof => f.write_str("end of input"),
        }
    }
}

/// A lexed token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Lexical category and payload.
    pub kind: TokenKind,
    /// Location in the source text.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("index"), Some(TokenKind::Index));
        assert_eq!(TokenKind::keyword("float"), Some(TokenKind::FloatTy));
        assert_eq!(TokenKind::keyword("mvmul"), None);
    }

    #[test]
    fn modifier_and_dtype_predicates() {
        assert!(TokenKind::Input.is_modifier());
        assert!(TokenKind::Param.is_modifier());
        assert!(!TokenKind::FloatTy.is_modifier());
        assert!(TokenKind::FloatTy.is_dtype());
        assert!(TokenKind::ComplexTy.is_dtype());
        assert!(!TokenKind::Index.is_dtype());
    }

    #[test]
    fn display_is_nonempty() {
        for k in [TokenKind::Ident("x".into()), TokenKind::Int(3), TokenKind::EqEq, TokenKind::Eof]
        {
            assert!(!k.to_string().is_empty());
        }
    }
}
