//! Abstract syntax tree for PMLang.
//!
//! The AST mirrors the paper's language constructs: *components* with
//! type-modified arguments, *index variables*, mathematical statements with
//! group reductions and Boolean index conditionals, *custom reductions*,
//! and *domain annotations* on component instantiations.

use crate::span::Span;
use std::fmt;

/// PMLang data types (paper Table I: `bin`, `int`, `float`, `str`, `complex`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Boolean (`bin`).
    Bool,
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// String (`str`) — only used for labels/configuration.
    Str,
    /// Complex number with `f64` components (`complex`).
    Complex,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::Bool => "bin",
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Complex => "complex",
        })
    }
}

/// Argument type modifiers (paper §II.A): how a component uses an argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeModifier {
    /// Read-only flow of data into the component, used once and discarded.
    Input,
    /// Write-only flow of data out of the component.
    Output,
    /// Read/write data preserved across invocations (e.g. an ML model).
    State,
    /// Constant used to parameterize the component.
    Param,
}

impl fmt::Display for TypeModifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeModifier::Input => "input",
            TypeModifier::Output => "output",
            TypeModifier::State => "state",
            TypeModifier::Param => "param",
        })
    }
}

/// The five PolyMath target domains (paper §II.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// `RBT` — Robotics / control theory.
    Robotics,
    /// `GA` — Graph analytics.
    GraphAnalytics,
    /// `DSP` — Digital signal processing.
    Dsp,
    /// `DA` — Data analytics / classical ML.
    DataAnalytics,
    /// `DL` — Deep learning.
    DeepLearning,
}

impl Domain {
    /// Parses a domain annotation keyword (`RBT`, `GA`, `DSP`, `DA`, `DL`).
    pub fn from_keyword(word: &str) -> Option<Domain> {
        Some(match word {
            "RBT" => Domain::Robotics,
            "GA" => Domain::GraphAnalytics,
            "DSP" => Domain::Dsp,
            "DA" => Domain::DataAnalytics,
            "DL" => Domain::DeepLearning,
            _ => return None,
        })
    }

    /// The annotation keyword for this domain.
    pub fn keyword(&self) -> &'static str {
        match self {
            Domain::Robotics => "RBT",
            Domain::GraphAnalytics => "GA",
            Domain::Dsp => "DSP",
            Domain::DataAnalytics => "DA",
            Domain::DeepLearning => "DL",
        }
    }

    /// All five domains, in the paper's order.
    pub fn all() -> [Domain; 5] {
        [
            Domain::Robotics,
            Domain::GraphAnalytics,
            Domain::Dsp,
            Domain::DataAnalytics,
            Domain::DeepLearning,
        ]
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Domain::Robotics => "Robotics",
            Domain::GraphAnalytics => "Graph Analytics",
            Domain::Dsp => "DSP",
            Domain::DataAnalytics => "Data Analytics",
            Domain::DeepLearning => "Deep Learning",
        })
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^` (power)
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for comparison operators (result type is `bin`).
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for logical operators (`&&`, `||`).
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The operator's surface syntax.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's structure.
    pub kind: ExprKind,
    /// Location in the source text.
    pub span: Span,
}

impl Expr {
    /// Wraps `kind` with `span`.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor for an integer literal with a synthetic span.
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::IntLit(v), Span::synthetic())
    }

    /// Convenience constructor for a variable reference with a synthetic span.
    pub fn var(name: &str) -> Self {
        Expr::new(ExprKind::Var(name.to_string()), Span::synthetic())
    }
}

/// One iteration axis of a group reduction, e.g. the `[j: j != i]` in
/// `sum[i][j: j != i](A[i][j])`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceIter {
    /// The index variable iterated over.
    pub index: String,
    /// Optional Boolean condition filtering the iteration.
    pub cond: Option<Expr>,
    /// Source span of the bracket group.
    pub span: Span,
}

/// Expression structure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// String literal.
    StrLit(String),
    /// Reference to a scalar variable or index variable.
    Var(String),
    /// Indexed access, `A[i][j]` or `ctrl_prev[(i+1)*h]`.
    Access {
        /// Variable being indexed.
        name: String,
        /// One index expression per dimension.
        indices: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `cond ? then : else`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// Call of a built-in scalar function, e.g. `sigmoid(x)`, `complex(a, b)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Group reduction, e.g. `sum[i][j: j != i](A[i][j])`. `op` may be a
    /// built-in (`sum`, `prod`, `max`, `min`, `argmax`, `argmin`) or a custom
    /// reduction declared with `reduction name(a, b) = ...;`.
    Reduce {
        /// Reduction operator name.
        op: String,
        /// Iteration axes (with optional conditions).
        iters: Vec<ReduceIter>,
        /// The reduced expression.
        body: Box<Expr>,
    },
}

/// A single index-variable specification: `i[lo:hi]` (inclusive bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpec {
    /// Index variable name.
    pub name: String,
    /// Lower bound (inclusive), an expression over params and literals.
    pub lo: Expr,
    /// Upper bound (inclusive).
    pub hi: Expr,
    /// Source span.
    pub span: Span,
}

/// A component-body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `index i[0:n-1], j[0:m-1];`
    IndexDecl {
        /// Declared index variables.
        specs: Vec<IndexSpec>,
        /// Source span.
        span: Span,
    },
    /// Local variable declaration: `float P_g[b], H_g[b];`
    VarDecl {
        /// Element type.
        dtype: DType,
        /// Declared variables with their dimension expressions.
        vars: Vec<(String, Vec<Expr>)>,
        /// Source span.
        span: Span,
    },
    /// Assignment: `pred[k] = sum[i](P[k][i]*pos[i]);`, optionally
    /// domain-annotated (`GA: lvl[v] = ...;`).
    Assign {
        /// Optional domain annotation.
        domain: Option<Domain>,
        /// Target variable name.
        target: String,
        /// Index expressions on the left-hand side (free indices).
        indices: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// Component instantiation, optionally domain-annotated:
    /// `RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);`
    Instantiate {
        /// Optional domain annotation.
        domain: Option<Domain>,
        /// Component name.
        component: String,
        /// Positional arguments (the callee's signature decides direction).
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::IndexDecl { span, .. }
            | Stmt::VarDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Instantiate { span, .. } => *span,
        }
    }
}

/// A component argument declaration, e.g. `input float pos[a]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgDecl {
    /// How the component uses this argument.
    pub modifier: TypeModifier,
    /// Element type.
    pub dtype: DType,
    /// Argument name.
    pub name: String,
    /// Dimension expressions (empty for scalars). Identifiers appearing here
    /// that are not otherwise bound become implicit size parameters.
    pub dims: Vec<Expr>,
    /// Source span.
    pub span: Span,
}

/// A reusable execution block (paper §II.A).
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name. The entry point must be named `main`.
    pub name: String,
    /// Arguments with type modifiers.
    pub args: Vec<ArgDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source span of the whole component.
    pub span: Span,
}

impl Component {
    /// Returns the argument declaration named `name`, if any.
    pub fn arg(&self, name: &str) -> Option<&ArgDecl> {
        self.args.iter().find(|a| a.name == name)
    }
}

/// A custom reduction definition: `reduction min(a, b) = a < b ? a : b;`
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionDef {
    /// Reduction name.
    pub name: String,
    /// Name of the accumulator parameter.
    pub acc: String,
    /// Name of the element parameter.
    pub elem: String,
    /// Combining expression over `acc` and `elem`.
    pub body: Expr,
    /// Source span.
    pub span: Span,
}

/// A parsed PMLang program: components plus custom reduction definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All components, in source order.
    pub components: Vec<Component>,
    /// All custom reduction definitions, in source order.
    pub reductions: Vec<ReductionDef>,
}

impl Program {
    /// Returns the component named `name`, if any.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Returns the entry component (`main`), if present.
    pub fn main(&self) -> Option<&Component> {
        self.component("main")
    }

    /// Returns the custom reduction named `name`, if any.
    pub fn reduction(&self, name: &str) -> Option<&ReductionDef> {
        self.reductions.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_keyword_roundtrip() {
        for d in Domain::all() {
            assert_eq!(Domain::from_keyword(d.keyword()), Some(d));
        }
        assert_eq!(Domain::from_keyword("ML"), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn program_lookup() {
        let comp =
            Component { name: "main".into(), args: vec![], body: vec![], span: Span::synthetic() };
        let prog = Program { components: vec![comp], reductions: vec![] };
        assert!(prog.main().is_some());
        assert!(prog.component("other").is_none());
    }

    #[test]
    fn dtype_display_matches_keywords() {
        assert_eq!(DType::Bool.to_string(), "bin");
        assert_eq!(DType::Complex.to_string(), "complex");
    }
}
