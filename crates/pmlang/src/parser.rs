//! Recursive-descent parser for PMLang.
//!
//! Grammar sketch (see `ast` for node meanings):
//!
//! ```text
//! program    := (component | reduction)*
//! reduction  := "reduction" IDENT "(" IDENT "," IDENT ")" "=" expr ";"
//! component  := IDENT "(" args? ")" "{" stmt* "}"
//! arg        := modifier dtype IDENT ("[" expr "]")*
//! stmt       := "index" spec ("," spec)* ";"
//!             | dtype decl ("," decl)* ";"
//!             | IDENT ("[" expr "]")* "=" expr ";"
//!             | (DOMAIN ":")? IDENT "(" exprs? ")" ";"
//! spec       := IDENT "[" expr ":" expr "]"
//! expr       := ternary over the usual C-like precedence ladder, plus
//!               group reductions `name[iters](body)` where each iter is
//!               `IDENT (":" expr)?`
//! ```

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses PMLang source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or syntactic
/// problem encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pmlang::ParseError> {
/// let prog = pmlang::parse(
///     "main(input float x[n], output float y[n]) {
///          index i[0:n-1];
///          y[i] = 2.0 * x[i];
///      }",
/// )?;
/// assert!(prog.main().is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0, depth: 0 }.program()
}

/// Maximum expression nesting depth the parser accepts. Deeper trees
/// would exhaust the stack in the recursive descent (and in every
/// recursive pass downstream), so they are rejected with a diagnostic.
const MAX_EXPR_DEPTH: usize = 96;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if *self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek_kind())))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { message, span: self.peek().span }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while *self.peek_kind() != TokenKind::Eof {
            if *self.peek_kind() == TokenKind::Reduction {
                prog.reductions.push(self.reduction_def()?);
            } else {
                prog.components.push(self.component()?);
            }
        }
        Ok(prog)
    }

    fn reduction_def(&mut self) -> Result<ReductionDef, ParseError> {
        let start = self.expect(TokenKind::Reduction)?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let (acc, _) = self.ident()?;
        self.expect(TokenKind::Comma)?;
        let (elem, _) = self.ident()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Assign)?;
        let body = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(ReductionDef { name, acc, elem, body, span: start.merge(end) })
    }

    fn component(&mut self) -> Result<Component, ParseError> {
        let (name, start) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek_kind() != TokenKind::RParen {
            loop {
                args.push(self.arg_decl()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        while *self.peek_kind() != TokenKind::RBrace {
            if *self.peek_kind() == TokenKind::Eof {
                return Err(self.err(format!("unterminated body of component `{name}`")));
            }
            body.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Component { name, args, body, span: start.merge(end) })
    }

    fn arg_decl(&mut self) -> Result<ArgDecl, ParseError> {
        let start = self.peek().span;
        let modifier = match self.peek_kind() {
            TokenKind::Input => TypeModifier::Input,
            TokenKind::Output => TypeModifier::Output,
            TokenKind::State => TypeModifier::State,
            TokenKind::Param => TypeModifier::Param,
            other => {
                return Err(self.err(format!(
                    "expected type modifier (input/output/state/param), found {other}"
                )))
            }
        };
        self.bump();
        let dtype = self.dtype()?;
        let (name, _) = self.ident()?;
        let mut dims = Vec::new();
        while self.eat(TokenKind::LBracket) {
            dims.push(self.expr()?);
            self.expect(TokenKind::RBracket)?;
        }
        let end = self.tokens[self.pos - 1].span;
        Ok(ArgDecl { modifier, dtype, name, dims, span: start.merge(end) })
    }

    fn dtype(&mut self) -> Result<DType, ParseError> {
        let d = match self.peek_kind() {
            TokenKind::Bin => DType::Bool,
            TokenKind::IntTy => DType::Int,
            TokenKind::FloatTy => DType::Float,
            TokenKind::StrTy => DType::Str,
            TokenKind::ComplexTy => DType::Complex,
            other => return Err(self.err(format!("expected data type, found {other}"))),
        };
        self.bump();
        Ok(d)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::Index => self.index_decl(),
            k if k.is_dtype() => self.var_decl(),
            TokenKind::Ident(_) => self.assign_or_instantiate(),
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    fn index_decl(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(TokenKind::Index)?.span;
        let mut specs = Vec::new();
        loop {
            let (name, ispan) = self.ident()?;
            self.expect(TokenKind::LBracket)?;
            let lo = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let hi = self.expr()?;
            let rb = self.expect(TokenKind::RBracket)?.span;
            specs.push(IndexSpec { name, lo, hi, span: ispan.merge(rb) });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::IndexDecl { specs, span: start.merge(end) })
    }

    fn var_decl(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let dtype = self.dtype()?;
        let mut vars = Vec::new();
        loop {
            let (name, _) = self.ident()?;
            let mut dims = Vec::new();
            while self.eat(TokenKind::LBracket) {
                dims.push(self.expr()?);
                self.expect(TokenKind::RBracket)?;
            }
            vars.push((name, dims));
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::VarDecl { dtype, vars, span: start.merge(end) })
    }

    /// Parses `x[i] = expr;`, `comp(args);`, or either prefixed with a
    /// domain annotation (`RBT: comp(args);`, `GA: lvl[v] = ...;`).
    fn assign_or_instantiate(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        // Domain annotation: `RBT:` / `GA:` / … before the statement.
        let mut domain = None;
        if let TokenKind::Ident(word) = self.peek_kind() {
            if let Some(d) = Domain::from_keyword(word) {
                if *self.peek_at(1) == TokenKind::Colon {
                    self.bump(); // domain keyword
                    self.bump(); // colon
                    domain = Some(d);
                }
            }
        }
        // Instantiation: an identifier immediately followed by `(` at
        // statement position.
        if matches!(self.peek_kind(), TokenKind::Ident(_)) && *self.peek_at(1) == TokenKind::LParen
        {
            return self.instantiate(domain, start);
        }
        // Otherwise an assignment.
        let (target, _) = self.ident()?;
        let mut indices = Vec::new();
        while self.eat(TokenKind::LBracket) {
            indices.push(self.expr()?);
            self.expect(TokenKind::RBracket)?;
        }
        self.expect(TokenKind::Assign)?;
        let value = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Assign { domain, target, indices, value, span: start.merge(end) })
    }

    fn instantiate(&mut self, domain: Option<Domain>, start: Span) -> Result<Stmt, ParseError> {
        let (component, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if *self.peek_kind() != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Instantiate { domain, component, args, span: start.merge(end) })
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(
                self.err(format!("expression nesting exceeds the {MAX_EXPR_DEPTH}-level limit"))
            );
        }
        let result = self.ternary();
        self.depth -= 1;
        result
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or()?;
        if self.eat(TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let otherwise = self.ternary()?;
            let span = cond.span.merge(otherwise.span);
            return Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn binary_level(
        &mut self,
        ops: &[(TokenKind, BinOp)],
        next: fn(&mut Self) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek_kind() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = Expr::new(
                        ExprKind::Binary { op: *op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                        span,
                    );
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::OrOr, BinOp::Or)], Self::and)
    }

    fn and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::AndAnd, BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::NotEq, BinOp::Ne)],
            Self::comparison,
        )
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Mod),
            ],
            Self::power,
        )
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        // Right associative: a ^ b ^ c == a ^ (b ^ c).
        let base = self.unary()?;
        if self.eat(TokenKind::Caret) {
            let exp = self.power()?;
            let span = base.span.merge(exp.span);
            return Ok(Expr::new(
                ExprKind::Binary { op: BinOp::Pow, lhs: Box::new(base), rhs: Box::new(exp) },
                span,
            ));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        if self.eat(TokenKind::Minus) {
            let operand = self.unary()?;
            let span = span.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary { op: UnOp::Neg, operand: Box::new(operand) },
                span,
            ));
        }
        if self.eat(TokenKind::Not) {
            let operand = self.unary()?;
            let span = span.merge(operand.span);
            return Ok(Expr::new(
                ExprKind::Unary { op: UnOp::Not, operand: Box::new(operand) },
                span,
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::StrLit(s), span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.ident_postfix(name, span)
            }
            // `complex` is a type keyword, but `complex(re, im)` is also
            // the complex-number constructor in expressions.
            TokenKind::ComplexTy if *self.peek_at(1) == TokenKind::LParen => {
                self.bump();
                self.ident_postfix("complex".to_string(), span)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    /// After an identifier: `name(args)` is a call, `name[..]..(body)` is a
    /// group reduction, `name[..]..` is an indexed access, bare `name` a var.
    fn ident_postfix(&mut self, name: String, span: Span) -> Result<Expr, ParseError> {
        if *self.peek_kind() == TokenKind::LParen {
            self.bump();
            let mut args = Vec::new();
            if *self.peek_kind() != TokenKind::RParen {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
            }
            let end = self.expect(TokenKind::RParen)?.span;
            return Ok(Expr::new(ExprKind::Call { name, args }, span.merge(end)));
        }
        if *self.peek_kind() != TokenKind::LBracket {
            return Ok(Expr::new(ExprKind::Var(name), span));
        }
        // Parse bracket groups. Each group is either a plain index expression
        // (access) or a reduce-iter `ident (":" cond)?`. We record both
        // readings and decide when we see whether `(` follows the brackets.
        let mut groups: Vec<(Expr, Option<ReduceIter>)> = Vec::new();
        let mut end = span;
        while self.eat(TokenKind::LBracket) {
            let gstart = self.peek().span;
            let inner = self.expr()?;
            let iter = if self.eat(TokenKind::Colon) {
                // Conditional form: only valid as a reduce iter.
                let cond = self.expr()?;
                match &inner.kind {
                    ExprKind::Var(iname) => {
                        Some(ReduceIter { index: iname.clone(), cond: Some(cond), span: gstart })
                    }
                    _ => {
                        return Err(self.err(
                            "conditional index group requires a plain index variable before `:`"
                                .into(),
                        ))
                    }
                }
            } else {
                match &inner.kind {
                    ExprKind::Var(iname) => {
                        Some(ReduceIter { index: iname.clone(), cond: None, span: gstart })
                    }
                    _ => None,
                }
            };
            end = self.expect(TokenKind::RBracket)?.span;
            groups.push((inner, iter));
        }
        if *self.peek_kind() == TokenKind::LParen {
            // Group reduction.
            let iters: Option<Vec<ReduceIter>> = groups.iter().map(|(_, it)| it.clone()).collect();
            let Some(iters) = iters else {
                return Err(self.err(format!(
                    "reduction `{name}` requires plain index variables in its bracket groups"
                )));
            };
            self.bump(); // (
            let body = self.expr()?;
            let end = self.expect(TokenKind::RParen)?.span;
            return Ok(Expr::new(
                ExprKind::Reduce { op: name, iters, body: Box::new(body) },
                span.merge(end),
            ));
        }
        // Indexed access. Conditional groups are not valid here.
        if groups.iter().any(|(_, it)| it.as_ref().is_some_and(|i| i.cond.is_some())) {
            return Err(self
                .err(format!("conditional index group on `{name}` is only valid in a reduction")));
        }
        let indices = groups.into_iter().map(|(e, _)| e).collect();
        Ok(Expr::new(ExprKind::Access { name, indices }, span.merge(end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let prog = parse(&format!(
            "main(input float A[n][m], input float B[n], param int h, output float y) {{\
                 index i[0:n-1], j[0:m-1];\
                 y = {src};\
             }}"
        ))
        .unwrap();
        match &prog.components[0].body[1] {
            Stmt::Assign { value, .. } => value.clone(),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_mpc_program() {
        let src = r#"
            mvmul(input float A[m][n], input float B[n], output float C[m]) {
                index i[0:n-1], j[0:m-1];
                C[j] = sum[i](A[j][i]*B[i]);
            }
            main(input float pos[3], state float ctrl_mdl[20],
                 param float P[30][3], output float ctrl_sgnl[2]) {
                float pos_pred[30];
                index i[0:9], j[0:1];
                RBT: mvmul(P, pos, pos_pred);
                ctrl_sgnl[j] = ctrl_mdl[10*j];
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.components.len(), 2);
        let main = prog.main().unwrap();
        assert_eq!(main.args.len(), 4);
        assert_eq!(main.args[1].modifier, TypeModifier::State);
        match &main.body[2] {
            Stmt::Instantiate { domain, component, args, .. } => {
                assert_eq!(*domain, Some(Domain::Robotics));
                assert_eq!(component, "mvmul");
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected instantiation, got {other:?}"),
        }
    }

    #[test]
    fn parses_reduction_with_condition() {
        let e = parse_expr("sum[i][j: j != i](A[i][j])");
        match e.kind {
            ExprKind::Reduce { op, iters, .. } => {
                assert_eq!(op, "sum");
                assert_eq!(iters.len(), 2);
                assert!(iters[0].cond.is_none());
                assert!(iters[1].cond.is_some());
            }
            other => panic!("expected reduce, got {other:?}"),
        }
    }

    #[test]
    fn parses_custom_reduction_def() {
        let prog = parse(
            "reduction min2(a, b) = a < b ? a : b;\
             main(input float x, output float y) { y = x; }",
        )
        .unwrap();
        assert_eq!(prog.reductions.len(), 1);
        let r = &prog.reductions[0];
        assert_eq!(r.name, "min2");
        assert!(matches!(r.body.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn parses_strided_access() {
        let e = parse_expr("B[(i+1)*h]");
        match e.kind {
            ExprKind::Access { name, indices } => {
                assert_eq!(name, "B");
                assert_eq!(indices.len(), 1);
                assert!(matches!(indices[0].kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("expected access, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr("2 ^ 3 ^ 2");
        match e.kind {
            ExprKind::Binary { op: BinOp::Pow, lhs, rhs } => {
                assert!(matches!(lhs.kind, ExprKind::IntLit(2)));
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_binds_tighter_than_mul() {
        let e = parse_expr("-A[i][j] * 2");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn call_vs_access_vs_reduce() {
        assert!(matches!(parse_expr("sigmoid(B[i])").kind, ExprKind::Call { .. }));
        assert!(matches!(parse_expr("A[i][j]").kind, ExprKind::Access { .. }));
        assert!(matches!(parse_expr("sum[i](B[i])").kind, ExprKind::Reduce { .. }));
    }

    #[test]
    fn var_decl_multiple() {
        let prog =
            parse("main(input float x, output float y) { float P_g[4], H_g[4]; y = x; }").unwrap();
        match &prog.main().unwrap().body[0] {
            Stmt::VarDecl { dtype, vars, .. } => {
                assert_eq!(*dtype, DType::Float);
                assert_eq!(vars.len(), 2);
                assert_eq!(vars[0].0, "P_g");
                assert_eq!(vars[1].1.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_conditional_index_on_access() {
        let res = parse(
            "main(input float A[n][n], output float y) {
                index i[0:n-1], j[0:n-1];
                y = A[i: i != 0][j];
             }",
        );
        assert!(res.is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("main(input float x, output float y) { y = x }").is_err());
    }

    #[test]
    fn rejects_unterminated_component() {
        assert!(parse("main(input float x, output float y) { y = x;").is_err());
    }

    #[test]
    fn error_mentions_location() {
        let err = parse("main(input float x, output float y) {\n  y = ;\n}").unwrap_err();
        assert!(err.span.line >= 2, "{err}");
    }

    #[test]
    fn empty_arg_list() {
        let prog = parse("main() { float t; t = 1.0; }").unwrap();
        assert!(prog.main().unwrap().args.is_empty());
    }

    #[test]
    fn domain_annotations_all_parse() {
        for kw in ["RBT", "GA", "DSP", "DA", "DL"] {
            let src = format!(
                "f(input float x, output float y) {{ y = x; }}\
                 main(input float a, output float b) {{ {kw}: f(a, b); }}"
            );
            let prog = parse(&src).unwrap();
            match &prog.main().unwrap().body[0] {
                Stmt::Instantiate { domain, .. } => assert!(domain.is_some()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn statement_level_domain_annotation() {
        let prog = parse(
            "main(input float x[4], output float y[4]) {
                 index i[0:3];
                 GA: y[i] = x[i] + 1.0;
             }",
        )
        .unwrap();
        match &prog.main().unwrap().body[1] {
            Stmt::Assign { domain, .. } => assert_eq!(*domain, Some(Domain::GraphAnalytics)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn complex_constructor_in_expressions() {
        let e = parse_expr("complex(1.0, 2.0)");
        match e.kind {
            ExprKind::Call { name, args } => {
                assert_eq!(name, "complex");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nesting_limit_is_a_parse_error() {
        let mut expr = String::from("x");
        for _ in 0..150 {
            expr = format!("({expr})");
        }
        let err =
            parse(&format!("main(input float x, output float y) {{ y = {expr}; }}")).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn nested_ternary() {
        let e = parse_expr("A[i][j] < 0.0 ? 0.0 : A[i][j] > 1.0 ? 1.0 : A[i][j]");
        match e.kind {
            ExprKind::Ternary { otherwise, .. } => {
                assert!(matches!(otherwise.kind, ExprKind::Ternary { .. }))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_in_reduce_condition_parses_fully() {
        let e = parse_expr("sum[i: i % 2 == 0](B[i])");
        match e.kind {
            ExprKind::Reduce { iters, .. } => {
                let cond = iters[0].cond.as_ref().unwrap();
                assert!(matches!(cond.kind, ExprKind::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
