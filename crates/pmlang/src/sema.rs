//! Semantic analysis for PMLang programs.
//!
//! Checks performed (shape checking with concrete sizes happens later, at
//! srDFG build time, when parameter values are known):
//!
//! * component and reduction names are unique and do not shadow built-ins;
//! * every referenced component and reduction exists, with matching arity;
//! * the component-instantiation graph is acyclic (components are inlined,
//!   so recursion would diverge);
//! * names within a component (arguments, locals, index variables) are
//!   unique, and every referenced variable is declared;
//! * assignment targets are writable (`output`, `state`, or a local — not
//!   `input`/`param`, not an index variable);
//! * `input` arguments are never written; `output` arguments are read only
//!   after being written; every `output` is written somewhere;
//! * instantiation arguments bound to callee `output`/`state` parameters
//!   are plain variable references;
//! * built-in function calls have the right arity;
//! * reduction iteration variables are declared index variables.

use crate::ast::*;
use crate::error::SemaError;
use crate::intrinsics::{BuiltinReduction, ScalarFunc};
use crate::span::Span;
use std::collections::{HashMap, HashSet};

/// Per-component metadata computed by [`check`].
#[derive(Debug, Clone, Default)]
pub struct ComponentInfo {
    /// Identifiers used in argument dimensions that are not themselves
    /// arguments: implicit size parameters bound at instantiation
    /// (e.g. `a`, `b`, `c` in the paper's `predict_trajectory`).
    pub size_params: Vec<String>,
    /// Names of components this component instantiates (with multiplicity).
    pub instantiates: Vec<String>,
    /// Variables assigned in the body.
    pub writes: Vec<String>,
}

/// Result of semantic analysis over a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramInfo {
    /// Metadata per component, keyed by component name.
    pub components: HashMap<String, ComponentInfo>,
}

/// Runs all semantic checks on `prog`.
///
/// The program does not need a `main` component to pass (libraries of
/// components are legal); the srDFG builder requires `main` separately.
///
/// # Errors
///
/// Returns the first [`SemaError`] found.
pub fn check(prog: &Program) -> Result<ProgramInfo, SemaError> {
    let mut info = ProgramInfo::default();

    // Unique component names, none shadowing a builtin function/reduction.
    let mut comp_names = HashSet::new();
    for c in &prog.components {
        if !comp_names.insert(c.name.as_str()) {
            return Err(err(c.span, format!("duplicate component `{}`", c.name)));
        }
        if ScalarFunc::by_name(&c.name).is_some() || BuiltinReduction::by_name(&c.name).is_some() {
            return Err(err(c.span, format!("component `{}` shadows a built-in", c.name)));
        }
    }
    // Unique reduction names.
    let mut red_names = HashSet::new();
    for r in &prog.reductions {
        if !red_names.insert(r.name.as_str()) {
            return Err(err(r.span, format!("duplicate reduction `{}`", r.name)));
        }
        if BuiltinReduction::by_name(&r.name).is_some() {
            return Err(err(r.span, format!("reduction `{}` shadows a built-in", r.name)));
        }
        check_reduction_body(r)?;
    }

    for c in &prog.components {
        let ci = check_component(prog, c)?;
        info.components.insert(c.name.clone(), ci);
    }

    check_acyclic(prog, &info)?;
    Ok(info)
}

fn err(span: Span, message: String) -> SemaError {
    SemaError { message, span }
}

/// The custom-reduction body may only reference its two parameters,
/// literals, and built-in scalar functions.
fn check_reduction_body(r: &ReductionDef) -> Result<(), SemaError> {
    fn walk(e: &Expr, r: &ReductionDef) -> Result<(), SemaError> {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::StrLit(_) => Ok(()),
            ExprKind::Var(name) => {
                if name == &r.acc || name == &r.elem {
                    Ok(())
                } else {
                    Err(err(
                        e.span,
                        format!("reduction `{}` references unknown name `{name}`", r.name),
                    ))
                }
            }
            ExprKind::Access { .. } => Err(err(
                e.span,
                format!("reduction `{}` body must be scalar (no indexed access)", r.name),
            )),
            ExprKind::Unary { operand, .. } => walk(operand, r),
            ExprKind::Binary { lhs, rhs, .. } => {
                walk(lhs, r)?;
                walk(rhs, r)
            }
            ExprKind::Ternary { cond, then, otherwise } => {
                walk(cond, r)?;
                walk(then, r)?;
                walk(otherwise, r)
            }
            ExprKind::Call { name, args } => {
                let f = ScalarFunc::by_name(name).ok_or_else(|| {
                    err(e.span, format!("unknown function `{name}` in reduction `{}`", r.name))
                })?;
                if args.len() != f.arity() {
                    return Err(err(
                        e.span,
                        format!("`{name}` expects {} arguments, got {}", f.arity(), args.len()),
                    ));
                }
                args.iter().try_for_each(|a| walk(a, r))
            }
            ExprKind::Reduce { .. } => Err(err(
                e.span,
                format!("reduction `{}` body may not contain a nested reduction", r.name),
            )),
        }
    }
    walk(&r.body, r)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarClass {
    Arg(TypeModifier),
    Local,
    IndexVar,
}

struct Scope {
    vars: HashMap<String, VarClass>,
    /// Declared rank (number of dimensions) per tensor variable.
    ranks: HashMap<String, usize>,
    /// Variables that have been assigned so far.
    written: HashSet<String>,
}

fn check_component(prog: &Program, comp: &Component) -> Result<ComponentInfo, SemaError> {
    let mut scope = Scope { vars: HashMap::new(), ranks: HashMap::new(), written: HashSet::new() };
    let mut ci = ComponentInfo::default();

    // Arguments.
    for a in &comp.args {
        scope.ranks.insert(a.name.clone(), a.dims.len());
        if scope.vars.insert(a.name.clone(), VarClass::Arg(a.modifier)).is_some() {
            return Err(err(a.span, format!("duplicate argument `{}`", a.name)));
        }
        if a.dtype == DType::Str && !a.dims.is_empty() {
            return Err(err(
                a.span,
                format!("argument `{}`: str arrays are not supported", a.name),
            ));
        }
    }
    // Implicit size parameters: identifiers in argument dims that are not
    // arguments themselves. They behave as scalar int params in the body.
    let mut size_params: Vec<String> = Vec::new();
    for a in &comp.args {
        for d in &a.dims {
            collect_free_idents(d, &mut |name, span| {
                if !scope.vars.contains_key(name) && ScalarFunc::by_name(name).is_none() {
                    if !size_params.iter().any(|s| s == name) {
                        size_params.push(name.to_string());
                    }
                    Ok(())
                } else if matches!(scope.vars.get(name), Some(VarClass::Arg(m)) if *m != TypeModifier::Param)
                {
                    Err(err(
                        span,
                        format!("dimension of `{}` references non-param argument `{name}`", a.name),
                    ))
                } else {
                    Ok(())
                }
            })?;
        }
    }
    for sp in &size_params {
        scope.vars.insert(sp.clone(), VarClass::Arg(TypeModifier::Param));
    }
    ci.size_params = size_params;

    // Body.
    for stmt in &comp.body {
        match stmt {
            Stmt::IndexDecl { specs, span } => {
                for s in specs {
                    if scope.vars.insert(s.name.clone(), VarClass::IndexVar).is_some() {
                        return Err(err(*span, format!("duplicate name `{}`", s.name)));
                    }
                    // Bounds may reference params, size params, and literals.
                    check_expr(prog, &scope, &s.lo, false)?;
                    check_expr(prog, &scope, &s.hi, false)?;
                }
            }
            Stmt::VarDecl { vars, span, .. } => {
                for (name, dims) in vars {
                    scope.ranks.insert(name.clone(), dims.len());
                    if scope.vars.insert(name.clone(), VarClass::Local).is_some() {
                        return Err(err(*span, format!("duplicate name `{name}`")));
                    }
                    for d in dims {
                        check_expr(prog, &scope, d, false)?;
                    }
                }
            }
            Stmt::Assign { target, indices, value, span, .. } => {
                match scope.vars.get(target.as_str()) {
                    None => return Err(err(*span, format!("assignment to undeclared `{target}`"))),
                    Some(VarClass::IndexVar) => {
                        return Err(err(
                            *span,
                            format!("cannot assign to index variable `{target}`"),
                        ))
                    }
                    Some(VarClass::Arg(TypeModifier::Input)) => {
                        return Err(err(*span, format!("cannot assign to input `{target}`")))
                    }
                    Some(VarClass::Arg(TypeModifier::Param)) => {
                        return Err(err(*span, format!("cannot assign to param `{target}`")))
                    }
                    Some(VarClass::Arg(_)) | Some(VarClass::Local) => {}
                }
                if let Some(&rank) = scope.ranks.get(target.as_str()) {
                    if indices.len() != rank {
                        return Err(err(
                            *span,
                            format!(
                                "`{target}` has rank {rank} but the left-hand side uses {} {}",
                                indices.len(),
                                if indices.len() == 1 { "index" } else { "indices" }
                            ),
                        ));
                    }
                }
                for ix in indices {
                    check_expr(prog, &scope, ix, false)?;
                }
                check_expr(prog, &scope, value, true)?;
                scope.written.insert(target.clone());
            }
            Stmt::Instantiate { component, args, span, .. } => {
                let callee = prog.component(component).ok_or_else(|| {
                    err(*span, format!("instantiation of unknown component `{component}`"))
                })?;
                if callee.name == comp.name {
                    return Err(err(
                        *span,
                        format!("component `{}` instantiates itself", comp.name),
                    ));
                }
                if args.len() != callee.args.len() {
                    return Err(err(
                        *span,
                        format!(
                            "`{component}` expects {} arguments, got {}",
                            callee.args.len(),
                            args.len()
                        ),
                    ));
                }
                for (actual, formal) in args.iter().zip(&callee.args) {
                    match formal.modifier {
                        TypeModifier::Output | TypeModifier::State => {
                            // Must be a plain variable we can write to.
                            let name = match &actual.kind {
                                ExprKind::Var(n) => n,
                                ExprKind::Access { name, .. } => name,
                                _ => {
                                    return Err(err(
                                        actual.span,
                                        format!(
                                            "argument for `{}` ({}) must be a variable",
                                            formal.name, formal.modifier
                                        ),
                                    ))
                                }
                            };
                            match scope.vars.get(name.as_str()) {
                                Some(VarClass::Arg(TypeModifier::Input))
                                | Some(VarClass::Arg(TypeModifier::Param))
                                    if formal.modifier == TypeModifier::Output =>
                                {
                                    return Err(err(
                                        actual.span,
                                        format!(
                                            "cannot bind read-only `{name}` to output `{}`",
                                            formal.name
                                        ),
                                    ))
                                }
                                Some(VarClass::IndexVar) => {
                                    return Err(err(
                                        actual.span,
                                        format!(
                                            "cannot bind index variable `{name}` to `{}`",
                                            formal.name
                                        ),
                                    ))
                                }
                                None => {
                                    return Err(err(
                                        actual.span,
                                        format!("undeclared variable `{name}`"),
                                    ))
                                }
                                _ => {}
                            }
                            scope.written.insert(name.clone());
                        }
                        TypeModifier::Input | TypeModifier::Param => {
                            check_expr(prog, &scope, actual, true)?;
                        }
                    }
                }
                ci.instantiates.push(component.clone());
            }
        }
    }

    // Every output must be written.
    for a in &comp.args {
        if a.modifier == TypeModifier::Output && !scope.written.contains(&a.name) {
            return Err(err(a.span, format!("output `{}` is never written", a.name)));
        }
    }
    ci.writes = scope.written.into_iter().collect();
    ci.writes.sort();
    Ok(ci)
}

/// Maximum expression nesting depth. Deeper trees would exhaust the
/// stack in the recursive passes downstream, so they are rejected here
/// with a diagnostic instead.
pub const MAX_EXPR_DEPTH: usize = 128;

/// Checks an expression for undeclared names, bad calls, and reduce-iter
/// validity. `allow_unwritten_read == false` restricts to "structural"
/// positions (dims, bounds, LHS indices) where outputs may not be read.
fn check_expr(
    prog: &Program,
    scope: &Scope,
    e: &Expr,
    _allow_unwritten_read: bool,
) -> Result<(), SemaError> {
    check_expr_depth(prog, scope, e, _allow_unwritten_read, 0)
}

fn check_expr_depth(
    prog: &Program,
    scope: &Scope,
    e: &Expr,
    _allow_unwritten_read: bool,
    depth: usize,
) -> Result<(), SemaError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(err(
            e.span,
            format!("expression nesting exceeds the {MAX_EXPR_DEPTH}-level limit"),
        ));
    }
    let check_expr = |prog, scope, e, allow| check_expr_depth(prog, scope, e, allow, depth + 1);
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::StrLit(_) => Ok(()),
        ExprKind::Var(name) => {
            if scope.vars.contains_key(name.as_str()) {
                Ok(())
            } else {
                Err(err(e.span, format!("undeclared variable `{name}`")))
            }
        }
        ExprKind::Access { name, indices } => {
            if !scope.vars.contains_key(name.as_str()) {
                return Err(err(e.span, format!("undeclared variable `{name}`")));
            }
            if matches!(scope.vars.get(name.as_str()), Some(VarClass::IndexVar)) {
                return Err(err(e.span, format!("index variable `{name}` cannot be indexed")));
            }
            indices.iter().try_for_each(|ix| check_expr(prog, scope, ix, false))
        }
        ExprKind::Unary { operand, .. } => check_expr(prog, scope, operand, _allow_unwritten_read),
        ExprKind::Binary { lhs, rhs, .. } => {
            check_expr(prog, scope, lhs, _allow_unwritten_read)?;
            check_expr(prog, scope, rhs, _allow_unwritten_read)
        }
        ExprKind::Ternary { cond, then, otherwise } => {
            check_expr(prog, scope, cond, _allow_unwritten_read)?;
            check_expr(prog, scope, then, _allow_unwritten_read)?;
            check_expr(prog, scope, otherwise, _allow_unwritten_read)
        }
        ExprKind::Call { name, args } => {
            let f = ScalarFunc::by_name(name)
                .ok_or_else(|| err(e.span, format!("unknown function `{name}`")))?;
            if args.len() != f.arity() {
                return Err(err(
                    e.span,
                    format!("`{name}` expects {} arguments, got {}", f.arity(), args.len()),
                ));
            }
            args.iter().try_for_each(|a| check_expr(prog, scope, a, _allow_unwritten_read))
        }
        ExprKind::Reduce { op, iters, body } => {
            if BuiltinReduction::by_name(op).is_none() && prog.reduction(op).is_none() {
                return Err(err(e.span, format!("unknown reduction `{op}`")));
            }
            for it in iters {
                match scope.vars.get(it.index.as_str()) {
                    Some(VarClass::IndexVar) => {}
                    Some(_) => {
                        return Err(err(
                            it.span,
                            format!("`{}` is not an index variable", it.index),
                        ))
                    }
                    None => {
                        return Err(err(
                            it.span,
                            format!("undeclared index variable `{}`", it.index),
                        ))
                    }
                }
                if let Some(c) = &it.cond {
                    check_expr(prog, scope, c, _allow_unwritten_read)?;
                }
            }
            check_expr(prog, scope, body, _allow_unwritten_read)
        }
    }
}

fn collect_free_idents(
    e: &Expr,
    f: &mut impl FnMut(&str, Span) -> Result<(), SemaError>,
) -> Result<(), SemaError> {
    match &e.kind {
        ExprKind::Var(name) => f(name, e.span),
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::StrLit(_) => Ok(()),
        ExprKind::Access { indices, .. } => {
            indices.iter().try_for_each(|ix| collect_free_idents(ix, f))
        }
        ExprKind::Unary { operand, .. } => collect_free_idents(operand, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_free_idents(lhs, f)?;
            collect_free_idents(rhs, f)
        }
        ExprKind::Ternary { cond, then, otherwise } => {
            collect_free_idents(cond, f)?;
            collect_free_idents(then, f)?;
            collect_free_idents(otherwise, f)
        }
        ExprKind::Call { args, .. } => args.iter().try_for_each(|a| collect_free_idents(a, f)),
        ExprKind::Reduce { body, .. } => collect_free_idents(body, f),
    }
}

/// Rejects recursive component instantiation (components are inlined).
fn check_acyclic(prog: &Program, info: &ProgramInfo) -> Result<(), SemaError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        InProgress,
        Done,
    }
    fn visit(
        name: &str,
        prog: &Program,
        info: &ProgramInfo,
        marks: &mut HashMap<String, Mark>,
    ) -> Result<(), SemaError> {
        match marks.get(name) {
            Some(Mark::Done) => return Ok(()),
            Some(Mark::InProgress) => {
                let span = prog.component(name).map(|c| c.span).unwrap_or_default();
                return Err(err(span, format!("recursive instantiation cycle through `{name}`")));
            }
            None => {}
        }
        marks.insert(name.to_string(), Mark::InProgress);
        if let Some(ci) = info.components.get(name) {
            for callee in &ci.instantiates {
                visit(callee, prog, info, marks)?;
            }
        }
        marks.insert(name.to_string(), Mark::Done);
        Ok(())
    }
    let mut marks = HashMap::new();
    for c in &prog.components {
        visit(&c.name, prog, info, &mut marks)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<ProgramInfo, SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn accepts_paper_style_component() {
        let info = check_src(
            "predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                                param float P[c][a], param float H[c][b],
                                output float pred[c]) {
                 index i[0:a-1], j[0:b-1], k[0:c-1];
                 pred[k] = sum[i](P[k][i]*pos[i]);
                 pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
             }",
        )
        .unwrap();
        let ci = &info.components["predict_trajectory"];
        assert_eq!(ci.size_params, vec!["a", "b", "c"]);
        assert_eq!(ci.writes, vec!["pred"]);
    }

    #[test]
    fn rejects_write_to_input() {
        let e = check_src("main(input float x, output float y) { x = 1.0; y = x; }").unwrap_err();
        assert!(e.message.contains("input"), "{e}");
    }

    #[test]
    fn rejects_write_to_param() {
        let e = check_src("main(param float p, output float y) { p = 1.0; y = p; }").unwrap_err();
        assert!(e.message.contains("param"), "{e}");
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = check_src("main(input float x, output float y) { y = z; }").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_unwritten_output() {
        let e = check_src("main(input float x, output float y, output float z) { y = x; }")
            .unwrap_err();
        assert!(e.message.contains("never written"), "{e}");
    }

    #[test]
    fn rejects_unknown_component() {
        let e = check_src("main(input float x, output float y) { f(x, y); y = x; }").unwrap_err();
        assert!(e.message.contains("unknown component"), "{e}");
    }

    #[test]
    fn rejects_arity_mismatch_instantiation() {
        let e = check_src(
            "f(input float a, output float b) { b = a; }
             main(input float x, output float y) { f(x); y = x; }",
        )
        .unwrap_err();
        assert!(e.message.contains("expects 2"), "{e}");
    }

    #[test]
    fn rejects_self_recursion() {
        let e = check_src(
            "f(input float a, output float b) { f(a, b); }
             main(input float x, output float y) { f(x, y); }",
        )
        .unwrap_err();
        assert!(e.message.contains("instantiates itself"), "{e}");
    }

    #[test]
    fn rejects_mutual_recursion() {
        let e = check_src(
            "f(input float a, output float b) { g(a, b); }
             g(input float a, output float b) { f(a, b); }",
        )
        .unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_unknown_function() {
        let e =
            check_src("main(input float x, output float y) { y = frobnicate(x); }").unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let e = check_src("main(input float x, output float y) { y = pow(x); }").unwrap_err();
        assert!(e.message.contains("expects 2"), "{e}");
    }

    #[test]
    fn rejects_unknown_reduction() {
        let e = check_src(
            "main(input float A[n], output float y) { index i[0:n-1]; y = median[i](A[i]); }",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown reduction"), "{e}");
    }

    #[test]
    fn accepts_custom_reduction_use() {
        check_src(
            "reduction mn(a, b) = a < b ? a : b;
             main(input float A[n], output float y) { index i[0:n-1]; y = mn[i](A[i]); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_reduction_over_non_index() {
        let e =
            check_src("main(input float A[n], param int k, output float y) { y = sum[k](A[k]); }")
                .unwrap_err();
        assert!(e.message.contains("not an index variable"), "{e}");
    }

    #[test]
    fn rejects_custom_reduction_with_free_names() {
        let e = check_src(
            "reduction bad(a, b) = a + c;
             main(input float x, output float y) { y = x; }",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown name"), "{e}");
    }

    #[test]
    fn rejects_duplicate_component() {
        let e = check_src(
            "f(input float a, output float b) { b = a; }
             f(input float a, output float b) { b = a; }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate component"), "{e}");
    }

    #[test]
    fn rejects_shadowing_builtin_reduction() {
        let e = check_src(
            "reduction sum(a, b) = a + b;
             main(input float x, output float y) { y = x; }",
        )
        .unwrap_err();
        assert!(e.message.contains("shadows"), "{e}");
    }

    #[test]
    fn rejects_binding_input_to_output_arg() {
        let e = check_src(
            "f(input float a, output float b) { b = a; }
             main(input float x, output float y) { f(x, x); y = x; }",
        )
        .unwrap_err();
        assert!(e.message.contains("read-only"), "{e}");
    }

    #[test]
    fn state_arg_can_be_read_and_written() {
        check_src(
            "main(input float x, state float s, output float y) {
                 s = s + x;
                 y = s;
             }",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_local_rejected() {
        let e = check_src("main(input float x, output float y) { float t; float t; y = x; }")
            .unwrap_err();
        assert!(e.message.contains("duplicate name"), "{e}");
    }

    #[test]
    fn size_params_collected_in_order() {
        let info = check_src(
            "f(input float A[rows][cols], input float B[cols], output float C[rows]) {
                 index i[0:cols-1], j[0:rows-1];
                 C[j] = sum[i](A[j][i]*B[i]);
             }",
        )
        .unwrap();
        assert_eq!(info.components["f"].size_params, vec!["rows", "cols"]);
    }
}
