//! Error types produced by the PMLang frontend.

use crate::span::Span;
use std::error::Error as StdError;
use std::fmt;

/// An error raised while lexing PMLang source text.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl StdError for LexError {}

/// An error raised while parsing a PMLang token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl StdError for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, span: e.span }
    }
}

/// An error raised during semantic analysis (name resolution, shape and
/// type checking, component signature checks).
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending construct.
    pub span: Span,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at {}: {}", self.span, self.message)
    }
}

impl StdError for SemaError {}

/// Any error the PMLang frontend can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Lexing failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Sema(SemaError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex(e) => e.fmt(f),
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Sema(e) => e.fmt(f),
        }
    }
}

impl StdError for FrontendError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FrontendError::Lex(e) => Some(e),
            FrontendError::Parse(e) => Some(e),
            FrontendError::Sema(e) => Some(e),
        }
    }
}

impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<SemaError> for FrontendError {
    fn from(e: SemaError) -> Self {
        FrontendError::Sema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_location() {
        let e =
            LexError { message: "unexpected character `@`".into(), span: Span::new(4, 5, 2, 1) };
        assert!(e.to_string().contains("2:1"));
        let p: ParseError = e.clone().into();
        assert_eq!(p.message, e.message);
        let f: FrontendError = p.into();
        assert!(f.to_string().contains("parse error"));
    }

    #[test]
    fn frontend_error_sources() {
        let s = SemaError { message: "unknown variable `q`".into(), span: Span::synthetic() };
        let f: FrontendError = s.into();
        assert!(f.source().is_some());
    }
}
