//! Robustness fuzzing: the frontend must return `Ok` or a diagnostic on
//! *any* input — never panic, never overflow the stack. Three input
//! distributions: raw bytes, token-soup built from the language's own
//! vocabulary, and mutations of a valid program (the distribution real
//! typos live in).

use proptest::prelude::*;

/// Fragments the token-soup generator draws from — every keyword,
/// operator, and literal form the lexer knows, plus nesting punctuation.
const VOCAB: &[&str] = &[
    "main",
    "input",
    "output",
    "state",
    "param",
    "float",
    "int",
    "bin",
    "str",
    "complex",
    "index",
    "sum",
    "prod",
    "max",
    "min",
    "argmax",
    "argmin",
    "any",
    "all",
    "reduction",
    "DSP:",
    "DA:",
    "RBT:",
    "GA:",
    "DL:",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "=",
    "+",
    "-",
    "*",
    "/",
    "^",
    "<",
    "<=",
    ">",
    ">=",
    "==",
    "!=",
    "?",
    ":",
    "x",
    "y",
    "i",
    "j",
    "t0",
    "w",
    "0",
    "1",
    "63",
    "3.5",
    "0.0",
    "1e9",
    "pi",
    "sigmoid",
    "sqrt",
    "ln",
    "exp",
    "abs",
    "min2",
    "max2",
    "\"s\"",
    "//c\n",
];

const VALID: &str = "filt(input float x[64], param float h[64], output float y) {
    index i[0:63];
    y = sum[i](h[i]*x[i]);
}
main(input float sig[64], param float taps[64], output float cls) {
    float feat;
    DSP: filt(sig, taps, feat);
    cls = sigmoid(feat);
}";

fn soup_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..VOCAB.len(), 0..120)
        .prop_map(|picks| picks.iter().map(|&k| VOCAB[k]).collect::<Vec<_>>().join(" "))
}

/// Mutates the valid program: delete, duplicate, or transpose a span.
fn mutation_strategy() -> impl Strategy<Value = String> {
    (0..VALID.len(), 1usize..12, 0..3u8).prop_map(|(at, len, kind)| {
        let mut s = VALID.to_string();
        let at = at.min(s.len());
        // Keep the cut on char boundaries.
        let start = (0..=at).rev().find(|&p| s.is_char_boundary(p)).unwrap_or(0);
        let end = (start + len).min(s.len());
        let end = (end..=s.len()).find(|&p| s.is_char_boundary(p)).unwrap_or(s.len());
        match kind {
            0 => {
                s.replace_range(start..end, "");
            }
            1 => {
                let chunk = s[start..end].to_string();
                s.insert_str(start, &chunk);
            }
            _ => {
                let chunk: String = s[start..end].chars().rev().collect();
                s.replace_range(start..end, &chunk);
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the lexer/parser must diagnose, not crash.
    #[test]
    fn frontend_never_panics_on_bytes(input in "\\PC{0,200}") {
        let _ = pmlang::frontend(&input);
    }

    /// Token soup from the language's own vocabulary: reaches much deeper
    /// into the parser and semantic analysis than raw bytes.
    #[test]
    fn frontend_never_panics_on_token_soup(input in soup_strategy()) {
        let _ = pmlang::frontend(&input);
    }

    /// Mutations of a valid program: the typo distribution. Whatever the
    /// outcome, a reported error must carry a sane span.
    #[test]
    fn frontend_never_panics_on_mutations(input in mutation_strategy()) {
        if let Err(e) = pmlang::frontend(&input) {
            // The diagnostic must render (no panics in Display) and its
            // message must be non-empty.
            let msg = e.to_string();
            prop_assert!(!msg.is_empty());
        }
    }

    /// Deep nesting must hit the depth limit, not the stack guard.
    #[test]
    fn deep_nesting_is_a_diagnostic(depth in 1usize..400) {
        let expr = format!("{}1.0{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!("main(input float x, output float y) {{ y = {expr}; }}");
        let _ = pmlang::frontend(&src);
    }
}
