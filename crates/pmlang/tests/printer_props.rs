//! Property test: the pretty-printer round-trips randomly generated
//! expressions through the parser without changing their structure
//! (checked via printer-fixpoint equality) or their semantics (checked
//! by executing both versions).

use pmlang::{parse, print_program};
use proptest::prelude::*;

/// Random expression source text built from a tree we control.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("i".to_string()),
        (0i64..100).prop_map(|v| v.to_string()),
        (0i64..100).prop_map(|v| format!("{v}.5")),
        Just("a[i]".to_string()),
        Just("b[i]".to_string()),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("^"),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("=="),
                    Just("!="),
                    Just("&&"),
                    Just("||"),
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            inner.clone().prop_map(|a| format!("(-{a})")),
            inner.clone().prop_map(|a| format!("sigmoid({a})")),
            inner.clone().prop_map(|a| format!("min2({a}, 1.0)")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| format!("({c} ? {a} : {b})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn printer_is_a_parser_fixpoint(expr in expr_strategy()) {
        let src = format!(
            "main(input float x, input float y, input float a[4], input float b[4],
                  output float z[4]) {{
                 index i[0:3];
                 z[i] = {expr};
             }}"
        );
        let Ok(prog) = parse(&src) else {
            // Over-deep random nesting can trip the depth limit; that is
            // not a printer property.
            return Ok(());
        };
        let printed = print_program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = print_program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    #[test]
    fn printed_programs_evaluate_identically(expr in expr_strategy()) {
        use std::collections::HashMap;
        let src = format!(
            "main(input float x, input float y, input float a[4], input float b[4],
                  output float z[4]) {{
                 index i[0:3];
                 z[i] = {expr};
             }}"
        );
        let Ok(prog) = parse(&src) else { return Ok(()) };
        if pmlang::check(&prog).is_err() {
            return Ok(());
        }
        let printed = print_program(&prog);
        let reparsed = parse(&printed).unwrap();

        let build = |p: &pmlang::Program| {
            srdfg::build(p, &srdfg::Bindings::default()).unwrap()
        };
        let t = |v: Vec<f64>| {
            srdfg::Tensor::from_vec(pmlang::DType::Float, vec![v.len()], v).unwrap()
        };
        let feeds = HashMap::from([
            ("x".to_string(), srdfg::Tensor::scalar(pmlang::DType::Float, 1.25)),
            ("y".to_string(), srdfg::Tensor::scalar(pmlang::DType::Float, -0.75)),
            ("a".to_string(), t(vec![0.5, 1.5, -2.0, 3.0])),
            ("b".to_string(), t(vec![2.0, -1.0, 0.25, 4.0])),
        ]);
        let r1 = srdfg::Machine::new(build(&prog)).invoke(&feeds);
        let r2 = srdfg::Machine::new(build(&reparsed)).invoke(&feeds);
        match (r1, r2) {
            (Ok(o1), Ok(o2)) => {
                let d = o1["z"].max_abs_diff(&o2["z"]).unwrap();
                prop_assert!(d < 1e-12, "diverged by {d}");
            }
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "one side failed: {other:?}"),
        }
    }
}
