//! Golden diagnostics: the messages and source locations a user sees for
//! common mistakes. These pin the frontend's error quality — a change
//! that degrades a span to 0:0 or a message to something generic fails
//! here, not in a bug report.

/// Asserts the frontend rejects `src` with a message containing `what`
/// at line:col `where_` (1-based, as rendered by Display).
fn rejects(src: &str, what: &str, where_: &str) {
    let err = pmlang::frontend(src).expect_err("should be rejected");
    let msg = err.to_string();
    assert!(msg.contains(what), "expected `{what}` in: {msg}");
    assert!(msg.contains(where_), "expected location `{where_}` in: {msg}");
}

#[test]
fn undeclared_variable_read() {
    rejects(
        "main(input float x, output float y) { y = z + 1.0; }",
        "undeclared variable `z`",
        "1:43",
    );
}

#[test]
fn assignment_to_undeclared() {
    rejects(
        "main(input float x, output float y) { w = x; y = x; }",
        "assignment to undeclared `w`",
        "1:39",
    );
}

#[test]
fn assignment_to_input() {
    rejects(
        "main(input float x, output float y) { x = 1.0; y = x; }",
        "cannot assign to input `x`",
        "1:39",
    );
}

#[test]
fn assignment_to_param() {
    rejects(
        "main(input float x, param float p, output float y) { p = 1.0; y = x; }",
        "cannot assign to param `p`",
        "1:54",
    );
}

#[test]
fn assignment_to_index_variable() {
    rejects(
        "main(input float x[4], output float y) { index i[0:3]; i = 1; y = sum[i](x[i]); }",
        "cannot assign to index variable `i`",
        "1:56",
    );
}

#[test]
fn lhs_rank_mismatch_under_indexed() {
    rejects(
        "main(input float x[4], output float y[4]) { y = x; }",
        "`y` has rank 1 but the left-hand side uses 0 indices",
        "1:45",
    );
}

#[test]
fn lhs_rank_mismatch_over_indexed() {
    rejects(
        "main(input float x[4], output float y) { index i[0:3]; y[i] = x[i]; }",
        "`y` has rank 0 but the left-hand side uses 1 index",
        "1:56",
    );
}

#[test]
fn duplicate_argument() {
    rejects(
        "main(input float x, input float x, output float y) { y = x; }",
        "duplicate argument `x`",
        "1:21",
    );
}

#[test]
fn duplicate_local_name() {
    rejects(
        "main(input float x, output float y) { float t; float t; y = x; }",
        "duplicate name `t`",
        "1:48",
    );
}

#[test]
fn unknown_component_instantiation() {
    rejects(
        "main(input float x, output float y) { nosuch(x, y); }",
        "instantiation of unknown component `nosuch`",
        "1:39",
    );
}

#[test]
fn self_instantiation() {
    rejects(
        "main(input float x, output float y) { main(x, y); }",
        "component `main` instantiates itself",
        "1:39",
    );
}

#[test]
fn wrong_instantiation_arity() {
    rejects(
        "f(input float a, output float b) { b = a; }
         main(input float x, output float y) { f(x); }",
        "`f` expects 2 arguments, got 1",
        "2:48",
    );
}

#[test]
fn unterminated_block_is_a_parse_error() {
    let err = pmlang::frontend("main(input float x, output float y) { y = x;")
        .expect_err("should be rejected");
    assert!(!err.to_string().is_empty());
}

#[test]
fn expression_depth_limit_is_a_diagnostic() {
    let expr = format!("{}x{}", "(".repeat(200), ")".repeat(200));
    let src = format!("main(input float x, output float y) {{ y = {expr}; }}");
    let err = pmlang::frontend(&src).expect_err("should be rejected");
    assert!(err.to_string().contains("nesting exceeds"), "{err}");
}

#[test]
fn errors_name_the_right_line_in_multiline_programs() {
    rejects(
        "f(input float a, output float b) {
    b = a;
}
main(input float x, output float y) {
    float t;
    t = q;
    f(t, y);
}",
        "undeclared variable `q`",
        "6:9",
    );
}
