//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! small, deterministic subset of the `rand 0.8` API surface that the
//! workloads and tests actually use: `StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over integer and float ranges. The generator is a
//! SplitMix64 stream — statistically fine for synthetic datasets, and fully
//! reproducible for a given seed.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Ranges that [`Rng::gen_range`] can sample a `T` from. The `T` parameter
/// lets return-type inference pick the range's element type, as in rand.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Marker restricting `gen_range` element types to concrete scalars; keeps
/// binop-driven inference unambiguous exactly the way rand's bound does.
pub trait SampleUniform {}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(impl SampleUniform for $t {})*};
}

sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128) % width;
                (self.start as i128 + pick as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5..17i64);
            assert!((5..17).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&g));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0..2u32) == b.gen_range(0..2u32)).count();
        assert!(same < 64);
    }
}
