//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the proptest API its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`/`prop_recursive`,
//! [`strategy::Just`], numeric range strategies, tuple strategies, weighted
//! [`prop_oneof!`], `collection::vec`, `bool::ANY`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! Semantics differences from real proptest, deliberately accepted:
//! inputs are generated from a per-test deterministic stream (seeded by the
//! test's module path and name), and failing cases are reported but *not
//! shrunk*. Every run of a given test binary explores the same cases, which
//! suits an offline CI environment.

use std::fmt;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};

/// Run configuration for a `proptest!` block (subset of the real type).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the case as a genuine failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Marks the case as rejected (treated as a failure in this stub).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSizeRange {
        /// Returns `(min, max)` inclusive bounds for the collection length.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below(self.max - self.min + 1)
            } else {
                self.min
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `size` elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { elem, min, max }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `proptest::bool::ANY`.
    pub const ANY: BoolStrategy = BoolStrategy;
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that draws `cases` deterministic inputs and runs
/// the body; `prop_assert*` failures abort the case with a report.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Uniform (optionally weighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts two values compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}
