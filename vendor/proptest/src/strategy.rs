//! Value-generation strategies (subset of `proptest::strategy`).
//!
//! A [`Strategy`] here is just a cloneable deterministic generator: it draws
//! a value from a [`TestRng`] stream. There is no shrinking tree; a failing
//! case is reported as-is by the `proptest!` macro.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic SplitMix64 stream used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary label (test module path + name),
    /// so each test explores its own, stable sequence of cases.
    pub fn for_test(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A cloneable generator of test values.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f` wraps
    /// an inner strategy into one more level of structure, up to `depth`
    /// levels. The size/branch hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = f(current).boxed();
            let fallback = leaf.clone();
            // Bias toward expansion but keep leaves reachable at every level
            // so generated trees vary in depth.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.below(4) == 0 {
                    fallback.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let pick = (rng.next_u64() as u128) % width;
                (self.start as i128 + pick as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.unit() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String patterns as strategies, mirroring proptest's regex strings.
///
/// Only the sliver the workspace uses is understood: an optional char-class
/// prefix (`\PC` — any printable char) followed by a `{min,max}` repetition.
/// Anything unrecognized generates printable strings of length 0..=64.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repetition(self).unwrap_or((0, 64));
        let len = min + rng.below(max - min + 1);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional wider code points,
                // approximating `\PC` (any non-control character).
                if rng.below(8) == 0 {
                    char::from_u32(0xA1 + rng.below(0x24F - 0xA1) as u32).unwrap_or('¿')
                } else {
                    (0x20u8 + rng.below(0x5F) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    let min = lo.trim().parse().ok()?;
    let max = hi.trim().parse().ok()?;
    (min <= max).then_some((min, max))
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit() * 2e3 - 1e3
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit() * 2e3 - 1e3) as f32
    }
}

/// Strategy behind [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy { _marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: PhantomData }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::for_test("weights");
        let s = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        let leaf = Just(1usize);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| 1 + a.max(b))
        });
        let mut rng = TestRng::for_test("depth");
        for _ in 0..200 {
            assert!(s.generate(&mut rng) <= 5);
        }
    }
}
