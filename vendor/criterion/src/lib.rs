//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Instead of
//! statistical sampling it times a fixed batch of iterations with
//! `std::time::Instant` and prints a single mean per benchmark — enough to
//! keep `cargo bench` runnable and the bench targets compiling.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), samples: 10 }
    }

    /// Times a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample size).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Times a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Times a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher { iters: self.samples as u64, mean_ns: 0.0 };
        f(&mut bencher, input);
        report(&label, &bencher);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher { iters: samples as u64, mean_ns: 0.0 };
    f(&mut bencher);
    report(label, &bencher);
}

fn report(label: &str, bencher: &Bencher) {
    println!("bench {label:<48} {:>14.1} ns/iter", bencher.mean_ns);
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times
/// the routine under test.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Runs `setup` outside the timed region and `routine` inside it, as in
    /// criterion's `iter_batched`. Use when the routine consumes its input
    /// (e.g. mutates a cloned graph) and the setup cost must not be measured.
    ///
    /// Each iteration is timed individually and the *median* is reported:
    /// like criterion's robust statistics, this keeps a descheduled
    /// iteration on a loaded machine from skewing the result.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One untimed warm-up run.
        std::hint::black_box(routine(setup()));
        let mut samples: Vec<u128> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        let mid = samples.len() / 2;
        self.mean_ns = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) as f64 / 2.0
        } else {
            samples[mid] as f64
        };
    }
}

/// Batch sizing hint (criterion API compatibility). The stand-in times each
/// iteration individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Input is small; criterion would batch many per allocation.
    SmallInput,
    /// Input is large; criterion would batch few per allocation.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// A benchmark name with a parameter suffix.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier as a display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Declares a benchmark group function (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
