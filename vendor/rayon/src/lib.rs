//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this vendors the tiny
//! subset of rayon's API the workspace uses — [`join`], `par_iter` /
//! `into_par_iter`, `map`, and `collect` — implemented on
//! `std::thread::scope`. Inputs are split into one contiguous chunk per
//! available core and the per-chunk results are reassembled in input
//! order, so every combinator is **deterministic**: a parallel run yields
//! the same `Vec` a serial run would, element for element. (That property
//! is what lets the compiler promise byte-identical serial and parallel
//! output.)
//!
//! Unlike real rayon there is no work-stealing pool: each `collect` spins
//! up short-lived scoped threads. That is the right trade-off for the
//! coarse-grained units this workspace parallelizes (per-target program
//! partitions, per-node tensor expansions), and it degrades gracefully to
//! a plain serial loop on single-core machines.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = unset (fall through to `RAYON_NUM_THREADS`, then to the machine's
/// available parallelism).
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn threads() -> usize {
    let forced = NUM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Number of worker threads combinators will use (real rayon's
/// `current_num_threads`); here, the override (if set), then the
/// `RAYON_NUM_THREADS` environment variable, then the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    threads()
}

/// Forces the worker-thread count for all subsequent combinator runs
/// (real rayon configures this through `ThreadPoolBuilder`; the stand-in
/// spins up scoped threads per call, so a process-wide count is the
/// equivalent knob). Pass 0 to clear the override. Values above the
/// machine's parallelism are honored — useful for oversubscription
/// experiments — and 1 degrades every combinator to a serial loop.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in: joined task panicked"))
    })
}

/// Applies `f` to every item on a pool of scoped threads, preserving
/// input order in the output.
fn par_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stand-in: worker panicked"))
            .collect()
    })
}

/// A (lazily mapped) parallel iterator. The parallelism happens when the
/// chain is materialized by [`ParallelIterator::collect`].
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this stage of the chain.
    type Item: Send;

    /// Materializes the chain into a `Vec`, running mapped stages on the
    /// thread pool. Order matches the source order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (in parallel at materialization time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Materializes the chain into a collection.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion from a parallel iterator, mirroring `FromIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the materialized items.
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        it.run()
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(it: I) -> Self {
        // Deterministic: reports the *first* error in input order (real
        // rayon reports an arbitrary one).
        it.run().into_iter().collect()
    }
}

/// The source stage: a materialized list of items.
pub struct IterBridge<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBridge<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The mapped stage returned by [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_map(self.base.run(), &self.f)
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterBridge<T>;
    fn into_par_iter(self) -> Self::Iter {
        IterBridge { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterBridge<usize>;
    fn into_par_iter(self) -> Self::Iter {
        IterBridge { items: self.collect() }
    }
}

/// By-reference conversion into a parallel iterator (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a shared reference).
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IterBridge<&'data T>;
    fn par_iter(&'data self) -> Self::Iter {
        IterBridge { items: self.iter().collect() }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IterBridge<&'data T>;
    fn par_iter(&'data self) -> Self::Iter {
        IterBridge { items: self.iter().collect() }
    }
}

/// `use rayon::prelude::*;` brings the iterator traits into scope.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn into_par_iter_owned() {
        let squares: Vec<usize> = (0..17usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 17);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn result_collect_reports_first_error() {
        let xs = vec![1i32, 2, 3, 4];
        let r: Result<Vec<i32>, String> = xs
            .par_iter()
            .map(|&x| if x % 2 == 0 { Err(format!("even {x}")) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("even 2".to_string()));
        let ok: Result<Vec<i32>, String> = xs.par_iter().map(|&x| Ok(x * 10)).collect();
        assert_eq!(ok, Ok(vec![10, 20, 30, 40]));
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
