// Deliberately buggy program exercising `pmc lint` — run it with:
//   pmc lint examples/pm/lint_demo.pm
//   pmc lint examples/pm/lint_demo.pm --deny-warnings   (exits non-zero)
//   pmc lint examples/pm/lint_demo.pm --format json

// PM-W004: subtraction is neither commutative nor associative, so this
// reduction's result depends on the iteration order the backend picks.
reduction diff(a, b) = a - b;

// PM-W006: DECO (the DSP accelerator) has no argmax unit and argmax has
// no scalar expansion — Algorithm 1 provably gets stuck lowering `pick`.
pick(input float x[8], output float best) {
    index i[0:7];
    best = argmax[i](x[i]);
}

// PM-W001: `scale` is declared but never referenced.
// PM-N002: `acc` is read before its first write (carried state).
// PM-W004: `folded[i % 2]` maps several i onto the same element — a
// write race whose winner depends on schedule order.
main(input float x[8], param float scale, state float acc,
     output float folded[2], output float spread, output float top) {
    index i[0:7];
    acc = acc + x[0];
    folded[i % 2] = x[i];
    spread = diff[i](x[i]);
    DSP: pick(x, top);
}
