// A DSP moving-average filter feeding a Data Analytics anomaly score —
// the two-domain pipeline from the README, runnable with:
//   pmc compile examples/pm/moving_average.pm
//   pmc run examples/pm/moving_average.pm examples/pm/moving_average.feeds
smooth(input float x[16], param float h[4], output float y[13]) {
    index i[0:12], k[0:3];
    y[i] = sum[k](h[k]*x[i+k]);
}
classify(input float f[13], param float w[13], output float prob) {
    index i[0:12];
    prob = sigmoid(sum[i](w[i]*f[i]));
}
main(input float signal[16], param float taps[4], param float w[13],
     output float anomaly) {
    float filtered[13];
    DSP: smooth(signal, taps, filtered);
    DA:  classify(filtered, w, anomaly);
}
