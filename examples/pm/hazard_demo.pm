// Schedule-hazard demonstration for `pmc analyze`: the DSP-mapped filter
// reads state `z` while the host simultaneously overwrites it — a
// write-after-read (PM-W111) DMA hazard in the compiled SoC schedule.
// `pmc analyze examples/pm/hazard_demo.pm` reports it as a warning;
// `--deny-warnings` turns it into a failure (exercised by scripts/verify.sh).
filt(input float z[4], output float y[4]) {
    index i[0:3];
    y[i] = z[i] * 0.5;
}

main(input float x[4], state float z[4], output float y[4]) {
    index i[0:3];
    DSP: filt(z, y);
    z[i] = x[i];
}
