// Stateful accumulation: `acc` persists across invocations (run with
// --iters N to watch it grow).
main(input float x, state float acc, output float total) {
    acc = acc + x;
    total = acc;
}
