// Damped PageRank over a tiny 4-vertex graph; run a few power iterations:
//   pmc run examples/pm/pagerank.pm examples/pm/pagerank.feeds --iters 30
main(input float adj_norm[4][4], state float rank[4], output float out[4]) {
    index u[0:3], v[0:3];
    float contrib[4];
    GA: contrib[v] = sum[u](adj_norm[u][v] * rank[u]);
    GA: rank[v] = 0.15 / 4.0 + 0.85 * contrib[v];
    GA: out[v] = rank[v];
}
