//! Runnable examples for the PolyMath stack — see `src/bin/`:
//!
//! * `quickstart` — compile, execute, and price a two-domain program;
//! * `robot_tracking` — closed-loop MPC trajectory tracking (paper §II);
//! * `brain_stimulation` — the BrainStimul end-to-end app with the
//!   acceleration-combination sweep (paper Fig. 10a);
//! * `option_pricing` — the OptionPricing end-to-end app (paper Fig. 10b);
//! * `graph_analytics` — BFS as a vertex program on Graphicionado.
