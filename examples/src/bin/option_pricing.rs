//! The OptionPricing end-to-end application (paper Fig. 10b/11b):
//! logistic-regression sentiment over news features scales the volatility
//! surface fed to Black-Scholes pricing — two Data Analytics kernels that
//! the paper runs on *different* accelerators simultaneously (LR on TABLA,
//! Black-Scholes on HyperStreams), realized here with a per-component
//! target override.
//!
//! ```text
//! cargo run -p pm-examples --bin option_pricing
//! ```

use pm_accel::{Backend, HyperStreams, WorkloadHints};
use pm_workloads::{apps, datagen, reference};
use polymath::{standard_soc, Compiler};
use srdfg::{Bindings, Machine, Tensor};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- functional run at test scale --------------------------------
    let app = apps::option_pricing(32, 8);
    let compiled = Compiler::cross_domain().compile(&app.source, &Bindings::default())?;
    let mut machine = Machine::new((*compiled.graph).clone());

    let spots = [95.0, 100.0, 105.0, 110.0, 90.0, 100.0, 120.0, 100.0];
    let vols = [0.15, 0.2, 0.25, 0.2, 0.3, 0.18, 0.22, 0.2];
    let feeds = HashMap::from([
        ("wordv".to_string(), datagen::normal_tensor(vec![32], 0.1, 1)),
        ("spot".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![8], spots.to_vec())?),
        ("strike".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![8], vec![100.0; 8])?),
        ("vol0".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![8], vols.to_vec())?),
        ("rate".to_string(), Tensor::scalar(pmlang::DType::Float, 0.05)),
        ("tte".to_string(), Tensor::scalar(pmlang::DType::Float, 0.5)),
    ]);
    machine.set_state("w", datagen::normal_tensor(vec![32], 0.05, 2));
    let out = machine.invoke(&feeds)?;
    let calls = out["call"].as_real_slice().unwrap();
    println!("option book (sentiment-adjusted Black-Scholes):");
    println!("  spot   vol0   call     (unadjusted reference)");
    for i in 0..8 {
        let unadj = reference::black_scholes_call(spots[i], 100.0, vols[i], 0.05, 0.5);
        println!("  {:>5.0}  {:>5.2}  {:>7.3}  ({:>7.3})", spots[i], vols[i], calls[i], unadj);
    }

    // ---- acceleration sweep at paper scale (Fig. 10b shape) ----------
    println!("\nend-to-end improvement over CPU (runtime / energy):");
    let paper = apps::option_pricing(131_072, 8192);
    let soc = standard_soc();
    // Whatever stays on the host runs in the application's native Python
    // stack; charge its inefficiency to host partitions only.
    let hints = HashMap::from([(
        None,
        WorkloadHints { native_factor: Some(paper.host_native_factor), ..Default::default() },
    )]);
    let all = pmlang::Domain::all();
    let mut baseline = None;
    for (label, lr, blks) in [
        ("CPU only", false, false),
        ("BLKS", false, true),
        ("LR", true, false),
        ("BLKS+LR", true, true),
    ] {
        let variant = apps::option_pricing_with(131_072, 8192, lr, blks);
        let mut compiler = Compiler::accelerating(&all);
        if blks {
            // Two DA accelerators at once: pin Black-Scholes to
            // HyperStreams while LR keeps the domain default (TABLA).
            compiler = compiler.with_target_override("blks", HyperStreams::default().accel_spec());
        }
        let compiled = compiler.compile(&variant.source, &Bindings::default())?;
        let report = soc.run(&compiled, &hints)?;
        let base = *baseline.get_or_insert(report.total);
        println!(
            "  {label:<10} {:>6.2}x runtime   {:>6.2}x energy   (comm {:>4.1}%)",
            base.seconds / report.total.seconds,
            base.energy_j / report.total.energy_j,
            report.comm_fraction * 100.0
        );
    }
    Ok(())
}
