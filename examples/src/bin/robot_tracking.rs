//! MobileRobot trajectory tracking (paper §II, Fig. 3-4): a simulated
//! robot parks at a reference pose, with the PMLang MPC program producing
//! the control signal each step and the RoboX backend pricing the
//! control-loop latency. The plant integrates slightly different gains
//! than the prediction model, so the closed loop has to correct real
//! model mismatch.
//!
//! ```text
//! cargo run -p pm-examples --bin robot_tracking
//! ```

use pm_workloads::programs;
use polymath::{standard_soc, Compiler};
use srdfg::{Bindings, Machine, Tensor};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 8usize;
    let c = 3 * horizon;
    let b = 2 * horizon;
    let source = programs::mobile_robot(horizon);
    let compiled = Compiler::cross_domain().compile(&source, &Bindings::default())?;
    println!(
        "MPC (horizon {horizon}) compiled to {}",
        compiled.partitions.iter().map(|p| p.target.clone()).collect::<Vec<_>>().join(" + ")
    );

    // Condensed linearized model: predicted pose at step t = current pose
    // + gain·(cumulative controls up to t). Controls are laid out
    // channel-major, matching the program's `ctrl_sgnl[j] = ctrl_mdl[h*j]`:
    // ctrl_mdl[0..h] are the vx sequence and ctrl_mdl[h..2h] the vy one.
    let model_gain = 0.1;
    let plant_gain = 0.12; // deliberate model mismatch
    let p_m = {
        let mut m = vec![0.0; c * 3];
        for t in 0..horizon {
            for s in 0..3 {
                m[(t * 3 + s) * 3 + s] = 1.0;
            }
        }
        Tensor::from_vec(pmlang::DType::Float, vec![c, 3], m)?
    };
    let h_dense = {
        let mut m = vec![0.0; c * b];
        for t in 0..horizon {
            for u in 0..=t {
                m[(t * 3) * b + u] = model_gain; // vx moves x
                m[(t * 3 + 1) * b + (horizon + u)] = model_gain; // vy moves y
            }
        }
        m
    };
    let h_m = Tensor::from_vec(pmlang::DType::Float, vec![c, b], h_dense.clone())?;
    // Quadratic tracking cost: HQ_g = -Hᵀ, R_g = λI. λ damps the
    // control integrator so the closed loop settles without ringing.
    let hq_g = {
        let mut m = vec![0.0; b * c];
        for i in 0..b {
            for j in 0..c {
                m[i * c + j] = -h_dense[j * b + i];
            }
        }
        Tensor::from_vec(pmlang::DType::Float, vec![b, c], m)?
    };
    let r_g = {
        let mut m = vec![0.0; b * b];
        for i in 0..b {
            m[i * b + i] = 4.0;
        }
        Tensor::from_vec(pmlang::DType::Float, vec![b, b], m)?
    };

    // Park at (1.0, 0.5, 0) from (0, -1, 0).
    let target = [1.0f64, 0.5, 0.0];
    let mut pos_ref = vec![0.0; c];
    for t in 0..horizon {
        pos_ref[t * 3] = target[0];
        pos_ref[t * 3 + 1] = target[1];
        pos_ref[t * 3 + 2] = target[2];
    }

    let mut machine = Machine::new((*compiled.graph).clone());
    let mut state = [0.0f64, -1.0, 0.0];
    let mut err = f64::INFINITY;
    println!("step |    x      y   | err");
    for step in 0..300 {
        let feeds = HashMap::from([
            ("pos".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![3], state.to_vec())?),
            ("P".to_string(), p_m.clone()),
            ("H".to_string(), h_m.clone()),
            (
                "pos_ref".to_string(),
                Tensor::from_vec(pmlang::DType::Float, vec![c], pos_ref.clone())?,
            ),
            ("HQ_g".to_string(), hq_g.clone()),
            ("R_g".to_string(), r_g.clone()),
        ]);
        let out = machine.invoke(&feeds)?;
        let sgnl = out["ctrl_sgnl"].as_real_slice().unwrap();
        // Plant: integrate the first control of the optimized sequence.
        state[0] += plant_gain * sgnl[0];
        state[1] += plant_gain * sgnl[1];
        err = ((state[0] - target[0]).powi(2) + (state[1] - target[1]).powi(2)).sqrt();
        if step % 40 == 0 {
            println!("{step:>4} | {:>6.3} {:>6.3} | {err:.4}", state[0], state[1]);
        }
    }
    println!("final tracking error: {err:.4}");
    assert!(err < 0.15, "MPC failed to converge: {err}");

    // Control-loop latency on RoboX vs the CPU baseline, at the paper's
    // horizon of 1024.
    let paper_src = programs::mobile_robot(1024);
    let accel_prog = Compiler::cross_domain().compile(&paper_src, &Bindings::default())?;
    let soc = standard_soc();
    let accel = soc.run(&accel_prog, &HashMap::new())?;
    let host = Compiler::host_only().compile(&paper_src, &Bindings::default())?;
    let cpu = polymath::evaluate::estimate_all(soc.host(), &host, &Default::default());
    println!(
        "horizon-1024 control step: RoboX {:.2} µs vs CPU {:.2} µs ({:.2}x)",
        accel.total.seconds * 1e6,
        cpu.seconds * 1e6,
        cpu.seconds / accel.total.seconds
    );
    Ok(())
}
