//! The BrainStimul end-to-end application (paper §II and Fig. 10a/11a):
//! FFT over ECoG signals (DSP) → logistic biomarker classification (DA) →
//! MPC stimulation control (RBT), as one PMLang program.
//!
//! Runs the closed loop functionally at a reduced scale, then sweeps every
//! acceleration combination — none, each single domain, pairs, all three —
//! and prints the end-to-end improvement table, reproducing the shape of
//! the paper's Fig. 10a.
//!
//! ```text
//! cargo run -p pm-examples --bin brain_stimulation
//! ```

use pm_workloads::apps;
use pmlang::Domain;
use polymath::{standard_soc, Compiler};
use srdfg::{Bindings, Machine, Tensor};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- functional closed loop at test scale -----------------------
    let app = apps::brain_stimul(64, 8);
    let c = 3 * 8;
    let b = 2 * 8;
    let compiled = Compiler::cross_domain().compile(&app.source, &Bindings::default())?;
    println!(
        "{} kernels: {}",
        app.name,
        app.kernels
            .iter()
            .map(|(k, d)| format!("{k}({})", d.keyword()))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    let mut machine = Machine::new((*compiled.graph).clone());
    let t = |shape: Vec<usize>, seed| pm_workloads::datagen::normal_tensor(shape, 0.2, seed);
    let params = HashMap::from([
        ("P".to_string(), t(vec![c, 3], 2)),
        ("H".to_string(), t(vec![c, b], 3)),
        ("pos_ref".to_string(), t(vec![c], 4)),
        ("HQ_g".to_string(), t(vec![b, c], 5)),
        ("R_g".to_string(), t(vec![b, b], 6)),
    ]);
    // Seed the classifier with nonzero weights.
    machine.set_state("w", pm_workloads::datagen::normal_tensor(vec![64], 0.05, 7));
    for step in 0..5 {
        let ecog = pm_workloads::datagen::signal(64, 100 + step);
        let mut feeds = params.clone();
        feeds.insert("ecog".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![64], ecog)?);
        let out = machine.invoke(&feeds)?;
        let stim = out["stim"].as_real_slice().unwrap();
        println!("  step {step}: stimulation = ({:+.4}, {:+.4})", stim[0], stim[1]);
    }

    // ---- acceleration-combination sweep (paper Fig. 10a shape) -------
    println!("\nend-to-end improvement over CPU (runtime / energy):");
    let combos: [(&str, &[Domain]); 8] = [
        ("CPU only", &[]),
        ("FFT", &[Domain::Dsp]),
        ("LR", &[Domain::DataAnalytics]),
        ("MPC", &[Domain::Robotics]),
        ("FFT+LR", &[Domain::Dsp, Domain::DataAnalytics]),
        ("FFT+MPC", &[Domain::Dsp, Domain::Robotics]),
        ("LR+MPC", &[Domain::DataAnalytics, Domain::Robotics]),
        ("FFT+LR+MPC", &[Domain::Dsp, Domain::DataAnalytics, Domain::Robotics]),
    ];
    // Paper scale for the timing sweep.
    let paper = apps::brain_stimul(4096, 1024);
    let soc = standard_soc();
    let mut baseline = None;
    for (label, domains) in combos {
        let compiled =
            Compiler::accelerating(domains).compile(&paper.source, &Bindings::default())?;
        let report = soc.run(&compiled, &HashMap::new())?;
        let base = *baseline.get_or_insert(report.total);
        println!(
            "  {label:<12} {:>6.2}x runtime   {:>6.2}x energy   (comm {:>4.1}%)",
            base.seconds / report.total.seconds,
            base.energy_j / report.total.energy_j,
            report.comm_fraction * 100.0
        );
    }
    Ok(())
}
