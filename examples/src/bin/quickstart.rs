//! Quickstart: write a tiny cross-domain PMLang program, compile it with
//! the full PolyMath pipeline, execute it functionally, and print the
//! per-accelerator performance account.
//!
//! ```text
//! cargo run -p pm-examples --bin quickstart
//! ```

use polymath::{standard_soc, Compiler};
use srdfg::{Bindings, Machine, Tensor};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-domain program: a DSP moving-average filter feeding a Data
    // Analytics logistic classifier — written as ONE program, the paper's
    // central usability claim.
    let source = "
        smooth(input float x[64], param float h[8], output float y[57]) {
            index i[0:56], k[0:7];
            y[i] = sum[k](h[k]*x[i+k]);
        }
        classify(input float f[57], param float w[57], output float prob) {
            index i[0:56];
            prob = sigmoid(sum[i](w[i]*f[i]));
        }
        main(input float signal[64], param float taps[8], param float w[57],
             output float anomaly) {
            float filtered[57];
            DSP: smooth(signal, taps, filtered);
            DA:  classify(filtered, w, anomaly);
        }
    ";

    // 1. Compile cross-domain: the DSP kernel lowers to the DECO overlay,
    //    the classifier to the TABLA fabric.
    let compiler = Compiler::cross_domain();
    let compiled = compiler.compile(source, &Bindings::default())?;
    println!("compiled {} partitions:", compiled.partitions.len());
    for p in &compiled.partitions {
        println!(
            "  {:?} -> {} ({} fragments, {} compute ops)",
            p.domain.map(|d| d.keyword()),
            p.target,
            p.fragments.len(),
            p.compute_ops()
        );
    }

    // 2. Execute the lowered program functionally.
    let signal: Vec<f64> = (0..64).map(|t| (t as f64 * 0.3).sin() + 0.1).collect();
    let feeds = HashMap::from([
        ("signal".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![64], signal)?),
        ("taps".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![8], vec![0.125; 8])?),
        ("w".to_string(), Tensor::from_vec(pmlang::DType::Float, vec![57], vec![0.2; 57])?),
    ]);
    let mut machine = Machine::new((*compiled.graph).clone());
    let out = machine.invoke(&feeds)?;
    println!("anomaly score: {:.4}", out["anomaly"].scalar_value()?);

    // 3. Price the run on the simulated SoC.
    let report = standard_soc().run(&compiled, &HashMap::new())?;
    println!(
        "SoC estimate: {:.3} µs, {:.3} µJ per invocation ({:.1}% communication)",
        report.total.seconds * 1e6,
        report.total.energy_j * 1e6,
        report.comm_fraction * 100.0
    );
    Ok(())
}
