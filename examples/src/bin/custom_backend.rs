//! Bringing your own accelerator: the srDFG-as-a-hook story (paper §VI)
//! as a complete, runnable example. A toy systolic dot-product engine is
//! defined against the `Backend` trait in ~50 lines, attached to the SoC,
//! and an unchanged PMLang program retargets to it by swapping one spec.
//!
//! ```text
//! cargo run -p pm-examples --bin custom_backend
//! ```

use pm_accel::{Backend, HwConfig, PerfEstimate, Soc, Tabla, WorkloadHints};
use pm_lower::{AccProgram, AcceleratorSpec, FragmentKind};
use pmlang::Domain;
use polymath::Compiler;
use srdfg::{Bindings, SrDfg};
use std::collections::HashMap;

/// A toy weight-stationary systolic array: `lanes` MACs drain one dot
/// product per `ceil(len/lanes)` cycles; reductions arrive *unrefined*
/// because the spec accepts them at reduce granularity.
struct SystolicDot {
    lanes: u64,
}

impl Backend for SystolicDot {
    fn name(&self) -> &'static str {
        "SystolicDot"
    }

    fn domain(&self) -> Domain {
        Domain::DataAnalytics
    }

    fn accel_spec(&self) -> AcceleratorSpec {
        // The op names accepted here ARE the lowering contract: `sum`,
        // `dot`, and `matvec` keep reductions coarse; everything else is
        // refined away or left to the host.
        AcceleratorSpec::new(
            "SystolicDot",
            Domain::DataAnalytics,
            ["sum", "dot", "matvec", "map.mul", "map.add", "unpack", "pack"],
        )
    }

    fn hw(&self) -> HwConfig {
        HwConfig { name: "SystolicDot", freq_hz: 500.0e6, power_w: 2.0 }
    }

    fn estimate(&self, prog: &AccProgram, graph: &SrDfg, _: &WorkloadHints) -> PerfEstimate {
        let mut cycles = 0u64;
        for frag in prog.fragments.iter().filter(|f| f.kind == FragmentKind::Compute) {
            let node = frag.node.map(|id| graph.node(id));
            let reduce_len = node
                .and_then(|n| match &n.kind {
                    srdfg::NodeKind::Reduce(r) => {
                        Some(srdfg::graph::space_size(&r.red_space) as u64)
                    }
                    _ => None,
                })
                .unwrap_or(frag.ops.max(1));
            // One column drained per ceil(len/lanes) cycles + fill.
            cycles += reduce_len.div_ceil(self.lanes) + self.lanes;
        }
        let mut est = PerfEstimate::from_cycles(cycles.max(1), &self.hw());
        est.dma_bytes = prog.dma_bytes();
        est
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "scorer(input float x[4096], param float w[4096], output float y) {
        index i[0:4095];
        y = sum[i](w[i]*x[i]);
    }
    main(input float x[4096], param float w[4096], output float yy) {
        DA: scorer(x, w, yy);
    }";

    let custom = SystolicDot { lanes: 64 };
    let hints = HashMap::new();

    println!("one PMLang program, three DA backends:");
    println!("  {:<14} {:>10} {:>12} {:>12}", "target", "fragments", "seconds", "energy");

    // Default DA target (TABLA, scalar granularity) ...
    let compiled = Compiler::cross_domain().compile(src, &Bindings::default())?;
    let mut soc = Soc::new();
    soc.attach(Tabla::default());
    let report = soc.run(&compiled, &hints)?;
    let part = compiled.partition_by_target("TABLA").expect("TABLA partition");
    println!(
        "  {:<14} {:>10} {:>11.3e}s {:>11.3e}J",
        "TABLA",
        part.fragments.len(),
        report.total.seconds,
        report.total.energy_j
    );

    // ... vs the custom backend: swap one spec, nothing else changes.
    let compiled = Compiler::cross_domain()
        .with_target_override("scorer", custom.accel_spec())
        .compile(src, &Bindings::default())?;
    let mut soc = Soc::new();
    soc.attach(SystolicDot { lanes: 64 });
    let report = soc.run(&compiled, &hints)?;
    let part = compiled.partition_by_target("SystolicDot").expect("SystolicDot partition");
    println!(
        "  {:<14} {:>10} {:>11.3e}s {:>11.3e}J",
        "SystolicDot",
        part.fragments.len(),
        report.total.seconds,
        report.total.energy_j
    );

    // The coarse spec kept the whole reduction as ONE fragment; TABLA's
    // scalar spec exploded it into thousands. Same source, both correct —
    // granularity is the target's choice, not the programmer's.
    assert!(part.fragments.len() < 10, "reduction should stay coarse");

    // The host is a backend too (everything unannotated).
    let host = Compiler::host_only().compile(src, &Bindings::default())?;
    let report = Soc::new().run(&host, &hints)?;
    println!(
        "  {:<14} {:>10} {:>11.3e}s {:>11.3e}J",
        "CPU (host)",
        host.partitions[0].fragments.len(),
        report.total.seconds,
        report.total.energy_j
    );

    println!("\nlane sweep (SystolicDot, dot-4096):");
    for lanes in [8u64, 16, 32, 64, 128, 256] {
        let engine = SystolicDot { lanes };
        let est = engine.estimate(part, &compiled.graph, &WorkloadHints::default());
        println!("  {lanes:>4} lanes: {:>6} cycles", est.cycles);
    }
    Ok(())
}
