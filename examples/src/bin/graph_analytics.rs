//! Graph analytics on PolyMath (paper Fig. 6): BFS written as a PMLang
//! vertex program, compiled to the Graphicionado pipeline, executed
//! iteratively by the host until the frontier fixpoint, and checked
//! against a sparse reference BFS.
//!
//! ```text
//! cargo run -p pm-examples --bin graph_analytics
//! ```

use pm_accel::WorkloadHints;
use pm_workloads::{datagen, programs, reference};
use pmlang::Domain;
use polymath::{standard_soc, Compiler};
use srdfg::{Bindings, Machine, Tensor};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vertices = 128usize;
    let graph = datagen::power_law_graph(vertices, 4, 42);
    println!(
        "synthetic power-law graph: {} vertices, {} edges",
        graph.vertices,
        graph.edge_count()
    );

    // Compile the PMLang vertex program for Graphicionado.
    let source = programs::bfs(vertices);
    let compiled = Compiler::cross_domain().compile(&source, &Bindings::default())?;
    let ga = compiled.partition(Some(Domain::GraphAnalytics)).expect("GA partition");
    println!("lowered to {} as {} pipeline fragments", ga.target, ga.fragments.len());

    // Iterate: the host invokes one relaxation sweep per step, with the
    // `level` state persisting on the accelerator between sweeps.
    let mut machine = Machine::new((*compiled.graph).clone());
    let mut level0 = vec![1.0e6f64; vertices];
    level0[0] = 0.0;
    machine.set_state("level", Tensor::from_vec(pmlang::DType::Float, vec![vertices], level0)?);
    let feeds = HashMap::from([("adj".to_string(), graph.dense_adjacency())]);
    let mut sweeps = 0;
    let mut last: Option<Vec<f64>> = None;
    loop {
        let out = machine.invoke(&feeds)?;
        sweeps += 1;
        let levels = out["out"].as_real_slice().unwrap().to_vec();
        if last.as_ref() == Some(&levels) || sweeps > vertices {
            break;
        }
        last = Some(levels);
    }
    let levels = last.unwrap();

    // Reference sparse BFS.
    let mut expect = vec![f64::INFINITY; vertices];
    expect[0] = 0.0;
    while reference::bfs_sweep(vertices, &graph.edges, &mut expect) {}
    let mut reached = 0;
    for v in 0..vertices {
        let got = levels[v];
        if expect[v].is_finite() {
            assert_eq!(got, expect[v], "vertex {v}");
            reached += 1;
        } else {
            assert!(got >= 1.0e6, "vertex {v} should be unreached");
        }
    }
    println!("BFS fixpoint after {sweeps} sweeps; {reached}/{vertices} vertices reached — matches reference");
    let hist: HashMap<u64, usize> =
        levels.iter().filter(|l| **l < 1.0e6).fold(HashMap::new(), |mut h, l| {
            *h.entry(*l as u64).or_default() += 1;
            h
        });
    let mut keys: Vec<_> = hist.keys().copied().collect();
    keys.sort();
    for k in keys {
        println!("  level {k}: {:>4} vertices", hist[&k]);
    }

    // Timing at the paper's Wikipedia scale via sparse hints.
    let wiki_edges = 84_750_000u64;
    let wiki_vertices = 3_560_000u64;
    let hints = WorkloadHints {
        effective_ops: Some(wiki_edges * 5 + wiki_vertices * 4),
        effective_bytes: Some(wiki_edges * 8 + wiki_vertices * 8),
        edges: Some(wiki_edges),
        vertices: Some(wiki_vertices),
        ..Default::default()
    };
    let paper_graph =
        Compiler::cross_domain().compile(&programs::bfs(2048), &Bindings::default())?;
    let mut hint_map = HashMap::new();
    for d in pmlang::Domain::all() {
        hint_map.insert(Some(d), hints);
    }
    hint_map.insert(None, hints);
    let soc = standard_soc();
    let accel = soc.run(&paper_graph, &hint_map)?;
    let host = Compiler::host_only().compile(&programs::bfs(2048), &Bindings::default())?;
    let cpu = polymath::evaluate::estimate_all(soc.host(), &host, &hints);
    println!(
        "\nWikipedia-scale sweep estimate: Graphicionado {:.2} ms vs CPU {:.2} ms ({:.2}x)",
        accel.total.seconds * 1e3,
        cpu.seconds * 1e3,
        cpu.seconds / accel.total.seconds
    );
    Ok(())
}
